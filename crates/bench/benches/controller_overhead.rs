//! Controller overhead (paper Sec. 4.2, "Cost"): building the target tail
//! tables should take well under a millisecond, and each per-arrival
//! frequency decision should take negligible time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rubik::core::{OnlineProfiler, TargetTailTables};
use rubik::stats::DeterministicRng;
use rubik::{DvfsConfig, DvfsPolicy, RubikConfig, RubikController};
use rubik_sim::{InServiceView, QueuedView, ServerState};

fn profiled_histograms() -> (rubik::Histogram, rubik::Histogram) {
    let mut profiler = OnlineProfiler::new(4096);
    let mut rng = DeterministicRng::new(1);
    for _ in 0..4096 {
        profiler.record(rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3));
    }
    (
        profiler.compute_histogram().unwrap(),
        profiler.membound_histogram().unwrap(),
    )
}

fn bench_table_build(c: &mut Criterion) {
    let (compute, memory) = profiled_histograms();
    c.bench_function("target_tail_tables_build_128_buckets", |b| {
        b.iter(|| TargetTailTables::build(&compute, &memory, 0.95))
    });
}

fn bench_decision(c: &mut Criterion) {
    let dvfs = DvfsConfig::haswell_like();
    let mut rubik = RubikController::new(RubikConfig::new(1e-3), dvfs.clone());
    let mut rng = DeterministicRng::new(2);
    rubik.seed_profile((0..2048).map(|_| (rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3))));

    let state = ServerState {
        now: 1e-4,
        current_freq: dvfs.min(),
        target_freq: dvfs.min(),
        in_service: Some(InServiceView {
            id: 0,
            arrival: 0.0,
            elapsed_compute_cycles: 3e5,
            elapsed_membound_time: 40e-6,
            oracle_compute_cycles: 6e5,
            oracle_membound_time: 80e-6,
            class: 0,
        }),
        queued: (1..6)
            .map(|i| QueuedView {
                id: i,
                arrival: 5e-5,
                oracle_compute_cycles: 6e5,
                oracle_membound_time: 80e-6,
                class: 0,
            })
            .collect(),
    };

    c.bench_function("rubik_per_arrival_decision_queue_of_6", |b| {
        b.iter_batched(
            || state.clone(),
            |s| rubik.on_arrival(&s),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table_build, bench_decision
}
criterion_main!(benches);
