//! Fig. 16: datacenter power and server count for the segregated baseline vs
//! the RubikColoc-managed colocated datacenter, as the LC load varies from
//! 10% to 60%. Both are normalized to the segregated datacenter at 60% load.

use rubik::{DatacenterComparison, DatacenterConfig};
use rubik_bench::{print_header, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let mut config = DatacenterConfig::paper();
    config.requests_per_sample = args.requests.unwrap_or(1500);
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    let dc = DatacenterComparison::new(config);

    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let points = dc.sweep_with_threads(&loads, args.threads());
    let reference = points.last().expect("non-empty sweep");
    let ref_power = reference.segregated_power;
    let ref_servers = reference.segregated_servers as f64;

    println!("# Fig. 16: normalized datacenter power and server count (reference: segregated @ 60% load)");
    print_header(&[
        "lc_load",
        "segregated_power",
        "coloc_power",
        "segregated_servers",
        "coloc_servers",
        "coloc_worst_tail",
    ]);
    for p in &points {
        println!(
            "{:.0}%\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.2}",
            p.lc_load * 100.0,
            p.segregated_power / ref_power,
            p.coloc_power / ref_power,
            p.segregated_servers as f64 / ref_servers,
            p.coloc_servers as f64 / ref_servers,
            p.worst_normalized_tail
        );
    }
    println!();
    let p10 = &points[0];
    println!(
        "# at 10% LC load: RubikColoc uses {:.0}% less power and {:.0}% fewer servers than the segregated datacenter at the same load",
        (1.0 - p10.coloc_power / p10.segregated_power) * 100.0,
        (1.0 - p10.coloc_servers as f64 / p10.segregated_servers as f64) * 100.0
    );
}
