//! The cluster driver: N `ServerSim`s multiplexed through one event loop.
//!
//! Every server is an independent open-loop simulation
//! ([`rubik_sim::ServerSim`]); the driver owns a binary heap of
//! `(next event time, server)` entries and always advances the globally
//! earliest event, so thousands of servers run in one process with no
//! threads and no per-server clocks to reconcile. Arrivals from the global
//! request stream are routed by a [`Router`] and offered to the chosen
//! server, whose own engine then sequences the arrival against its pending
//! completions, transitions, and ticks.
//!
//! # Event ordering and determinism
//!
//! The heap orders events by `(time, server index)`, and every routing
//! decision observes the fleet *after* all server events strictly before
//! the arrival instant have been processed (events at exactly the arrival
//! instant are sequenced by the destination server's own round order, which
//! is what makes a 1-server cluster bitwise-identical to
//! [`rubik_sim::Server::run`]). Entries are stamped and lazily invalidated:
//! whenever a server is stepped or offered work, its stamp advances and a
//! fresh entry is pushed, so stale heap entries are skipped on pop. The
//! whole loop is sequential and deterministic — fleet-scale parallelism
//! comes from sweeping many cluster cells on `rubik-sweep`, not from
//! threading inside one cluster.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rubik_power::CorePowerModel;
use rubik_sim::{DvfsPolicy, RunResult, ServerSim, SimConfig, Trace};

use crate::outcome::ClusterOutcome;
use crate::router::{Router, ServerView};

/// A heap entry: the next event of one server, stamped for lazy
/// invalidation.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    server: usize,
    stamp: u64,
}

impl HeapEntry {
    fn key(&self) -> (f64, usize, u64) {
        (self.time, self.server, self.stamp)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (t0, s0, v0) = self.key();
        let (t1, s1, v1) = other.key();
        t0.total_cmp(&t1).then(s0.cmp(&s1)).then(v0.cmp(&v1))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A fleet of simulated servers behind a load balancer.
///
/// Built with one [`DvfsPolicy`] instance per server (Rubik per server, in
/// the paper's setting) and a [`Router`]; consumed by [`Cluster::run`],
/// which drives the global arrival stream through the fleet and aggregates
/// a [`ClusterOutcome`].
pub struct Cluster<P: DvfsPolicy = Box<dyn DvfsPolicy>> {
    servers: Vec<ServerSim<P>>,
    router: Box<dyn Router>,
    power: CorePowerModel,
    quantile: f64,
}

impl<P: DvfsPolicy> std::fmt::Debug for Cluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("router", &self.router.name())
            .field("quantile", &self.quantile)
            .finish()
    }
}

impl<P: DvfsPolicy> Cluster<P> {
    /// Creates a fleet of `servers` identical-hardware servers. `policy` is
    /// called once per server index to build that server's DVFS controller —
    /// per-server instances, never shared.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new<F>(config: SimConfig, servers: usize, router: Box<dyn Router>, mut policy: F) -> Self
    where
        F: FnMut(usize) -> P,
    {
        assert!(servers > 0, "a cluster needs at least one server");
        let servers = (0..servers)
            .map(|i| ServerSim::new(config.clone(), policy(i)))
            .collect();
        Self {
            servers,
            router,
            power: CorePowerModel::haswell_like(),
            quantile: 0.95,
        }
    }

    /// Overrides the core power model used for fleet energy accounting.
    ///
    /// This does **not** reach into the router: a [`PowerAware`]
    /// (crate::PowerAware) router carries its own scoring model, so
    /// construct it from the same model passed here or its routing
    /// objective will diverge from the reported fleet energy.
    pub fn with_power(mut self, power: CorePowerModel) -> Self {
        self.power = power;
        self
    }

    /// Overrides the tail quantile (default 0.95).
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        self.quantile = quantile;
        self
    }

    /// Number of servers in the fleet.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true — see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The fleet's router.
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// Serves the global arrival stream `trace` through the fleet and
    /// returns the aggregated outcome.
    ///
    /// The trace is the *fleet's* arrival process (e.g. from
    /// [`crate::fleet_trace`]); each request is routed on arrival and
    /// offered to one server. Requests must be time-ordered, which
    /// [`Trace`] guarantees.
    pub fn run(self, trace: &Trace) -> ClusterOutcome {
        self.run_with_results(trace).0
    }

    /// Like [`Cluster::run`], but also returns each server's raw
    /// [`RunResult`] (used by the equivalence suites and for per-server
    /// timelines).
    pub fn run_with_results(mut self, trace: &Trace) -> (ClusterOutcome, Vec<RunResult>) {
        let n = self.servers.len();
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::with_capacity(2 * n);
        let mut stamps: Vec<u64> = vec![0; n];
        // One view per server, maintained incrementally: only a stepped or
        // offered server's view changes, so routing stays O(fleet) in reads
        // but O(events) — not O(arrivals × fleet) — in writes.
        let mut views: Vec<ServerView> = Vec::with_capacity(n);
        for i in 0..n {
            views.push(server_view(&self.servers, i));
            if let Some(time) = self.servers[i].next_event_time() {
                heap.push(Reverse(HeapEntry {
                    time,
                    server: i,
                    stamp: stamps[i],
                }));
            }
        }

        for &request in trace.requests() {
            // Process every fleet event strictly before the arrival; events
            // at exactly the arrival instant are left for the destination
            // server's engine to order against the arrival itself.
            drain_before(
                &mut heap,
                &mut stamps,
                &mut self.servers,
                &mut views,
                request.arrival,
            );

            let target = self.router.route(&request, &views);
            assert!(
                target < n,
                "router {} chose server {target} of a {n}-server fleet",
                self.router.name()
            );
            self.servers[target].offer(request);
            schedule(&mut heap, &mut stamps, &self.servers, &mut views, target);
        }

        // The stream is exhausted: no more work will ever be offered, so
        // close every server and let the remaining events drain.
        for i in 0..n {
            self.servers[i].close();
            schedule(&mut heap, &mut stamps, &self.servers, &mut views, i);
        }
        drain_before(
            &mut heap,
            &mut stamps,
            &mut self.servers,
            &mut views,
            f64::INFINITY,
        );

        // Align every server's timeline with the fleet's end so idle/sleep
        // power is charged through the whole run: without this, a server
        // that drained early would be charged nothing while a backlogged
        // neighbour worked on, flattering imbalanced routings.
        let end = self.servers.iter().map(ServerSim::now).fold(0.0, f64::max);
        for server in &mut self.servers {
            server.coast_to(end);
        }

        let results: Vec<RunResult> = self.servers.into_iter().map(ServerSim::finish).collect();
        let outcome = ClusterOutcome::aggregate(&results, &self.power, self.quantile);
        (outcome, results)
    }
}

fn server_view<P: DvfsPolicy>(servers: &[ServerSim<P>], i: usize) -> ServerView {
    let s = &servers[i];
    ServerView {
        index: i,
        in_flight: s.in_flight(),
        admitted: s.pending_requests(),
        current_freq: s.current_freq(),
        target_freq: s.target_freq(),
        busy: !s.is_idle(),
    }
}

/// Re-registers server `i` after its state changed: refreshes its router
/// view, advances its stamp (invalidating any entry already in the heap),
/// and pushes its current next-event time, if any.
fn schedule<P: DvfsPolicy>(
    heap: &mut BinaryHeap<Reverse<HeapEntry>>,
    stamps: &mut [u64],
    servers: &[ServerSim<P>],
    views: &mut [ServerView],
    i: usize,
) {
    views[i] = server_view(servers, i);
    stamps[i] += 1;
    if let Some(time) = servers[i].next_event_time() {
        heap.push(Reverse(HeapEntry {
            time,
            server: i,
            stamp: stamps[i],
        }));
    }
}

/// Steps fleet events in `(time, server)` order while they lie strictly
/// before `limit`.
fn drain_before<P: DvfsPolicy>(
    heap: &mut BinaryHeap<Reverse<HeapEntry>>,
    stamps: &mut [u64],
    servers: &mut [ServerSim<P>],
    views: &mut [ServerView],
    limit: f64,
) {
    while let Some(&Reverse(entry)) = heap.peek() {
        if entry.time >= limit {
            break;
        }
        heap.pop();
        if entry.stamp != stamps[entry.server] {
            continue; // stale: the server was stepped or offered work since
        }
        let stepped = servers[entry.server].step();
        debug_assert!(stepped.is_some(), "a scheduled event must fire");
        schedule(heap, stamps, servers, views, entry.server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{JoinShortestQueue, Passthrough, RoundRobin};
    use rubik_sim::{FixedFrequencyPolicy, RequestSpec};

    fn config() -> SimConfig {
        SimConfig::paper_simulated()
    }

    fn fixed(config: &SimConfig) -> impl FnMut(usize) -> FixedFrequencyPolicy + '_ {
        move |_| FixedFrequencyPolicy::new(config.dvfs.nominal())
    }

    fn burst(n: usize, gap: f64) -> Trace {
        (0..n as u64)
            .map(|i| RequestSpec::new(i, i as f64 * gap, 1.2e6, 0.0))
            .collect()
    }

    #[test]
    fn all_requests_complete_across_the_fleet() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 4, Box::new(RoundRobin::new()), fixed(&cfg));
        let outcome = cluster.run(&burst(200, 1e-4));
        assert_eq!(outcome.requests, 200);
        assert_eq!(outcome.servers(), 4);
        // Round-robin spreads a uniform stream evenly.
        for s in &outcome.per_server {
            assert_eq!(s.requests, 50);
        }
        assert!(outcome.tail_latency > 0.0);
        assert!(outcome.fleet_energy > 0.0);
    }

    #[test]
    fn jsq_beats_round_robin_on_tail_under_bursts() {
        // Requests arrive in simultaneous pairs; with 2 servers, round-robin
        // sends each pair to both servers (fine), but a skewed stream shows
        // the difference. Use simultaneous triples on 2 servers: JSQ never
        // stacks 3 on one server, round-robin does every other round.
        let cfg = config();
        let trace: Trace = (0..60u64)
            .map(|i| RequestSpec::new(i, (i / 3) as f64 * 2e-3, 2.4e6, 0.0))
            .collect();
        let rr = Cluster::new(cfg.clone(), 2, Box::new(RoundRobin::new()), fixed(&cfg));
        let jsq = Cluster::new(
            cfg.clone(),
            2,
            Box::new(JoinShortestQueue::new()),
            fixed(&cfg),
        );
        let rr_out = rr.run(&trace);
        let jsq_out = jsq.run(&trace);
        assert_eq!(rr_out.requests, 60);
        assert_eq!(jsq_out.requests, 60);
        assert!(
            jsq_out.tail_latency <= rr_out.tail_latency + 1e-12,
            "JSQ tail {} vs RR tail {}",
            jsq_out.tail_latency,
            rr_out.tail_latency
        );
    }

    #[test]
    fn empty_trace_produces_empty_outcome() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 3, Box::new(Passthrough), fixed(&cfg));
        let (outcome, results) = cluster.run_with_results(&Trace::default());
        assert_eq!(outcome.requests, 0);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.records().is_empty());
        }
    }

    #[test]
    fn run_is_deterministic_for_a_fixed_input() {
        let cfg = config();
        let trace = burst(120, 3e-4);
        let run =
            |router: Box<dyn Router>| Cluster::new(cfg.clone(), 3, router, fixed(&cfg)).run(&trace);
        let a = run(Box::new(JoinShortestQueue::new()));
        let b = run(Box::new(JoinShortestQueue::new()));
        assert_eq!(a, b);
    }

    #[test]
    fn boxed_policies_allow_heterogeneous_fleets() {
        let cfg = config();
        let slow = cfg.dvfs.min();
        let fast = cfg.dvfs.nominal();
        let cluster = Cluster::new(
            cfg.clone(),
            2,
            Box::new(RoundRobin::new()),
            |i| -> Box<dyn DvfsPolicy> {
                Box::new(FixedFrequencyPolicy::new(if i == 0 { slow } else { fast }))
            },
        );
        let outcome = cluster.run(&burst(40, 2e-3));
        // The slow server burns less power but is slower per request.
        assert!(outcome.per_server[0].tail_latency > outcome.per_server[1].tail_latency);
        assert!(outcome.per_server[0].busy_time > outcome.per_server[1].busy_time);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_cluster_panics() {
        let cfg = config();
        let _ = Cluster::new(cfg.clone(), 0, Box::new(Passthrough), fixed(&cfg));
    }
}
