//! The [`TraceSink`] trait, the in-memory [`Recorder`], and the
//! [`Telemetry`] handle the cluster driver is threaded with.
//!
//! # Zero cost when disabled
//!
//! [`Telemetry::disabled()`] (the default) holds no recorder: every
//! recording method is an inlined branch on a `None` option that discards
//! its `Copy` argument. The disabled path performs **zero allocations** and
//! leaves simulation output bitwise-identical to a build without telemetry —
//! both properties are pinned by tests in `rubik-cluster`
//! (`telemetry_neutrality.rs`, `telemetry_alloc.rs`).

use crate::event::{RequestEvent, ServerEvent};
use crate::fleet::{EpochSample, FleetRecorder};
use crate::log::TraceLog;
use rubik_sim::RunResult;

/// Default fleet sampling epoch (10 ms of simulated time).
pub const DEFAULT_SAMPLE_EPOCH: f64 = 0.01;

/// Receiver for the event stream emitted by the cluster driver.
///
/// The driver calls these hooks at the fault-boundary instants it already
/// sequences, in deterministic order, so any sink observes a stream that is
/// a pure function of the run configuration.
pub trait TraceSink {
    /// A lifecycle event of request `id`.
    fn request_event(&mut self, id: u64, event: RequestEvent);
    /// A server state change.
    fn server_event(&mut self, event: ServerEvent);
    /// A completed fleet sample window.
    fn epoch_sample(&mut self, sample: EpochSample);
}

/// In-memory [`TraceSink`] that retains everything for later assembly into
/// a [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recorder {
    request_events: Vec<(u64, RequestEvent)>,
    server_events: Vec<ServerEvent>,
    fleet: FleetRecorder,
}

impl Recorder {
    /// Recorded `(request id, event)` pairs in recording (= time) order.
    pub fn request_events(&self) -> &[(u64, RequestEvent)] {
        &self.request_events
    }

    /// Recorded server events in recording (= time) order.
    pub fn server_events(&self) -> &[ServerEvent] {
        &self.server_events
    }

    /// The per-epoch fleet time series.
    pub fn fleet(&self) -> &FleetRecorder {
        &self.fleet
    }
}

impl TraceSink for Recorder {
    fn request_event(&mut self, id: u64, event: RequestEvent) {
        self.request_events.push((id, event));
    }

    fn server_event(&mut self, event: ServerEvent) {
        self.server_events.push(event);
    }

    fn epoch_sample(&mut self, sample: EpochSample) {
        self.fleet.record(sample);
    }
}

/// Instrumentation handle carried by the cluster driver.
///
/// Construct with [`Telemetry::disabled`] (the default — bitwise invisible)
/// or [`Telemetry::recording`] (retains a full [`TraceLog`]).
#[derive(Debug, Default)]
pub struct Telemetry {
    sample_epoch: Option<f64>,
    recorder: Option<Box<Recorder>>,
}

impl Telemetry {
    /// No-op telemetry: records nothing, allocates nothing, and leaves run
    /// output bitwise-identical to an uninstrumented run. This is the
    /// default.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Record request/server events and a fleet time series sampled every
    /// [`DEFAULT_SAMPLE_EPOCH`] seconds of simulated time.
    pub fn recording() -> Self {
        Self {
            sample_epoch: Some(DEFAULT_SAMPLE_EPOCH),
            recorder: Some(Box::default()),
        }
    }

    /// Override the fleet sampling epoch (seconds of simulated time).
    ///
    /// No-op on disabled telemetry. Panics if `epoch` is not finite and
    /// positive.
    pub fn with_sample_epoch(mut self, epoch: f64) -> Self {
        assert!(
            epoch.is_finite() && epoch > 0.0,
            "sample epoch must be finite and positive"
        );
        if self.recorder.is_some() {
            self.sample_epoch = Some(epoch);
        }
        self
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The fleet sampling epoch, or `None` when disabled.
    #[inline]
    pub fn sample_epoch(&self) -> Option<f64> {
        self.sample_epoch
    }

    /// Record a lifecycle event of request `id`. No-op when disabled.
    #[inline]
    pub fn request_event(&mut self, id: u64, event: RequestEvent) {
        if let Some(recorder) = self.recorder.as_deref_mut() {
            let sink: &mut dyn TraceSink = recorder;
            sink.request_event(id, event);
        }
    }

    /// Record a server state change. No-op when disabled.
    #[inline]
    pub fn server_event(&mut self, event: ServerEvent) {
        if let Some(recorder) = self.recorder.as_deref_mut() {
            let sink: &mut dyn TraceSink = recorder;
            sink.server_event(event);
        }
    }

    /// Record a completed fleet sample window.
    ///
    /// Callers should guard sample *construction* behind
    /// [`Telemetry::is_enabled`] (building an [`EpochSample`] allocates its
    /// per-server vector); the driver's sample boundary never fires when
    /// disabled, so this is a debug-time contract.
    #[inline]
    pub fn epoch_sample(&mut self, sample: EpochSample) {
        if let Some(recorder) = self.recorder.as_deref_mut() {
            let sink: &mut dyn TraceSink = recorder;
            sink.epoch_sample(sample);
        }
    }

    /// Assemble the recorded stream plus the per-server [`RunResult`]s into
    /// a [`TraceLog`]. Returns `None` when disabled.
    pub fn finalize(self, results: &[RunResult], end: f64) -> Option<TraceLog> {
        self.recorder
            .map(|recorder| TraceLog::assemble(*recorder, results, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RequestEventKind;

    #[test]
    fn disabled_telemetry_discards_everything() {
        let mut tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        assert_eq!(tele.sample_epoch(), None);
        tele.request_event(
            1,
            RequestEvent {
                at: 0.0,
                kind: RequestEventKind::Routed {
                    server: 0,
                    attempt: 1,
                },
            },
        );
        assert!(tele.finalize(&[], 1.0).is_none());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn with_sample_epoch_is_a_noop_when_disabled() {
        let tele = Telemetry::disabled().with_sample_epoch(0.5);
        assert_eq!(tele.sample_epoch(), None);
    }

    #[test]
    fn recording_telemetry_retains_events() {
        let mut tele = Telemetry::recording().with_sample_epoch(0.5);
        assert_eq!(tele.sample_epoch(), Some(0.5));
        tele.request_event(
            7,
            RequestEvent {
                at: 0.25,
                kind: RequestEventKind::Routed {
                    server: 2,
                    attempt: 1,
                },
            },
        );
        let log = tele.finalize(&[], 1.0).expect("recording");
        assert_eq!(log.requests.len(), 1);
        assert_eq!(log.requests[0].id, 7);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_sample_epoch_panics() {
        let _ = Telemetry::recording().with_sample_epoch(0.0);
    }
}
