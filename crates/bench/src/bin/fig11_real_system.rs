//! Fig. 11: real-system evaluation — core power savings of StaticOracle and
//! Rubik on masstree and moses with the observed 130 µs DVFS transition
//! latency (Sec. 5.5). The "real system" is modelled as the same simulator
//! with the slow-transition DVFS configuration and a less memory-bound,
//! more variable application profile (larger per-core LLC).

use rubik::{AppProfile, SweepSpec};
use rubik_bench::{print_header, BenchArgs, Harness};

fn main() {
    let args = BenchArgs::parse();
    let harness = args.apply(Harness::real_system());
    let apps = [
        // Larger LLC: less memory-bound, more variable service times (Sec. 5.5).
        AppProfile::masstree().with_mem_fraction(0.2),
        AppProfile::moses().with_mem_fraction(0.15).with_cov(0.35),
    ];
    let loads = [0.3, 0.4, 0.5];
    let executor = args.executor();

    let bounds = executor.map(&apps, |app| harness.latency_bound(app));
    let spec = SweepSpec::new()
        .axis("app", apps.len())
        .axis("load", loads.len());
    let rows = executor
        .run(&spec, |cell| {
            let (i, j) = (cell.get("app"), cell.get("load"));
            let (app, load) = (&apps[i], loads[j]);
            // See fig06: the 50% point is evaluated on the bound-defining
            // trace so measurement noise cannot force StaticOracle above
            // nominal.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 10 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bounds[i]);
            let (rubik, _) = harness.run_rubik(&trace, bounds[i], true);
            (
                Harness::savings_percent(&fixed, &static_oracle),
                Harness::savings_percent(&fixed, &rubik),
            )
        })
        .into_results();

    println!("# Fig. 11: real-system core power savings (%) with 130 us DVFS transitions");
    print_header(&["app", "load", "static_oracle", "rubik"]);
    for (cell, (static_savings, rubik_savings)) in spec.cells().zip(&rows) {
        println!(
            "{}\t{:.0}%\t{static_savings:.1}\t{rubik_savings:.1}",
            apps[cell.get("app")].name(),
            loads[cell.get("load")] * 100.0,
        );
    }
}
