//! Online profiling of per-request service demand.
//!
//! Rubik estimates two probability distributions from performance counters
//! (paper Sec. 4.2): per-request compute cycles `P[C = c]` and per-request
//! memory-bound time `P[M = t]`. The [`OnlineProfiler`] accumulates the
//! demands of completed requests (which the simulator reports in each
//! [`rubik_sim::RequestRecord`]) over a sliding window of recent requests and
//! produces the 128-bucket histograms that the target tail tables are built
//! from.

use std::collections::VecDeque;

use rubik_stats::Histogram;

/// Number of histogram buckets, matching the paper's implementation
/// ("We use 128-bucket distributions", Sec. 4.2).
pub const DEFAULT_BUCKETS: usize = 128;

/// Sliding-window profiler of per-request compute and memory demand.
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    window: usize,
    buckets: usize,
    compute_cycles: VecDeque<f64>,
    membound_times: VecDeque<f64>,
}

impl OnlineProfiler {
    /// Creates a profiler that keeps the most recent `window` requests and
    /// builds `DEFAULT_BUCKETS`-bucket histograms.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        Self::with_buckets(window, DEFAULT_BUCKETS)
    }

    /// Creates a profiler with an explicit bucket count.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `buckets == 0`.
    pub fn with_buckets(window: usize, buckets: usize) -> Self {
        assert!(window > 0, "profiling window must be non-empty");
        assert!(buckets > 0, "histograms need at least one bucket");
        Self {
            window,
            buckets,
            compute_cycles: VecDeque::with_capacity(window),
            membound_times: VecDeque::with_capacity(window),
        }
    }

    /// Records the demand of one completed request.
    ///
    /// # Panics
    ///
    /// Panics if either demand is negative or non-finite.
    pub fn record(&mut self, compute_cycles: f64, membound_time: f64) {
        assert!(
            compute_cycles.is_finite() && compute_cycles >= 0.0,
            "compute cycles must be finite and non-negative"
        );
        assert!(
            membound_time.is_finite() && membound_time >= 0.0,
            "memory-bound time must be finite and non-negative"
        );
        if self.compute_cycles.len() == self.window {
            self.compute_cycles.pop_front();
            self.membound_times.pop_front();
        }
        self.compute_cycles.push_back(compute_cycles);
        self.membound_times.push_back(membound_time);
    }

    /// Number of requests currently in the window.
    pub fn len(&self) -> usize {
        self.compute_cycles.len()
    }

    /// Whether the profiler has seen no requests yet.
    pub fn is_empty(&self) -> bool {
        self.compute_cycles.is_empty()
    }

    /// Seeds the profiler with known demands (e.g. from a captured trace or a
    /// previous run) so that Rubik starts with informed tables instead of a
    /// warm-up period.
    pub fn seed<I>(&mut self, demands: I)
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        for (c, m) in demands {
            self.record(c, m);
        }
    }

    /// Histogram of per-request compute cycles, or `None` until at least one
    /// request has been recorded.
    pub fn compute_histogram(&self) -> Option<Histogram> {
        if self.is_empty() {
            return None;
        }
        let samples: Vec<f64> = self.compute_cycles.iter().copied().collect();
        Some(Histogram::from_samples(&samples, self.buckets))
    }

    /// Histogram of per-request memory-bound time, or `None` until at least
    /// one request has been recorded. All-zero memory demand yields a
    /// degenerate single-bucket histogram at zero width 1, which downstream
    /// code treats as "no memory component".
    pub fn membound_histogram(&self) -> Option<Histogram> {
        if self.is_empty() {
            return None;
        }
        let samples: Vec<f64> = self.membound_times.iter().copied().collect();
        Some(Histogram::from_samples(&samples, self.buckets))
    }

    /// Mean compute cycles over the window (0 if empty).
    pub fn mean_compute_cycles(&self) -> f64 {
        mean(&self.compute_cycles)
    }

    /// Mean memory-bound time over the window (0 if empty).
    pub fn mean_membound_time(&self) -> f64 {
        mean(&self.membound_times)
    }
}

fn mean(v: &VecDeque<f64>) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profiler_has_no_histograms() {
        let p = OnlineProfiler::new(100);
        assert!(p.is_empty());
        assert!(p.compute_histogram().is_none());
        assert!(p.membound_histogram().is_none());
        assert_eq!(p.mean_compute_cycles(), 0.0);
    }

    #[test]
    fn records_and_builds_histograms() {
        let mut p = OnlineProfiler::new(100);
        for i in 1..=50 {
            p.record(i as f64 * 1000.0, i as f64 * 1e-6);
        }
        assert_eq!(p.len(), 50);
        let c = p.compute_histogram().unwrap();
        let m = p.membound_histogram().unwrap();
        assert!(c.quantile(0.95) >= 45_000.0);
        assert!(m.quantile(0.95) >= 45e-6);
        assert!((p.mean_compute_cycles() - 25_500.0).abs() < 1e-6);
    }

    #[test]
    fn window_evicts_old_samples() {
        let mut p = OnlineProfiler::new(10);
        // Ten huge requests followed by ten tiny ones: the window should only
        // remember the tiny ones.
        for _ in 0..10 {
            p.record(1e9, 0.0);
        }
        for _ in 0..10 {
            p.record(1e3, 0.0);
        }
        assert_eq!(p.len(), 10);
        assert!(p.compute_histogram().unwrap().quantile(0.99) <= 1e3 + 1.0);
    }

    #[test]
    fn seed_prepopulates_the_window() {
        let mut p = OnlineProfiler::new(100);
        p.seed((0..20).map(|i| (1000.0 + i as f64, 1e-6)));
        assert_eq!(p.len(), 20);
        assert!(p.compute_histogram().is_some());
    }

    #[test]
    fn zero_memory_demand_is_representable() {
        let mut p = OnlineProfiler::new(10);
        p.record(1000.0, 0.0);
        p.record(2000.0, 0.0);
        let m = p.membound_histogram().unwrap();
        assert!(m.quantile(0.95) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_demand() {
        let mut p = OnlineProfiler::new(10);
        p.record(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_zero_window() {
        let _ = OnlineProfiler::new(0);
    }
}
