//! The closed-loop `Server::run` and the open-loop `ServerSim` stepping
//! surface are the **same machine**: replaying a trace up front and offering
//! the same arrivals incrementally (each one only when simulated time
//! reaches it, the way a cluster driver feeds a server) must produce
//! bitwise-identical `RunResult`s — every record field, every timeline
//! segment, the end time, down to the float bit patterns.
//!
//! The grid: policies (fixed-frequency at several levels, a stateful
//! arrival-boost policy, a tick-cycling policy) × idle modes (clock-gated,
//! deep sleep) × seeds/trace shapes. Controller policies from `rubik-core`
//! (Rubik, Pegasus) run the same check in the repo-level suite
//! (`tests/integration_step_equivalence.rs`) and the cluster suite.

use rubik_sim::{
    DvfsPolicy, FixedFrequencyPolicy, Freq, IdleMode, PolicyDecision, RequestRecord, RequestSpec,
    RunResult, Server, ServerSim, ServerState, SimConfig, Trace,
};

/// Byte-image of a `RunResult`, comparable with `==` down to NaN payloads.
fn result_bits(r: &RunResult) -> (Vec<[u64; 8]>, Vec<[u64; 4]>, u64) {
    let records = r
        .records()
        .iter()
        .map(|rec| {
            [
                rec.id,
                rec.arrival.to_bits(),
                rec.start.to_bits(),
                rec.completion.to_bits(),
                rec.compute_cycles.to_bits(),
                rec.membound_time.to_bits(),
                rec.queue_len_at_arrival as u64,
                rec.class as u64,
            ]
        })
        .collect();
    let segments = r
        .segments()
        .iter()
        .map(|s| {
            [
                s.start.to_bits(),
                s.end.to_bits(),
                s.freq.mhz() as u64,
                match s.activity {
                    rubik_sim::CoreActivity::Busy => 0,
                    rubik_sim::CoreActivity::Idle => 1,
                    rubik_sim::CoreActivity::Sleep => 2,
                },
            ]
        })
        .collect();
    (records, segments, r.end_time().to_bits())
}

/// SplitMix64, so traces vary by seed without a dependency on the workload
/// generator.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn unit(seed: u64, i: u64) -> f64 {
    (mix64(seed ^ i) >> 11) as f64 / (1u64 << 53) as f64
}

/// A bursty pseudo-random trace: exponential-ish gaps, variable demand, a
/// few zero-work requests, occasional simultaneous arrivals.
fn trace(seed: u64, n: usize) -> Trace {
    let mut now = 0.0;
    let reqs: Vec<RequestSpec> = (0..n as u64)
        .map(|i| {
            let u = unit(seed, 3 * i);
            // ~600 µs mean gap, with every 7th request arriving back-to-back.
            if i % 7 != 0 {
                now += -(1.0 - u.min(0.999_999)).ln() * 6e-4;
            }
            let cycles = if i % 11 == 0 {
                0.0
            } else {
                0.4e6 + 2.4e6 * unit(seed, 3 * i + 1)
            };
            let mem = 1e-5 * unit(seed, 3 * i + 2);
            RequestSpec::new(i, now, cycles, mem)
        })
        .collect();
    Trace::new(reqs)
}

/// Boosts to max while the queue is deep, drops to min when idle — exercises
/// mid-request transitions and the V/F transition latency path.
struct QueueBoost {
    dvfs_max: Freq,
    dvfs_min: Freq,
}

impl DvfsPolicy for QueueBoost {
    fn name(&self) -> &str {
        "queue-boost"
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        if state.pending_requests() >= 3 {
            PolicyDecision::SetFrequency(self.dvfs_max)
        } else {
            PolicyDecision::Keep
        }
    }

    fn on_completion(&mut self, state: &ServerState, _r: &RequestRecord) -> PolicyDecision {
        if state.is_idle() {
            PolicyDecision::SetFrequency(self.dvfs_min)
        } else {
            PolicyDecision::Keep
        }
    }

    fn idle_frequency(&self) -> Option<Freq> {
        Some(self.dvfs_min)
    }
}

/// Cycles through frequency levels on every tick — exercises the tick path,
/// including ticks fired during idle gaps (where open-loop drivers must keep
/// ticking for equivalence to hold).
struct TickCycler {
    levels: Vec<Freq>,
    at: usize,
}

impl DvfsPolicy for TickCycler {
    fn name(&self) -> &str {
        "tick-cycler"
    }

    fn on_arrival(&mut self, _state: &ServerState) -> PolicyDecision {
        PolicyDecision::Keep
    }

    fn on_completion(&mut self, _state: &ServerState, _r: &RequestRecord) -> PolicyDecision {
        PolicyDecision::Keep
    }

    fn on_tick(&mut self, _state: &ServerState) -> PolicyDecision {
        self.at = (self.at + 1) % self.levels.len();
        PolicyDecision::SetFrequency(self.levels[self.at])
    }
}

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::paper_simulated(),
        SimConfig::paper_simulated().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 100e-6,
        }),
        // A short tick makes idle-gap ticks frequent; a long transition
        // latency keeps transitions in flight across events.
        SimConfig::paper_real_system().with_tick_interval(2e-3),
    ]
}

fn policies(config: &SimConfig) -> Vec<Box<dyn DvfsPolicy>> {
    vec![
        Box::new(FixedFrequencyPolicy::new(config.dvfs.nominal())),
        Box::new(FixedFrequencyPolicy::new(config.dvfs.min())),
        Box::new(QueueBoost {
            dvfs_max: config.dvfs.max(),
            dvfs_min: config.dvfs.min(),
        }),
        Box::new(TickCycler {
            levels: config.dvfs.levels().to_vec(),
            at: 0,
        }),
    ]
}

/// Drives a `ServerSim` the way the closed-loop wrapper does: everything
/// offered up front.
fn run_offered_upfront(
    config: &SimConfig,
    policy: Box<dyn DvfsPolicy>,
    trace: &Trace,
) -> RunResult {
    let mut sim = ServerSim::new(config.clone(), policy);
    sim.offer_all(trace.requests().iter().copied());
    sim.close();
    sim.run_to_completion();
    sim.finish()
}

/// Drives a `ServerSim` the way a cluster driver does: each arrival is
/// offered only once simulated time reaches it (all earlier events stepped
/// first), with the stream open in between.
fn run_offered_incrementally(
    config: &SimConfig,
    policy: Box<dyn DvfsPolicy>,
    trace: &Trace,
) -> RunResult {
    let mut sim = ServerSim::new(config.clone(), policy);
    for &req in trace.requests() {
        while sim.next_event_time().is_some_and(|t| t < req.arrival) {
            sim.step().expect("a due event must fire");
        }
        sim.offer(req);
    }
    sim.close();
    sim.run_to_completion();
    sim.finish()
}

#[test]
fn offered_stepping_is_bitwise_identical_to_run() {
    for config in configs() {
        for seed in [1u64, 42, 2015] {
            let trace = trace(seed, 400);
            for (p_ref, (p_up, p_inc)) in policies(&config)
                .into_iter()
                .zip(policies(&config).into_iter().zip(policies(&config)))
            {
                let name = p_ref.name().to_string();
                let mut p_ref = p_ref;
                let reference = result_bits(&Server::new(config.clone()).run(&trace, &mut p_ref));

                let upfront = result_bits(&run_offered_upfront(&config, p_up, &trace));
                assert!(
                    upfront == reference,
                    "up-front ServerSim diverged from Server::run: policy {name}, seed {seed}"
                );

                let incremental = result_bits(&run_offered_incrementally(&config, p_inc, &trace));
                assert!(
                    incremental == reference,
                    "incremental ServerSim diverged from Server::run: policy {name}, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn drain_until_in_slices_matches_run() {
    // Draining in arbitrary time slices (including slices that end between
    // events) must not change anything.
    let config = SimConfig::paper_simulated();
    let t = trace(7, 300);
    let mut reference_policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
    let reference = result_bits(&Server::new(config.clone()).run(&t, &mut reference_policy));

    let mut sim = ServerSim::new(
        config.clone(),
        FixedFrequencyPolicy::new(config.dvfs.nominal()),
    );
    sim.offer_all(t.requests().iter().copied());
    sim.close();
    let end = t.duration() + 1.0;
    let mut slice_end = 0.0;
    let mut i = 0u64;
    while sim.next_event_time().is_some() {
        slice_end += 1e-3 * (1.0 + unit(13, i));
        i += 1;
        sim.drain_until(slice_end.min(end));
        if slice_end >= end {
            sim.run_to_completion();
        }
    }
    assert!(result_bits(&sim.finish()) == reference);
}

#[test]
fn borrowed_and_boxed_policies_are_equivalent() {
    // `ServerSim<&mut dyn DvfsPolicy>` (how Server::run drives it) and
    // `ServerSim<Box<dyn DvfsPolicy>>` (how a cluster owns it) run the same
    // machine.
    let config = SimConfig::paper_simulated();
    let t = trace(99, 250);
    let mut borrowed_policy = FixedFrequencyPolicy::new(config.dvfs.min());
    let mut sim_borrowed =
        ServerSim::new(config.clone(), &mut borrowed_policy as &mut dyn DvfsPolicy);
    sim_borrowed.offer_all(t.requests().iter().copied());
    sim_borrowed.close();
    sim_borrowed.run_to_completion();
    let borrowed = result_bits(&sim_borrowed.finish());

    let boxed: Box<dyn DvfsPolicy> = Box::new(FixedFrequencyPolicy::new(config.dvfs.min()));
    let mut sim_boxed = ServerSim::new(config.clone(), boxed);
    sim_boxed.offer_all(t.requests().iter().copied());
    sim_boxed.close();
    sim_boxed.run_to_completion();
    let boxed = result_bits(&sim_boxed.finish());

    assert!(borrowed == boxed);
}
