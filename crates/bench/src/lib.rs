//! Shared harness for the experiment-reproduction binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that prints the corresponding rows/series as tab-separated
//! text. This library holds the pieces they share: building traces at the
//! paper's loads, computing the latency bound (tail latency of the
//! fixed-frequency scheme at 50% load), and running each scheme on a trace.
//!
//! # Perf tracking
//!
//! `benches/table_rebuild.rs` and `benches/decision_latency.rs` measure the
//! controller's two hot paths (spectral table rebuild vs the direct
//! reference builder, and per-arrival decision latency) and merge their
//! results into `BENCH_controller.json` at the repo root — one JSON object
//! `{"benchmarks": [{"id", "mean_ns", "median_ns", "min_ns", "samples",
//! "iters_per_sample", "elems_per_iter"}]}`, written by the vendored
//! criterion's JSON emitter and uploaded as a CI artifact so the perf
//! trajectory is visible across PRs. `benches/sweep_throughput.rs` adds the
//! fleet-scale axis: serial vs N-thread wall time of the paper-shaped
//! colocation grid on `rubik-sweep`, merged into the same file plus a
//! `BENCH_sweep.json` summary. `benches/cluster_throughput.rs` tracks the
//! multi-server event loop (10/100/1000-server fleets, Rubik per server)
//! and `benches/fleet_cap.rs` the fleet-management acceptance experiment
//! (100 big/little servers under a global power budget, with and without
//! queue migration); both merge their summaries into named sections of
//! `BENCH_cluster.json` via [`merge_bench_section`].

use rubik::core::{replay, replay_energy, replay_tail};
use rubik::load::LoadShape;
use rubik::{
    AdrenalineOracle, AppProfile, CorePowerModel, DynamicOracle, FixedFrequencyPolicy, Freq,
    RubikConfig, RubikController, RunResult, Server, SimConfig, StaticOracle, Telemetry, Trace,
    TraceLog, WorkloadGenerator,
};
use rubik_sweep::SweepExecutor;

pub mod faults;
pub mod hedge;

/// Tail percentile used throughout the evaluation.
pub const TAIL_QUANTILE: f64 = 0.95;

/// Command-line flags shared by every `fig*`/`table*` binary.
///
/// All flags are optional overrides of each binary's paper defaults:
///
/// * `--requests N` — requests per experiment run,
/// * `--seed N` — base RNG seed,
/// * `--threads N` — worker threads for the grid sweeps (`0` = one per
///   available core); forwarded to [`rubik_sweep::SweepExecutor`]. Results
///   are independent of this flag by the engine's determinism contract,
/// * `--trace-out PATH` — write a telemetry trace of the binary's
///   representative run to `PATH`: Chrome `trace_event` JSON (open in
///   `chrome://tracing` or Perfetto) when the path ends in `.trace.json`,
///   the self-describing `rubik-trace-v1` format otherwise. Recording never
///   changes results (the telemetry neutrality contract) and never touches
///   stdout, so golden captures are unaffected. Binaries without a traced
///   run accept and ignore the flag,
/// * `--load-shape SPEC` — replace a fleet binary's steady arrival process
///   with a time-varying one (see [`LoadShapeArg`]): `steady`,
///   `ramp:FROM:TO`, `step:BEFORE:AFTER`, or `diurnal:MEAN:AMPLITUDE`, all
///   loads as fractions of per-server nominal capacity. Binaries without a
///   shaped mode accept and ignore the flag; output with the flag absent is
///   byte-identical to before the flag existed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchArgs {
    /// Override for the per-run request count.
    pub requests: Option<usize>,
    /// Override for the base RNG seed.
    pub seed: Option<u64>,
    /// Worker threads for grid sweeps (`None` = binary default of auto).
    pub threads: Option<usize>,
    /// Telemetry trace destination (`None` = tracing disabled).
    pub trace_out: Option<String>,
    /// Time-varying load shape override (`None` = the binary's steady
    /// default arrival process).
    pub load_shape: Option<LoadShapeArg>,
}

/// The `--load-shape` axis: a parsed shape specification, turned into a
/// concrete [`LoadShape`] once the binary knows its duration scale.
///
/// All load levels are fractions of *per-server* nominal capacity, matching
/// the per-server loads the fleet binaries already print; sources scale to
/// the fleet with `ShapedSource::for_fleet`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShapeArg {
    /// `steady` — constant at the binary's default per-server load.
    Steady,
    /// `ramp:FROM:TO` — linear ramp across the run.
    Ramp {
        /// Load at the start of the run.
        from: f64,
        /// Load at the end of the run.
        to: f64,
    },
    /// `step:BEFORE:AFTER` — a load step at the run midpoint.
    Step {
        /// Load before the midpoint.
        before: f64,
        /// Load after the midpoint.
        after: f64,
    },
    /// `diurnal:MEAN:AMPLITUDE` — two sinusoid periods across the run.
    Diurnal {
        /// Mean load.
        mean: f64,
        /// Swing amplitude (`≤ mean`).
        amplitude: f64,
    },
}

impl LoadShapeArg {
    /// Parses a `--load-shape` specification.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the malformed part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut num = |name: &str| {
            parts
                .next()
                .ok_or_else(|| format!("--load-shape {kind}: missing {name}"))
                .and_then(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("--load-shape {kind}: invalid {name} {v:?}"))
                })
                .and_then(|v| {
                    if v.is_finite() && (0.0..=16.0).contains(&v) {
                        Ok(v)
                    } else {
                        Err(format!("--load-shape {kind}: {name} {v} outside [0, 16]"))
                    }
                })
        };
        let arg = match kind {
            "steady" => Self::Steady,
            "ramp" => Self::Ramp {
                from: num("FROM")?,
                to: num("TO")?,
            },
            "step" => Self::Step {
                before: num("BEFORE")?,
                after: num("AFTER")?,
            },
            "diurnal" => {
                let mean = num("MEAN")?;
                let amplitude = num("AMPLITUDE")?;
                if amplitude > mean {
                    return Err(format!(
                        "--load-shape diurnal: amplitude {amplitude} exceeds mean {mean}"
                    ));
                }
                Self::Diurnal { mean, amplitude }
            }
            other => {
                return Err(format!(
                    "--load-shape: unknown shape {other:?} (expected steady, ramp, step, diurnal)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("--load-shape {kind}: too many parameters"));
        }
        Ok(arg)
    }

    /// The concrete [`LoadShape`] over a window of `duration` seconds;
    /// `base_load` fills in the level for [`LoadShapeArg::Steady`].
    pub fn to_shape(&self, base_load: f64, duration: f64) -> LoadShape {
        match *self {
            Self::Steady => LoadShape::Steady {
                load: base_load,
                duration,
            },
            Self::Ramp { from, to } => LoadShape::Ramp { from, to, duration },
            Self::Step { before, after } => LoadShape::Step {
                before,
                after,
                at: duration / 2.0,
                duration,
            },
            Self::Diurnal { mean, amplitude } => LoadShape::Diurnal {
                mean,
                amplitude,
                period: duration / 2.0,
                duration,
            },
        }
    }

    /// Time-averaged load of the shape, used to size the window so a run
    /// draws roughly the binary's request budget.
    pub fn average_load(&self, base_load: f64) -> f64 {
        match *self {
            Self::Steady => base_load,
            Self::Ramp { from, to } => 0.5 * (from + to),
            Self::Step { before, after } => 0.5 * (before + after),
            Self::Diurnal { mean, .. } => mean,
        }
    }

    /// A stable human-readable label (used in figure headers).
    pub fn label(&self) -> String {
        match *self {
            Self::Steady => "steady".to_string(),
            Self::Ramp { from, to } => format!("ramp:{from}:{to}"),
            Self::Step { before, after } => format!("step:{before}:{after}"),
            Self::Diurnal { mean, amplitude } => format!("diurnal:{mean}:{amplitude}"),
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments; prints usage and exits on `--help` or
    /// a malformed flag.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage());
            std::process::exit(0);
        }
        match Self::parse_from(&argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses a flag list (exposed for tests).
    pub fn parse_from(argv: &[String]) -> Result<Self, String> {
        let mut args = Self::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} requires a value"))
                    .and_then(|v| {
                        v.parse::<u64>()
                            .map_err(|_| format!("{name}: invalid number {v:?}"))
                    })
            };
            match flag.as_str() {
                "--requests" => args.requests = Some(value("--requests")? as usize),
                "--seed" => args.seed = Some(value("--seed")?),
                "--threads" => args.threads = Some(value("--threads")? as usize),
                "--trace-out" => {
                    let path = it
                        .next()
                        .ok_or_else(|| "--trace-out requires a path".to_string())?;
                    if path.is_empty() {
                        return Err("--trace-out: path must not be empty".to_string());
                    }
                    args.trace_out = Some(path.clone());
                }
                "--load-shape" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--load-shape requires a shape spec".to_string())?;
                    args.load_shape = Some(LoadShapeArg::parse(spec)?);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.requests == Some(0) {
            return Err("--requests must be at least 1".to_string());
        }
        Ok(args)
    }

    /// The usage string printed for `--help`.
    pub fn usage() -> String {
        "usage: <figure-binary> [--requests N] [--seed N] [--threads N] [--trace-out PATH]\n\
         \x20                [--load-shape SPEC]\n\
         \n\
         --requests N     requests per experiment run (default: the figure's paper shape)\n\
         --seed N         base RNG seed (default: the figure's published seed)\n\
         --threads N      worker threads for grid sweeps; 0 = one per core (default: 0)\n\
         --trace-out PATH write a telemetry trace of the representative run: Chrome\n\
         \x20                trace_event JSON if PATH ends in .trace.json, rubik-trace-v1\n\
         \x20                JSON otherwise (recording never changes results or stdout)\n\
         --load-shape SPEC time-varying arrival process for the fleet binaries:\n\
         \x20                steady | ramp:FROM:TO | step:BEFORE:AFTER |\n\
         \x20                diurnal:MEAN:AMPLITUDE, loads as fractions of per-server\n\
         \x20                nominal capacity (default: the figure's steady load)\n\
         \n\
         Results are bit-identical for any --threads value (rubik-sweep's\n\
         determinism contract); the flag only changes wall-clock time."
            .to_string()
    }

    /// Applies the request/seed overrides to a harness built with the
    /// binary's defaults.
    pub fn apply(&self, mut harness: Harness) -> Harness {
        if let Some(requests) = self.requests {
            harness.requests = requests;
        }
        if let Some(seed) = self.seed {
            harness.seed = seed;
        }
        harness
    }

    /// The requested thread count (`0` = auto) for grid sweeps.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or(0)
    }

    /// A sweep executor honouring `--threads`.
    pub fn executor(&self) -> SweepExecutor {
        SweepExecutor::new(self.threads())
    }

    /// Whether `--trace-out` asked for a telemetry trace.
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some()
    }

    /// The telemetry to attach to a traced run:
    /// [`recording`](Telemetry::recording) when `--trace-out` was given,
    /// [`disabled`](Telemetry::disabled) (bitwise-invisible) otherwise.
    pub fn telemetry(&self) -> Telemetry {
        if self.tracing() {
            Telemetry::recording()
        } else {
            Telemetry::disabled()
        }
    }

    /// Writes `log` to the `--trace-out` path, if one was given: Chrome
    /// `trace_event` JSON when the path ends in `.trace.json`, the
    /// `rubik-trace-v1` format otherwise. Reports to stderr (never stdout —
    /// figure stdout is golden-pinned) and does not abort the binary on
    /// I/O errors: the figure's numbers are the primary product.
    pub fn emit_trace(&self, log: &TraceLog) {
        let Some(path) = &self.trace_out else {
            return;
        };
        let (format, body) = if path.ends_with(".trace.json") {
            ("chrome trace_event", rubik::telemetry::to_chrome_json(log))
        } else {
            (rubik::telemetry::FORMAT, rubik::telemetry::to_json(log))
        };
        match std::fs::write(path, body) {
            Ok(()) => eprintln!(
                "trace: wrote {format} ({} requests, {} epochs) to {path}",
                log.requests.len(),
                log.epochs.len()
            ),
            Err(e) => eprintln!("trace: could not write {path}: {e}"),
        }
    }
}

/// Default number of requests per experiment run. The paper's request counts
/// (Table 3) are used where runtime allows; this default keeps the full
/// harness runnable in minutes.
pub const DEFAULT_REQUESTS: usize = 4000;

/// The largest fleet power (W) over any epoch-aligned window of a cluster
/// run, integrated from the per-server timelines — the number a power cap
/// is judged by. The trailing partial window is measured over its actual
/// duration. Shared by the `fleet_cap` bench and the `fig_fleet` binary so
/// the recorded cap numbers and the figure always use the same accounting.
///
/// One forward cursor per server makes the whole computation a single
/// linear pass over the timelines (a per-window rescan would be quadratic
/// in the run length).
pub fn max_epoch_power(
    results: &[RunResult],
    duration: f64,
    epoch: f64,
    power: &CorePowerModel,
) -> f64 {
    use rubik::sim::CoreActivity;
    assert!(epoch > 0.0, "epoch must be positive");
    let span_power = |s: &rubik::sim::Segment| match s.activity {
        CoreActivity::Busy => power.active_power(s.freq),
        CoreActivity::Idle => power.idle_power(s.freq),
        CoreActivity::Sleep => power.sleep_power(),
    };
    let mut cursors = vec![0usize; results.len()];
    let mut max = 0.0f64;
    let mut from = 0.0;
    while from < duration {
        let to = (from + epoch).min(duration);
        let mut energy = 0.0;
        for (r, cursor) in results.iter().zip(&mut cursors) {
            let segments = r.segments();
            let mut i = *cursor;
            while i < segments.len() {
                let s = &segments[i];
                if s.start >= to {
                    break;
                }
                let start = s.start.max(from);
                let end = s.end.min(to);
                if end > start {
                    energy += span_power(s) * (end - start);
                }
                if s.end <= to {
                    i += 1;
                } else {
                    break;
                }
            }
            *cursor = i;
        }
        max = max.max(energy / (to - from));
        from = to;
    }
    max
}

/// Merges one named top-level section into a bench-summary JSON file
/// (`BENCH_cluster.json`): the file holds an object of `"section": value`
/// pairs, and each bench overwrites only its own section so independent
/// benches (`cluster_throughput`, `fleet_cap`) can share the file. `body`
/// must be a complete JSON value. Sections are written in name order, so
/// the output is deterministic regardless of which bench ran last.
///
/// The file is rewritten from the sections that could be recovered; a file
/// in an unrecognized format is replaced by the new section alone.
pub fn merge_bench_section(path: &str, section: &str, body: &str) -> std::io::Result<()> {
    let mut sections = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse_top_level_sections(&text))
        .unwrap_or_default();
    match sections.iter_mut().find(|(name, _)| name == section) {
        Some((_, value)) => *value = body.to_string(),
        None => sections.push((section.to_string(), body.to_string())),
    }
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (name, value)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {}", value.trim()));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits a JSON object's source text into its top-level `(key, raw value)`
/// pairs. Handles nested objects/arrays and strings; returns `None` if the
/// text is not a JSON object of string keys (e.g. a legacy flat file from
/// before sections existed, which callers then simply replace).
pub fn parse_top_level_sections(text: &str) -> Option<Vec<(String, String)>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut sections = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let key = rest[..key_end].to_string();
        if key.contains('\\') {
            return None; // escaped keys are out of scope for bench files
        }
        rest = rest[key_end + 1..].trim_start().strip_prefix(':')?;
        // Scan one balanced JSON value.
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth = depth.checked_sub(1)?,
                ',' if !in_string && depth == 0 => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let (value, tail) = match end {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        if value.trim().is_empty() {
            return None;
        }
        sections.push((key, value.trim().to_string()));
        rest = tail.trim_start();
    }
    Some(sections)
}

/// The experiment context shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Simulator configuration (Table 2).
    pub sim: SimConfig,
    /// Core power model.
    pub power: CorePowerModel,
    /// Requests per run.
    pub requests: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Outcome of one scheme on one trace.
#[derive(Debug, Clone, Copy)]
pub struct SchemeResult {
    /// 95th-percentile latency (seconds).
    pub tail_latency: f64,
    /// Active + idle core energy per request (J).
    pub energy_per_request: f64,
    /// Core power savings relative to a reference energy (filled by callers).
    pub busy_time: f64,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Creates the default harness.
    pub fn new() -> Self {
        Self {
            sim: SimConfig::paper_simulated(),
            power: CorePowerModel::haswell_like(),
            requests: DEFAULT_REQUESTS,
            seed: 2015,
        }
    }

    /// Creates a harness with the real-system DVFS latency (Sec. 5.5).
    pub fn real_system() -> Self {
        Self {
            sim: SimConfig::paper_real_system(),
            ..Self::new()
        }
    }

    /// A harness with a custom request count (for the slower sweeps).
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// The active-power closure used by the replay-based oracles.
    pub fn active_power(&self) -> impl Fn(Freq) -> f64 + '_ {
        move |f| self.power.active_power(f)
    }

    /// Generates a steady-load trace for an application.
    pub fn trace(&self, profile: &AppProfile, load: f64, seed_offset: u64) -> Trace {
        let mut generator = WorkloadGenerator::new(profile.clone(), self.seed + seed_offset);
        generator.steady_trace(load, self.requests)
    }

    /// The latency bound for an application: the tail latency of the
    /// fixed-frequency (nominal) scheme at 50% load (Sec. 5.2).
    pub fn latency_bound(&self, profile: &AppProfile) -> f64 {
        let trace = self.trace(profile, 0.5, 777);
        StaticOracle::new(self.sim.dvfs.clone(), TAIL_QUANTILE)
            .tail_at(&trace, self.sim.dvfs.nominal())
            .expect("non-empty calibration trace")
    }

    /// Runs the fixed-frequency baseline.
    pub fn run_fixed(&self, trace: &Trace, freq: Freq) -> SchemeResult {
        let mut policy = FixedFrequencyPolicy::new(freq);
        let result = Server::new(self.sim.clone()).run(trace, &mut policy);
        self.summarize(trace, &result)
    }

    /// Runs Rubik (with or without feedback), returning the scheme summary
    /// and the full simulation result.
    pub fn run_rubik(
        &self,
        trace: &Trace,
        bound: f64,
        feedback: bool,
    ) -> (SchemeResult, RunResult) {
        let mut cfg = RubikConfig::new(bound).with_profiling_window(2048);
        if !feedback {
            cfg = cfg.without_feedback();
        }
        let mut rubik = RubikController::new(cfg, self.sim.dvfs.clone());
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(512)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );
        let result = Server::new(self.sim.clone()).run(trace, &mut rubik);
        (self.summarize(trace, &result), result)
    }

    /// Runs the StaticOracle scheme on a trace.
    pub fn run_static_oracle(&self, trace: &Trace, bound: f64) -> (SchemeResult, Freq) {
        let oracle = StaticOracle::new(self.sim.dvfs.clone(), TAIL_QUANTILE);
        let freq = oracle.lowest_feasible_freq(trace, bound);
        (self.run_fixed(trace, freq), freq)
    }

    /// Runs the AdrenalineOracle scheme on a trace (replay-based, as the
    /// scheme is defined offline).
    pub fn run_adrenaline(&self, trace: &Trace, bound: f64) -> SchemeResult {
        let policy = AdrenalineOracle::new(self.sim.dvfs.clone(), TAIL_QUANTILE).train(
            trace,
            bound,
            self.active_power(),
        );
        let freqs = policy.assign(trace);
        self.summarize_replay(trace, &freqs)
    }

    /// Runs the DynamicOracle scheme on a trace (replay-based).
    pub fn run_dynamic_oracle(&self, trace: &Trace, bound: f64) -> SchemeResult {
        let schedule = DynamicOracle::new(self.sim.dvfs.clone(), TAIL_QUANTILE).schedule(
            trace,
            bound,
            self.active_power(),
        );
        self.summarize_replay(trace, &schedule.freqs)
    }

    fn summarize(&self, trace: &Trace, result: &RunResult) -> SchemeResult {
        let residency = result.freq_residency();
        SchemeResult {
            tail_latency: result.tail_latency(TAIL_QUANTILE).unwrap_or(0.0),
            energy_per_request: self
                .power
                .energy_per_request(&residency, trace.len().max(1)),
            busy_time: residency.busy_time(),
        }
    }

    fn summarize_replay(&self, trace: &Trace, freqs: &[Freq]) -> SchemeResult {
        let records = replay(trace, freqs);
        let tail = replay_tail(&records, TAIL_QUANTILE).unwrap_or(0.0);
        // Replay-based schemes are charged active energy plus idle energy at
        // the minimum frequency for the rest of the trace duration, so they
        // are comparable with the event-simulated schemes.
        let active = replay_energy(trace, freqs, self.active_power());
        let busy: f64 = records.iter().map(|r| r.service_time()).sum();
        let duration = records.iter().map(|r| r.completion).fold(0.0f64, f64::max);
        let idle = (duration - busy).max(0.0) * self.power.idle_power(self.sim.dvfs.min());
        SchemeResult {
            tail_latency: tail,
            energy_per_request: (active + idle) / trace.len().max(1) as f64,
            busy_time: busy,
        }
    }

    /// Power savings of `scheme` relative to `baseline`, in percent.
    pub fn savings_percent(baseline: &SchemeResult, scheme: &SchemeResult) -> f64 {
        (1.0 - scheme.energy_per_request / baseline.energy_per_request) * 100.0
    }
}

/// Prints a tab-separated header line.
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints a tab-separated row of values with 4 significant digits.
pub fn print_row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    println!("{label}\t{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(flags: &[&str]) -> Vec<String> {
        flags.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bench_args_parse_all_flags() {
        let args = BenchArgs::parse_from(&argv(&[
            "--requests",
            "500",
            "--seed",
            "9",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(args.requests, Some(500));
        assert_eq!(args.seed, Some(9));
        assert_eq!(args.threads(), 4);

        let defaults = BenchArgs::parse_from(&[]).unwrap();
        assert_eq!(defaults, BenchArgs::default());
        assert_eq!(defaults.threads(), 0);
        assert!(!defaults.telemetry().is_enabled());

        let traced = BenchArgs::parse_from(&argv(&["--trace-out", "run.trace.json"])).unwrap();
        assert_eq!(traced.trace_out.as_deref(), Some("run.trace.json"));
        assert!(traced.tracing());
        assert!(traced.telemetry().is_enabled());
    }

    #[test]
    fn bench_args_parse_load_shapes() {
        let steady = BenchArgs::parse_from(&argv(&["--load-shape", "steady"])).unwrap();
        assert_eq!(steady.load_shape, Some(LoadShapeArg::Steady));

        let ramp = BenchArgs::parse_from(&argv(&["--load-shape", "ramp:0.2:0.7"])).unwrap();
        assert_eq!(
            ramp.load_shape,
            Some(LoadShapeArg::Ramp { from: 0.2, to: 0.7 })
        );
        let shape = ramp.load_shape.unwrap().to_shape(0.45, 10.0);
        assert_eq!(shape.duration(), 10.0);
        assert!((shape.load_at(5.0) - 0.45).abs() < 1e-12);
        assert!((ramp.load_shape.unwrap().average_load(0.45) - 0.45).abs() < 1e-12);
        assert_eq!(ramp.load_shape.unwrap().label(), "ramp:0.2:0.7");

        let step = LoadShapeArg::parse("step:0.3:0.6").unwrap();
        assert_eq!(
            step,
            LoadShapeArg::Step {
                before: 0.3,
                after: 0.6
            }
        );
        // The step lands at the window midpoint.
        let shape = step.to_shape(0.45, 8.0);
        assert_eq!(shape.load_at(3.9), 0.3);
        assert_eq!(shape.load_at(4.0), 0.6);

        let diurnal = LoadShapeArg::parse("diurnal:0.4:0.2").unwrap();
        let shape = diurnal.to_shape(0.45, 12.0);
        shape.validate().unwrap();
        assert!((shape.peak_load() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bench_args_reject_bad_load_shapes() {
        for bad in [
            "",
            "sawtooth",
            "ramp",
            "ramp:0.2",
            "ramp:0.2:x",
            "ramp:0.2:0.4:0.6",
            "step:-0.1:0.5",
            "diurnal:0.3:0.4", // amplitude > mean
            "steady:0.4",      // steady takes no parameters
        ] {
            assert!(
                BenchArgs::parse_from(&argv(&["--load-shape", bad])).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert!(BenchArgs::parse_from(&argv(&["--load-shape"])).is_err());
    }

    #[test]
    fn bench_args_reject_bad_input() {
        assert!(BenchArgs::parse_from(&argv(&["--requests"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--requests", "abc"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--requests", "0"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--frobnicate"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--trace-out"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--trace-out", ""])).is_err());
        // --threads 0 is valid: it means one worker per core.
        assert!(BenchArgs::parse_from(&argv(&["--threads", "0"])).is_ok());
    }

    #[test]
    fn bench_args_apply_overrides_harness_defaults() {
        let args = BenchArgs {
            requests: Some(123),
            seed: Some(77),
            threads: None,
            trace_out: None,
            load_shape: None,
        };
        let h = args.apply(Harness::new());
        assert_eq!(h.requests, 123);
        assert_eq!(h.seed, 77);

        let untouched = BenchArgs::default().apply(Harness::new());
        assert_eq!(untouched.requests, DEFAULT_REQUESTS);
        assert_eq!(untouched.seed, 2015);
    }

    #[test]
    fn latency_bound_is_above_the_mean_service_time() {
        let h = Harness::new().with_requests(1500);
        let profile = AppProfile::masstree();
        let bound = h.latency_bound(&profile);
        assert!(bound > profile.mean_service_time());
        assert!(bound < 50.0 * profile.mean_service_time());
    }

    #[test]
    fn scheme_runners_produce_consistent_summaries() {
        let h = Harness::new().with_requests(800);
        let profile = AppProfile::masstree();
        let bound = h.latency_bound(&profile);
        let trace = h.trace(&profile, 0.4, 1);

        let fixed = h.run_fixed(&trace, h.sim.dvfs.nominal());
        let (rubik, _) = h.run_rubik(&trace, bound, true);
        let (static_oracle, freq) = h.run_static_oracle(&trace, bound);

        assert!(fixed.energy_per_request > 0.0);
        assert!(rubik.tail_latency <= bound * 1.2);
        assert!(static_oracle.tail_latency <= bound * 1.001);
        assert!(freq <= h.sim.dvfs.nominal());
        assert!(Harness::savings_percent(&fixed, &rubik) > 0.0);
    }

    #[test]
    fn max_epoch_power_matches_the_per_window_residency_computation() {
        use rubik::sim::{CoreActivity, Segment};
        let power = CorePowerModel::haswell_like();
        let seg = |start: f64, end: f64, mhz: u32, activity: CoreActivity| Segment {
            start,
            end,
            freq: Freq::from_mhz(mhz),
            activity,
        };
        // Two servers whose segments straddle the window boundaries.
        let a = RunResult::new(
            vec![],
            vec![
                seg(0.0, 0.35, 2400, CoreActivity::Busy),
                seg(0.35, 0.8, 800, CoreActivity::Idle),
                seg(0.8, 1.1, 3400, CoreActivity::Busy),
            ],
            1.1,
        );
        let b = RunResult::new(
            vec![],
            vec![
                seg(0.0, 0.5, 1600, CoreActivity::Sleep),
                seg(0.5, 1.1, 2000, CoreActivity::Busy),
            ],
            1.1,
        );
        let results = [a, b];
        let duration = 1.1;
        let epoch = 0.25;
        // Reference: the straightforward per-window residency rescans.
        let mut expected = 0.0f64;
        let mut from = 0.0f64;
        while from < duration {
            let to = (from + epoch).min(duration);
            let energy: f64 = results
                .iter()
                .map(|r| power.energy(&r.freq_residency_between(from, to)).total())
                .sum();
            expected = expected.max(energy / (to - from));
            from = to;
        }
        let got = max_epoch_power(&results, duration, epoch, &power);
        assert!(
            (got - expected).abs() < 1e-9,
            "cursor pass {got} vs per-window reference {expected}"
        );
        assert!(got > 0.0);
        assert_eq!(max_epoch_power(&results, 0.0, epoch, &power), 0.0);
    }

    #[test]
    fn top_level_sections_roundtrip_nested_values() {
        let text = "{\n  \"a\": {\"x\": [1, 2], \"s\": \"b}r,ace\"},\n  \"b\": 3.5\n}\n";
        let sections = parse_top_level_sections(text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "a");
        assert_eq!(sections[0].1, "{\"x\": [1, 2], \"s\": \"b}r,ace\"}");
        assert_eq!(sections[1], ("b".to_string(), "3.5".to_string()));
        assert!(parse_top_level_sections("[1, 2]").is_none());
        assert!(parse_top_level_sections("{\"k\": }").is_none());
    }

    #[test]
    fn merge_bench_section_preserves_sibling_sections() {
        let dir = std::env::temp_dir().join("rubik_bench_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_merge.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        merge_bench_section(path, "fleet_cap", "{\"budget\": 450}").unwrap();
        merge_bench_section(path, "cluster_throughput", "{\"fleets\": [1, 2]}").unwrap();
        // Overwriting one section leaves the other alone, and section order
        // is name-sorted regardless of write order.
        merge_bench_section(path, "fleet_cap", "{\"budget\": 500}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let sections = parse_top_level_sections(&text).unwrap();
        assert_eq!(
            sections,
            vec![
                (
                    "cluster_throughput".to_string(),
                    "{\"fleets\": [1, 2]}".to_string()
                ),
                ("fleet_cap".to_string(), "{\"budget\": 500}".to_string()),
            ]
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn merge_bench_section_replaces_unrecognized_files() {
        let dir = std::env::temp_dir().join("rubik_bench_merge_test_legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_legacy.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "not json at all").unwrap();
        merge_bench_section(path, "fleet_cap", "{\"budget\": 1}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let sections = parse_top_level_sections(&text).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "fleet_cap");
        let _ = std::fs::remove_file(path);
    }
}
