//! Colocation schemes and their frequency selection logic.
//!
//! All four schemes share the same substrate — partitioned memory system,
//! latency-critical (LC) work preempting batch work on each core — and differ
//! only in how core frequency is chosen (paper Sec. 7):
//!
//! * **RubikColoc** — Rubik sets the frequency while LC requests are pending;
//!   batch work runs at its optimal throughput-per-watt (TPW) frequency.
//! * **StaticColoc** — the LC application runs at the StaticOracle frequency
//!   (chosen without accounting for interference); batch at optimal TPW.
//! * **HW-T** — hardware-coordinated DVFS that maximizes aggregate chip IPC
//!   under the TDP. Because IPC gains grow with compute intensity, the
//!   allocation starves memory-bound LC phases of frequency in favour of
//!   compute-bound batch work.
//! * **HW-TPW** — hardware-coordinated DVFS that maximizes aggregate
//!   throughput per watt, which lands at low frequencies regardless of
//!   latency needs.

use serde::{Deserialize, Serialize};

use rubik_power::{CorePowerModel, Tdp};
use rubik_sim::{DvfsConfig, Freq};
use rubik_workloads::{AppProfile, BatchApp, BatchMix};

/// The colocation schemes compared in Fig. 15 / Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColocScheme {
    /// Rubik controls the LC frequency; batch runs at optimal TPW.
    RubikColoc,
    /// StaticOracle frequency for LC; batch at optimal TPW.
    StaticColoc,
    /// Hardware DVFS maximizing aggregate IPC under TDP.
    HwThroughput,
    /// Hardware DVFS maximizing aggregate throughput per watt.
    HwThroughputPerWatt,
}

impl ColocScheme {
    /// All schemes, in the order the paper plots them.
    pub fn all() -> [ColocScheme; 4] {
        [
            ColocScheme::StaticColoc,
            ColocScheme::RubikColoc,
            ColocScheme::HwThroughput,
            ColocScheme::HwThroughputPerWatt,
        ]
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ColocScheme::RubikColoc => "RubikColoc",
            ColocScheme::StaticColoc => "StaticColoc",
            ColocScheme::HwThroughput => "HW-T",
            ColocScheme::HwThroughputPerWatt => "HW-TPW",
        }
    }
}

/// Relative throughput of a core whose occupant has the given memory-bound
/// fraction `mem`, at frequency `f` (1.0 at the nominal frequency).
fn relative_throughput(mem: f64, f: Freq, nominal: Freq) -> f64 {
    let time = (1.0 - mem) * nominal.hz() / f.hz() + mem;
    1.0 / time
}

/// The frequency that maximizes throughput per watt for a core whose occupant
/// has memory-bound fraction `mem`.
pub fn tpw_optimal_freq(mem: f64, dvfs: &DvfsConfig, power: &CorePowerModel) -> Freq {
    let nominal = dvfs.nominal();
    dvfs.levels()
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let ta = relative_throughput(mem, a, nominal) / power.active_power(a);
            let tb = relative_throughput(mem, b, nominal) / power.active_power(b);
            ta.partial_cmp(&tb).expect("finite TPW")
        })
        .expect("DVFS domain has at least one level")
}

/// The optimal-TPW frequency for a batch application with its LLC share
/// (batch apps never run above nominal, to stay within the TDP — Sec. 7).
pub fn batch_tpw_freq(
    app: &BatchApp,
    llc_share: f64,
    dvfs: &DvfsConfig,
    power: &CorePowerModel,
) -> Freq {
    let nominal = dvfs.nominal();
    dvfs.levels()
        .iter()
        .copied()
        .filter(|&f| f <= nominal)
        .max_by(|&a, &b| {
            let ta = app.throughput(a, nominal, llc_share) / power.active_power(a);
            let tb = app.throughput(b, nominal, llc_share) / power.active_power(b);
            ta.partial_cmp(&tb).expect("finite TPW")
        })
        .expect("at least one level at or below nominal")
}

/// The frequency the HW-T allocator leaves for a core currently serving the
/// LC application, when the other cores of the chip are running the batch
/// mix and the package must stay under TDP.
///
/// HW-T maximizes aggregate instructions per second. Compute-bound batch
/// work converts frequency into IPC far more effectively than the
/// memory-bound LC phases do, so the IPC-optimal allocation boosts the batch
/// cores as high as the TDP allows and hands the LC-serving core only the
/// leftover budget. This latency obliviousness is what produces the large
/// tail degradations the paper reports for HW-T (up to 8.2×, Fig. 15).
pub fn hw_t_lc_freq(
    lc: &AppProfile,
    mix: &BatchMix,
    cores: usize,
    dvfs: &DvfsConfig,
    power: &CorePowerModel,
    tdp: &Tdp,
) -> Freq {
    assert!(cores >= 1);
    let _ = (lc, mix);
    if cores == 1 {
        // No competition for the budget: the single core gets everything.
        return tdp
            .max_uniform_freq(power, dvfs, 1)
            .unwrap_or_else(|| dvfs.min());
    }

    // Step 1: batch cores take the highest uniform frequency that leaves at
    // least the minimum level for the LC core.
    let batch_cores = cores - 1;
    let lc_min_power = power.active_power(dvfs.min());
    let batch_freq = dvfs
        .levels()
        .iter()
        .copied()
        .rev()
        .find(|&f| {
            batch_cores as f64 * power.active_power(f) + lc_min_power <= tdp.core_budget() + 1e-9
        })
        .unwrap_or_else(|| dvfs.min());

    // Step 2: the LC core gets the highest level that still fits in the
    // remaining budget.
    let batch_power = batch_cores as f64 * power.active_power(batch_freq);
    dvfs.levels()
        .iter()
        .copied()
        .rev()
        .find(|&f| batch_power + power.active_power(f) <= tdp.core_budget() + 1e-9)
        .unwrap_or_else(|| dvfs.min())
}

/// The frequency HW-TPW gives a core while it serves the LC application.
pub fn hw_tpw_lc_freq(lc: &AppProfile, dvfs: &DvfsConfig, power: &CorePowerModel) -> Freq {
    tpw_optimal_freq(lc.mem_fraction(), dvfs, power)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DvfsConfig, CorePowerModel, Tdp) {
        (
            DvfsConfig::haswell_like(),
            CorePowerModel::haswell_like(),
            Tdp::paper(),
        )
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: Vec<&str> = ColocScheme::all().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn tpw_optimal_is_well_below_maximum() {
        let (dvfs, power, _) = setup();
        let f = tpw_optimal_freq(0.3, &dvfs, &power);
        assert!(
            f < Freq::from_mhz(2400),
            "TPW-optimal {f} should be below nominal"
        );
        assert!(f >= dvfs.min());
    }

    #[test]
    fn memory_bound_occupants_prefer_lower_frequencies() {
        let (dvfs, power, _) = setup();
        let compute_bound = tpw_optimal_freq(0.05, &dvfs, &power);
        let memory_bound = tpw_optimal_freq(0.7, &dvfs, &power);
        assert!(memory_bound <= compute_bound);
    }

    #[test]
    fn batch_tpw_never_exceeds_nominal() {
        let (dvfs, power, _) = setup();
        for app in BatchApp::spec_catalogue() {
            let f = batch_tpw_freq(&app, 0.5, &dvfs, &power);
            assert!(f <= dvfs.nominal(), "{}: {f}", app.name());
        }
    }

    #[test]
    fn hw_t_starves_memory_bound_lc_apps() {
        let (dvfs, power, tdp) = setup();
        let mix = &BatchMix::paper_mixes(1)[0];
        // A memory-bound LC app competes badly for TDP headroom against
        // compute-bound batch work.
        let lc = AppProfile::masstree();
        let f = hw_t_lc_freq(&lc, mix, 6, &dvfs, &power, &tdp);
        assert!(
            f < Freq::from_mhz(2400),
            "HW-T gave the LC core {f}, expected below nominal"
        );
    }

    #[test]
    fn hw_t_with_a_single_core_gives_it_everything() {
        let (dvfs, power, tdp) = setup();
        let mix = &BatchMix::paper_mixes(1)[0];
        let lc = AppProfile::masstree();
        let f = hw_t_lc_freq(&lc, mix, 1, &dvfs, &power, &tdp);
        assert_eq!(f, dvfs.max());
    }

    #[test]
    fn hw_tpw_picks_a_low_frequency_for_lc() {
        let (dvfs, power, _) = setup();
        let f = hw_tpw_lc_freq(&AppProfile::xapian(), &dvfs, &power);
        assert!(f <= Freq::from_mhz(2000), "HW-TPW chose {f}");
    }
}
