//! Quickstart: run the Rubik controller on a key-value-store workload and
//! compare its energy and tail latency against the fixed-frequency baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rubik::{
    AppProfile, CorePowerModel, FixedFrequencyPolicy, RubikConfig, RubikController, Server,
    SimConfig, WorkloadGenerator,
};

fn main() {
    let profile = AppProfile::masstree();
    let load = 0.4;
    let requests = 5_000;

    // 1. Generate a request trace: Poisson arrivals at 40% of the server's
    //    capacity, per-request demand drawn from the masstree model.
    let mut generator = WorkloadGenerator::new(profile.clone(), 42);
    let trace = generator.steady_trace(load, requests);

    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();

    // 2. Baseline: always run at the nominal 2.4 GHz.
    let mut fixed = FixedFrequencyPolicy::new(config.dvfs.nominal());
    let fixed_result = Server::new(config.clone()).run(&trace, &mut fixed);
    let fixed_tail = fixed_result.tail_latency(0.95).expect("non-empty run");
    let fixed_energy = power.energy_per_request(&fixed_result.freq_residency(), requests);

    // 3. Rubik: meet the baseline's tail latency with minimal power.
    let bound = fixed_tail;
    let mut rubik = RubikController::new(RubikConfig::new(bound), config.dvfs.clone());
    let rubik_result = Server::new(config).run(&trace, &mut rubik);
    let rubik_tail = rubik_result.tail_latency(0.95).expect("non-empty run");
    let rubik_energy = power.energy_per_request(&rubik_result.freq_residency(), requests);

    println!(
        "workload          : {} ({})",
        profile.name(),
        profile.description()
    );
    println!("load              : {:.0}%", load * 100.0);
    println!(
        "latency bound     : {:.0} us (95th percentile)",
        bound * 1e6
    );
    println!();
    println!(
        "{:<18} {:>14} {:>22}",
        "scheme", "tail (us)", "core energy (mJ/req)"
    );
    println!(
        "{:<18} {:>14.1} {:>22.3}",
        "fixed 2.4 GHz",
        fixed_tail * 1e6,
        fixed_energy * 1e3
    );
    println!(
        "{:<18} {:>14.1} {:>22.3}",
        "rubik",
        rubik_tail * 1e6,
        rubik_energy * 1e3
    );
    println!();
    println!(
        "Rubik saves {:.0}% of core energy per request while staying within the bound.",
        (1.0 - rubik_energy / fixed_energy) * 100.0
    );
}
