//! Online profiling of per-request service demand.
//!
//! Rubik estimates two probability distributions from performance counters
//! (paper Sec. 4.2): per-request compute cycles `P[C = c]` and per-request
//! memory-bound time `P[M = t]`. The [`OnlineProfiler`] accumulates the
//! demands of completed requests (which the simulator reports in each
//! [`rubik_sim::RequestRecord`]) over a sliding window of recent requests and
//! produces the 128-bucket histograms that the target tail tables are built
//! from.
//!
//! # Incremental maintenance
//!
//! The profiler keeps each channel's per-bucket sample counts up to date as
//! samples enter and leave the window — O(1) per [`OnlineProfiler::record`]
//! in the common case, with a full O(window) recount only when the window
//! maximum (and with it the bucket grid) changes. Materializing a histogram
//! ([`OnlineProfiler::compute_histogram_into`]) is then a pass over the 128
//! buckets into a caller-owned [`Histogram`] — no per-tick scan of the whole
//! window, no per-sample division, and no allocation. A monotonic
//! [`OnlineProfiler::version`] is bumped on every mutation so the controller
//! can skip table rebuilds entirely when the profile is unchanged since the
//! last build.

use std::collections::VecDeque;

use rubik_stats::Histogram;

/// Number of histogram buckets, matching the paper's implementation
/// ("We use 128-bucket distributions", Sec. 4.2).
pub const DEFAULT_BUCKETS: usize = 128;

/// Bucket width used when every sample in the window is zero, mirroring
/// [`Histogram::from_samples`]'s degenerate case.
const DEGENERATE_WIDTH: f64 = 1e-30;

/// One profiled quantity: the sliding sample window plus incrementally
/// maintained per-bucket counts on the current grid.
#[derive(Debug, Clone)]
struct Channel {
    samples: VecDeque<f64>,
    counts: Vec<u32>,
    /// Maximum over the current window (0 when empty).
    max: f64,
    /// How many window samples equal `max`: the grid only changes when the
    /// *last* instance leaves, so recurring maxima (discrete demand pools)
    /// keep eviction O(1) instead of degrading every record to a recount.
    max_count: usize,
    /// Current grid width: `max / buckets`, or the degenerate width when the
    /// window max is zero. Matches `Histogram::from_samples`' choice exactly.
    bucket_width: f64,
}

impl Channel {
    fn new(window: usize, buckets: usize) -> Self {
        Self {
            samples: VecDeque::with_capacity(window),
            counts: vec![0; buckets],
            max: 0.0,
            max_count: 0,
            bucket_width: DEGENERATE_WIDTH,
        }
    }

    /// Bucket index of `s` on the current grid — the same expression
    /// `Histogram::from_samples` uses, so the incremental counts are
    /// indistinguishable from a fresh scan.
    #[inline]
    fn index_of(&self, s: f64) -> usize {
        ((s / self.bucket_width) as usize).min(self.counts.len() - 1)
    }

    fn set_width_from_max(&mut self) {
        self.bucket_width = if self.max > 0.0 {
            self.max / self.counts.len() as f64
        } else {
            DEGENERATE_WIDTH
        };
    }

    /// Rebuilds `max`, the grid, and every bucket count from the window.
    /// O(window); only needed when the maximum enters or leaves the window.
    fn recount(&mut self) {
        let mut max = 0.0f64;
        for &s in &self.samples {
            if s > max {
                max = s;
            }
        }
        self.max = max;
        self.max_count = self.samples.iter().filter(|&&s| s == max).count();
        self.set_width_from_max();
        self.counts.fill(0);
        // Split the borrow: index_of needs &self fields while counts is
        // written, so compute indices with locals.
        let width = self.bucket_width;
        let buckets = self.counts.len();
        for &s in &self.samples {
            let idx = ((s / width) as usize).min(buckets - 1);
            self.counts[idx] += 1;
        }
    }

    /// Appends `s`, evicting the oldest sample if the window is at
    /// `capacity`. O(1) unless the bucket grid changes — a new window
    /// maximum arriving, or the *last* instance of the old maximum leaving —
    /// which forces an O(window) recount.
    fn push(&mut self, s: f64, capacity: usize) {
        let evicted = if self.samples.len() == capacity {
            self.samples.pop_front()
        } else {
            None
        };
        self.samples.push_back(s);
        if let Some(old) = evicted {
            if old == self.max {
                self.max_count -= 1;
            }
        }
        if s == self.max {
            self.max_count += 1;
        }
        if s > self.max || self.max_count == 0 {
            // The grid widens (new maximum) or shrinks (maximum fully
            // departed): rebuild everything on the new grid.
            self.recount();
            return;
        }
        if let Some(old) = evicted {
            let idx = self.index_of(old);
            self.counts[idx] -= 1;
        }
        let idx = self.index_of(s);
        self.counts[idx] += 1;
    }

    /// Materializes the current counts into `out` (see
    /// [`Histogram::assign_counts`] for the bit-parity argument).
    fn histogram_into(&self, out: &mut Histogram) {
        assert!(
            !self.samples.is_empty(),
            "cannot build a histogram from no samples"
        );
        out.assign_counts(&self.counts, self.samples.len(), self.bucket_width);
    }
}

/// Sliding-window profiler of per-request compute and memory demand.
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    window: usize,
    compute: Channel,
    membound: Channel,
    version: u64,
}

impl OnlineProfiler {
    /// Creates a profiler that keeps the most recent `window` requests and
    /// builds `DEFAULT_BUCKETS`-bucket histograms.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        Self::with_buckets(window, DEFAULT_BUCKETS)
    }

    /// Creates a profiler with an explicit bucket count.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `buckets == 0`.
    pub fn with_buckets(window: usize, buckets: usize) -> Self {
        assert!(window > 0, "profiling window must be non-empty");
        assert!(buckets > 0, "histograms need at least one bucket");
        Self {
            window,
            compute: Channel::new(window, buckets),
            membound: Channel::new(window, buckets),
            version: 0,
        }
    }

    /// Records the demand of one completed request (evicting the oldest
    /// window entry once the window is full) and bumps the profile version.
    ///
    /// # Panics
    ///
    /// Panics if either demand is negative or non-finite.
    pub fn record(&mut self, compute_cycles: f64, membound_time: f64) {
        assert!(
            compute_cycles.is_finite() && compute_cycles >= 0.0,
            "compute cycles must be finite and non-negative"
        );
        assert!(
            membound_time.is_finite() && membound_time >= 0.0,
            "memory-bound time must be finite and non-negative"
        );
        self.compute.push(compute_cycles, self.window);
        self.membound.push(membound_time, self.window);
        self.version += 1;
    }

    /// Monotonic counter bumped by every mutation of the window (records,
    /// seeds, and the evictions they cause). Two equal versions guarantee
    /// bit-identical histograms, which is what lets the controller skip
    /// no-op table rebuilds.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of requests currently in the window.
    pub fn len(&self) -> usize {
        self.compute.samples.len()
    }

    /// Whether the profiler has seen no requests yet.
    pub fn is_empty(&self) -> bool {
        self.compute.samples.is_empty()
    }

    /// Seeds the profiler with known demands (e.g. from a captured trace or a
    /// previous run) so that Rubik starts with informed tables instead of a
    /// warm-up period.
    pub fn seed<I>(&mut self, demands: I)
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        for (c, m) in demands {
            self.record(c, m);
        }
    }

    /// Histogram of per-request compute cycles, or `None` until at least one
    /// request has been recorded.
    pub fn compute_histogram(&self) -> Option<Histogram> {
        if self.is_empty() {
            return None;
        }
        let mut out = Histogram::zero();
        self.compute.histogram_into(&mut out);
        Some(out)
    }

    /// Histogram of per-request memory-bound time, or `None` until at least
    /// one request has been recorded. All-zero memory demand yields a
    /// degenerate single-bucket histogram at a vanishing width, which
    /// downstream code treats as "no memory component".
    pub fn membound_histogram(&self) -> Option<Histogram> {
        if self.is_empty() {
            return None;
        }
        let mut out = Histogram::zero();
        self.membound.histogram_into(&mut out);
        Some(out)
    }

    /// Materializes the compute-cycle histogram into a caller-owned
    /// [`Histogram`], reusing its storage: the allocation-free path the
    /// controller's periodic rebuild uses.
    ///
    /// # Panics
    ///
    /// Panics if no request has been recorded yet.
    pub fn compute_histogram_into(&self, out: &mut Histogram) {
        self.compute.histogram_into(out);
    }

    /// Materializes the memory-bound-time histogram into a caller-owned
    /// [`Histogram`], reusing its storage.
    ///
    /// # Panics
    ///
    /// Panics if no request has been recorded yet.
    pub fn membound_histogram_into(&self, out: &mut Histogram) {
        self.membound.histogram_into(out);
    }

    /// Mean compute cycles over the window (0 if empty).
    pub fn mean_compute_cycles(&self) -> f64 {
        mean(&self.compute.samples)
    }

    /// Mean memory-bound time over the window (0 if empty).
    pub fn mean_membound_time(&self) -> f64 {
        mean(&self.membound.samples)
    }
}

fn mean(v: &VecDeque<f64>) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_stats::DeterministicRng;

    #[test]
    fn empty_profiler_has_no_histograms() {
        let p = OnlineProfiler::new(100);
        assert!(p.is_empty());
        assert!(p.compute_histogram().is_none());
        assert!(p.membound_histogram().is_none());
        assert_eq!(p.mean_compute_cycles(), 0.0);
        assert_eq!(p.version(), 0);
    }

    #[test]
    fn records_and_builds_histograms() {
        let mut p = OnlineProfiler::new(100);
        for i in 1..=50 {
            p.record(i as f64 * 1000.0, i as f64 * 1e-6);
        }
        assert_eq!(p.len(), 50);
        let c = p.compute_histogram().unwrap();
        let m = p.membound_histogram().unwrap();
        assert!(c.quantile(0.95) >= 45_000.0);
        assert!(m.quantile(0.95) >= 45e-6);
        assert!((p.mean_compute_cycles() - 25_500.0).abs() < 1e-6);
    }

    #[test]
    fn window_evicts_old_samples() {
        let mut p = OnlineProfiler::new(10);
        // Ten huge requests followed by ten tiny ones: the window should only
        // remember the tiny ones.
        for _ in 0..10 {
            p.record(1e9, 0.0);
        }
        for _ in 0..10 {
            p.record(1e3, 0.0);
        }
        assert_eq!(p.len(), 10);
        assert!(p.compute_histogram().unwrap().quantile(0.99) <= 1e3 + 1.0);
    }

    #[test]
    fn seed_prepopulates_the_window() {
        let mut p = OnlineProfiler::new(100);
        p.seed((0..20).map(|i| (1000.0 + i as f64, 1e-6)));
        assert_eq!(p.len(), 20);
        assert_eq!(p.version(), 20);
        assert!(p.compute_histogram().is_some());
    }

    #[test]
    fn zero_memory_demand_is_representable() {
        let mut p = OnlineProfiler::new(10);
        p.record(1000.0, 0.0);
        p.record(2000.0, 0.0);
        let m = p.membound_histogram().unwrap();
        assert!(m.quantile(0.95) <= 1.0);
    }

    #[test]
    fn version_bumps_on_every_record() {
        let mut p = OnlineProfiler::new(2);
        assert_eq!(p.version(), 0);
        p.record(1.0, 0.0);
        assert_eq!(p.version(), 1);
        p.record(2.0, 0.0);
        p.record(3.0, 0.0); // also evicts
        assert_eq!(p.version(), 3);
    }

    /// The incremental counts must be indistinguishable from rebuilding the
    /// histogram from the raw window with `Histogram::from_samples` — across
    /// window fill-up, steady-state sliding, maxima entering, and maxima
    /// being evicted.
    #[test]
    fn incremental_histograms_match_full_rescan_bitwise() {
        let mut rng = DeterministicRng::new(0x9A);
        let window = 64;
        let mut p = OnlineProfiler::with_buckets(window, 32);
        let mut raw_c: Vec<f64> = Vec::new();
        let mut raw_m: Vec<f64> = Vec::new();
        for step in 0..400 {
            // Occasional huge samples force grid growth; their eviction
            // later forces the recount path.
            let c = if step % 37 == 5 {
                rng.lognormal(5e7, 0.2)
            } else {
                rng.lognormal(1e6, 0.8)
            };
            let m = if step % 53 == 11 {
                0.0
            } else {
                rng.lognormal(50e-6, 0.6)
            };
            p.record(c, m);
            raw_c.push(c);
            raw_m.push(m);
            let lo = raw_c.len().saturating_sub(window);
            let expect_c = Histogram::from_samples(&raw_c[lo..], 32);
            let expect_m = Histogram::from_samples(&raw_m[lo..], 32);
            let got_c = p.compute_histogram().unwrap();
            let got_m = p.membound_histogram().unwrap();
            assert_eq!(got_c.pmf(), expect_c.pmf(), "compute pmf at step {step}");
            assert_eq!(got_c.bucket_width(), expect_c.bucket_width());
            assert_eq!(got_m.pmf(), expect_m.pmf(), "memory pmf at step {step}");
            assert_eq!(got_m.bucket_width(), expect_m.bucket_width());
        }
    }

    #[test]
    fn histogram_into_matches_allocating_version_and_reuses_storage() {
        let mut p = OnlineProfiler::new(128);
        let mut rng = DeterministicRng::new(7);
        p.seed((0..128).map(|_| (rng.lognormal(1e6, 0.4), rng.lognormal(1e-4, 0.4))));
        let mut c = Histogram::zero();
        let mut m = Histogram::zero();
        p.compute_histogram_into(&mut c);
        p.membound_histogram_into(&mut m);
        assert_eq!(c.pmf(), p.compute_histogram().unwrap().pmf());
        assert_eq!(m.pmf(), p.membound_histogram().unwrap().pmf());
        let ptr = c.pmf().as_ptr();
        p.record(2e6, 2e-4);
        p.compute_histogram_into(&mut c);
        assert_eq!(ptr, c.pmf().as_ptr(), "refill must reuse the PMF buffer");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_demand() {
        let mut p = OnlineProfiler::new(10);
        p.record(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_zero_window() {
        let _ = OnlineProfiler::new(0);
    }
}
