//! The sharded-engine determinism contract: `Cluster::run_sharded*` is
//! **bit-identical** to the single-heap `run*` family at every shard
//! count. Pinned the same way `stream_equivalence` pins the streaming
//! contract — full bit-images (outcome, every per-server `RunResult`,
//! telemetry bytes) across a `router × fleet × fault-plan × seed` grid,
//! at 1, 2, 4, and 8 shards, under serial and multi-threaded sweep
//! execution (worker pools nested inside sweep threads).
//!
//! The grid deliberately includes fleets smaller than the shard count
//! (shard clamping), fully-loaded cells (watt cap + migrator + faults +
//! timeouts/retries), and a hedged cell — hedging is the one cross-shard
//! interaction inside an event window, so hedged runs must take the
//! merged serial drain and still produce the same bits.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FaultPlan, HealthAware, JoinShortestQueue, PegasusFleet,
    RequestPolicy, RoundRobin, Router, ShardSpec, ThresholdMigrator,
};
use rubik_load::PoissonSource;
use rubik_power::CorePowerModel;
use rubik_sim::{FixedFrequencyPolicy, RunResult, SimConfig};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let a = &o.availability;
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
        a.offered as u64,
        a.completed as u64,
        a.goodput as u64,
        a.lost as u64,
        a.deadline_exceeded as u64,
        a.timeouts as u64,
        a.retries as u64,
        a.requeued_on_failure as u64,
        a.salvaged_in_flight as u64,
        a.hedged as u64,
        a.hedge_wins as u64,
        a.hedge_cancelled as u64,
        a.tail_latency_ok.map_or(u64::MAX, f64::to_bits),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
        ]);
    }
    bits
}

fn router(which: usize) -> Box<dyn Router> {
    match which {
        0 => Box::new(HealthAware::new(JoinShortestQueue::new())),
        _ => Box::new(RoundRobin::new()),
    }
}

fn eventful_plan(duration: f64) -> FaultPlan {
    FaultPlan::new()
        .crash(0, 0.25 * duration)
        .recover(0, 0.70 * duration)
        .straggle(1, 0.10 * duration, 0.60 * duration, 4.0)
}

/// One fully-loaded cluster per grid cell. `plan` 0 = bare, 1 = faults
/// with timeouts and retries, 2 = the same plus hedging (forcing the
/// merged serial drain inside the sharded engine).
fn cell_cluster(
    config: &SimConfig,
    fleet: usize,
    which_router: usize,
    plan: usize,
    duration: f64,
    seed: u64,
) -> Cluster<FixedFrequencyPolicy> {
    let power = CorePowerModel::haswell_like();
    let mean = AppProfile::masstree().mean_service_time();
    let mut cluster = Cluster::new(config.clone(), fleet, router(which_router), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_power(power)
    .with_fleet_controller(Box::new(
        PegasusFleet::new(4.0 * fleet as f64, power).with_epoch(duration / 20.0),
    ))
    .with_migrator(Box::new(ThresholdMigrator::default()));
    if plan > 0 {
        let mut policy = RequestPolicy::new()
            .with_timeout(8.0 * mean)
            .with_retries(4, mean, 16.0 * mean)
            .with_jitter_seed(seed)
            .salvaging_in_flight()
            .draining_on_crash();
        if plan == 2 {
            policy = policy.with_hedging(0.9, 0.5 * mean).with_hedge_window(64);
        }
        cluster = cluster
            .with_fault_plan(eventful_plan(duration))
            .with_request_policy(policy);
    }
    cluster
}

#[test]
fn run_sharded_is_bitwise_identical_across_the_grid_and_shard_counts() {
    let fleets = [2usize, 5];
    let seeds = [7u64, 31];
    let spec = SweepSpec::new()
        .axis("router", 2)
        .axis("fleet", fleets.len())
        .axis("plan", 3)
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let fleet = fleets[c.get("fleet")];
        let seed = seeds[c.get("seed")];
        let plan = c.get("plan");
        let requests = 100 * fleet;
        let trace = fleet_trace(&AppProfile::masstree(), 0.5, fleet, requests, seed);
        let duration = trace.duration();
        let build = || cell_cluster(&config, fleet, c.get("router"), plan, duration, seed);

        let (batch_o, batch_r) = build().run_with_results(&trace);
        for shards in SHARD_COUNTS {
            let (sharded_o, sharded_r) =
                build().run_sharded_with_results(ShardSpec::new(shards), &trace);
            assert_eq!(
                outcome_bits(&batch_o),
                outcome_bits(&sharded_o),
                "run_sharded({shards}) changed the ClusterOutcome (cell {})",
                c.index()
            );
            assert_eq!(batch_r.len(), sharded_r.len());
            for (i, (b, s)) in batch_r.iter().zip(&sharded_r).enumerate() {
                assert_eq!(
                    result_bits(b),
                    result_bits(s),
                    "run_sharded({shards}) changed server {i}'s RunResult (cell {})",
                    c.index()
                );
            }
        }

        // Fold the full bit-image into the grid result so the cross-thread
        // comparison pins every record and segment, not just the outcome.
        let mut bits = outcome_bits(&batch_o);
        for r in &batch_r {
            bits.extend(result_bits(r));
        }
        bits
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    // Sharded runs nest a worker pool inside each sweep thread; the grid
    // must not care.
    let swept = SweepExecutor::new(2).run(&spec, cell).into_results();
    assert_eq!(
        swept, reference,
        "shard equivalence grid diverged under threaded sweep execution"
    );
}

/// Telemetry bytes are part of the contract: a sharded traced run
/// serializes to the same JSON as the single-heap traced run, faults,
/// migrations, epochs and all.
#[test]
fn run_sharded_traced_matches_run_traced() {
    let config = SimConfig::paper_simulated();
    let fleet = 4;
    let trace = fleet_trace(&AppProfile::masstree(), 0.5, fleet, 400, 7);
    let duration = trace.duration();
    let build = || cell_cluster(&config, fleet, 0, 1, duration, 7);

    let (batch_o, batch_r, batch_log) = build().run_traced(&trace);
    for shards in SHARD_COUNTS {
        let (sharded_o, sharded_r, sharded_log) =
            build().run_sharded_traced(ShardSpec::new(shards), &trace);
        assert_eq!(outcome_bits(&batch_o), outcome_bits(&sharded_o));
        for (b, s) in batch_r.iter().zip(&sharded_r) {
            assert_eq!(result_bits(b), result_bits(s));
        }
        assert_eq!(
            rubik_telemetry::to_json(&batch_log),
            rubik_telemetry::to_json(&sharded_log),
            "telemetry bytes diverged at {shards} shards"
        );
    }
}

/// The sharded engine composes with streaming: a live source through
/// `run_sharded_streamed` is bit-identical to the batch sharded run of
/// its materialized twin — and to the plain streamed run.
#[test]
fn run_sharded_streamed_matches_batch_and_streamed_runs() {
    let config = SimConfig::paper_simulated();
    let fleet = 4;
    let requests = 400;
    let seed = 11;
    let trace = fleet_trace(&AppProfile::masstree(), 0.5, fleet, requests, seed);
    let duration = trace.duration();
    let build = || cell_cluster(&config, fleet, 0, 1, duration, seed);
    let source = || PoissonSource::new(AppProfile::masstree(), 0.5 * fleet as f64, requests, seed);

    let (batch_o, batch_r) = build().run_with_results(&trace);
    let (plain_o, plain_r) = build()
        .run_streamed_with_results(source())
        .expect("a Poisson source is time-ordered");
    assert_eq!(outcome_bits(&batch_o), outcome_bits(&plain_o));

    for shards in SHARD_COUNTS {
        let (sharded_o, sharded_r) = build()
            .run_sharded_streamed_with_results(ShardSpec::new(shards), source())
            .expect("a Poisson source is time-ordered");
        assert_eq!(
            outcome_bits(&batch_o),
            outcome_bits(&sharded_o),
            "sharded streamed outcome diverged at {shards} shards"
        );
        for ((b, p), s) in batch_r.iter().zip(&plain_r).zip(&sharded_r) {
            assert_eq!(result_bits(b), result_bits(p));
            assert_eq!(result_bits(b), result_bits(s));
        }
    }
}

/// `ShardSpec` ergonomics: absurd shard counts clamp to the fleet size,
/// `single()` is the serial loop, and `auto()` produces *some* valid
/// count — all bit-identical.
#[test]
fn shard_spec_clamps_and_auto_detects() {
    let config = SimConfig::paper_simulated();
    let trace = fleet_trace(&AppProfile::masstree(), 0.5, 3, 150, 5);
    let build = || {
        Cluster::new(
            config.clone(),
            3,
            Box::new(JoinShortestQueue::new()),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
    };
    let reference = build().run(&trace);
    for spec in [
        ShardSpec::new(64), // clamps to 3
        ShardSpec::single(),
        ShardSpec::auto(),
        ShardSpec::default(),
    ] {
        assert!(spec.shards() >= 1);
        let sharded = build().run_sharded(spec, &trace);
        assert_eq!(reference, sharded);
    }
}
