//! The Rubik controller (paper Sec. 4).
//!
//! On every request arrival and completion, Rubik finds the lowest frequency
//! that keeps the tail-latency bound for *every* request currently in the
//! system:
//!
//! ```text
//! f  ≥  max_i   c_i / (L − (t_i + m_i))          (Eq. 2)
//! ```
//!
//! where, for the request at queue position `i`, `t_i` is the time it has
//! already spent in the system, and `c_i` / `m_i` are the tail remaining
//! compute cycles and memory-bound time read from the precomputed
//! [`TargetTailTables`]. Requests whose slack `L − t_i − m_i` is gone force
//! the maximum frequency. When the system is idle, the core drops to the
//! minimum frequency.
//!
//! The tables are rebuilt periodically (every simulator tick, 100 ms in the
//! paper) from the [`OnlineProfiler`]'s sliding window; a PI
//! [`FeedbackController`] trims the internal latency target using the tail
//! latency measured over a rolling window (1 s in the paper).
//!
//! # Rebuild cost
//!
//! The periodic rebuild is incremental and allocation-free end to end. The
//! controller owns a persistent [`TableBuilder`] (cached FFT plans, reused
//! ladder buffers) plus two persistent [`Histogram`]s the profiler's
//! incrementally maintained bucket counts are materialized into, and it
//! **version-gates** the whole rebuild: [`OnlineProfiler::version`] is
//! bumped on every recorded sample, so a tick on which no request completed
//! short-circuits in nanoseconds — identical histograms would rebuild
//! identical tables, so skipping changes no output bit.
//! [`RubikStats::table_rebuilds_performed`] /
//! [`RubikStats::table_rebuilds_skipped`] count the two cases.

use rubik_sim::{DvfsConfig, DvfsPolicy, Freq, PolicyDecision, RequestRecord, ServerState, Trace};
use rubik_stats::{Histogram, RollingTailTracker};
use serde::{Deserialize, Serialize};

use crate::feedback::FeedbackController;
use crate::profiler::OnlineProfiler;
use crate::tables::{
    TableBuilder, TargetTailTables, DEFAULT_GAUSSIAN_CUTOFF, DEFAULT_PROGRESS_ROWS,
};

/// Configuration of the Rubik controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RubikConfig {
    /// The tail-latency bound `L`, in seconds.
    pub latency_bound: f64,
    /// The tail percentile the bound applies to (0.95 in the paper).
    pub quantile: f64,
    /// Number of recent requests the online profiler keeps.
    pub profiling_window: usize,
    /// Minimum profiled requests before the analytical model is trusted;
    /// until then Rubik runs at the nominal frequency when busy.
    pub min_samples: usize,
    /// Number of progress (ω) rows in the target tail tables.
    pub progress_rows: usize,
    /// Queue depth at which the Gaussian approximation takes over.
    pub gaussian_cutoff: usize,
    /// Whether the PI feedback fine-tuning is enabled.
    pub feedback: bool,
    /// Window over which measured tail latency feeds the PI controller, in
    /// seconds (1 s in the paper).
    pub feedback_window: f64,
    /// Whether periodic table rebuilds are skipped when the profile is
    /// unchanged since the last build (identical histograms rebuild
    /// identical tables, so gating never changes an output bit). On by
    /// default; determinism tests disable it to compare against a
    /// rebuild-every-tick controller.
    pub rebuild_gating: bool,
}

impl RubikConfig {
    /// Creates a configuration with the paper's defaults for the given
    /// tail-latency bound.
    ///
    /// # Panics
    ///
    /// Panics if `latency_bound <= 0`.
    pub fn new(latency_bound: f64) -> Self {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        Self {
            latency_bound,
            quantile: 0.95,
            profiling_window: 4096,
            min_samples: 64,
            progress_rows: DEFAULT_PROGRESS_ROWS,
            gaussian_cutoff: DEFAULT_GAUSSIAN_CUTOFF,
            feedback: true,
            feedback_window: 1.0,
            rebuild_gating: true,
        }
    }

    /// Disables the PI feedback fine-tuning ("Rubik (No Feedback Control)" in
    /// Fig. 9).
    pub fn without_feedback(mut self) -> Self {
        self.feedback = false;
        self
    }

    /// Disables version-gated rebuild skipping, forcing a full table rebuild
    /// on every tick. Only useful for determinism tests and benchmarks — the
    /// gated controller produces bit-identical decisions.
    pub fn without_rebuild_gating(mut self) -> Self {
        self.rebuild_gating = false;
        self
    }

    /// Sets the tail percentile (e.g. 0.99).
    ///
    /// # Panics
    ///
    /// Panics if the quantile is not in `(0, 1)`.
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        assert!(quantile > 0.0 && quantile < 1.0);
        self.quantile = quantile;
        self
    }

    /// Sets the table dimensions (used by ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_table_shape(mut self, progress_rows: usize, gaussian_cutoff: usize) -> Self {
        assert!(progress_rows > 0 && gaussian_cutoff > 0);
        self.progress_rows = progress_rows;
        self.gaussian_cutoff = gaussian_cutoff;
        self
    }

    /// Sets the profiling window size.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_profiling_window(mut self, window: usize) -> Self {
        assert!(window > 0);
        self.profiling_window = window;
        self
    }
}

/// Counters describing what the controller did during a run; useful for
/// tests, ablations, and the paper's overhead discussion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RubikStats {
    /// Number of frequency decisions evaluated (arrivals + completions).
    pub decisions: u64,
    /// Number of times the target tail tables were actually rebuilt.
    pub table_rebuilds_performed: u64,
    /// Number of periodic rebuilds skipped because the profiler version was
    /// unchanged since the last build (the histograms — and therefore the
    /// tables — would have been bit-identical).
    pub table_rebuilds_skipped: u64,
    /// Number of decisions made before the model had enough samples.
    pub cold_decisions: u64,
    /// Number of decisions where some request had no slack left (forcing the
    /// maximum frequency).
    pub saturated_decisions: u64,
}

/// The Rubik fine-grain DVFS controller.
#[derive(Debug, Clone)]
pub struct RubikController {
    config: RubikConfig,
    dvfs: DvfsConfig,
    profiler: OnlineProfiler,
    tables: Option<TargetTailTables>,
    /// Persistent build engine: cached FFT plans and reused ladder buffers
    /// make warm rebuilds allocation-free.
    builder: TableBuilder,
    /// Persistent histograms the profiler's bucket counts are materialized
    /// into on each performed rebuild.
    hist_compute: Histogram,
    hist_membound: Histogram,
    /// Profiler version the current tables were built from.
    built_version: Option<u64>,
    feedback: FeedbackController,
    measured: RollingTailTracker,
    last_feedback_update: f64,
    stats: RubikStats,
}

impl RubikController {
    /// Creates a Rubik controller for the given DVFS domain.
    pub fn new(config: RubikConfig, dvfs: DvfsConfig) -> Self {
        let measured = RollingTailTracker::new(config.feedback_window, config.quantile);
        Self {
            profiler: OnlineProfiler::new(config.profiling_window),
            tables: None,
            builder: TableBuilder::new(),
            hist_compute: Histogram::zero(),
            hist_membound: Histogram::zero(),
            built_version: None,
            feedback: FeedbackController::paper_default(),
            measured,
            last_feedback_update: 0.0,
            stats: RubikStats::default(),
            config,
            dvfs,
        }
    }

    /// Seeds the profiler with known per-request demands (compute cycles,
    /// memory-bound time) and builds the tables immediately. Useful when a
    /// trace has been captured previously, and in tests.
    pub fn seed_profile<I>(&mut self, demands: I)
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        self.profiler.seed(demands);
        self.rebuild_tables();
    }

    /// The standard experiment-harness construction: a controller seeded
    /// from the first `seed_requests` demands of `trace`. One definition so
    /// figures, benches, and equivalence tests all measure the same
    /// controller (per-server instances in a cluster call this once per
    /// server with the shared fleet trace).
    pub fn seeded_for_trace(
        config: RubikConfig,
        dvfs: DvfsConfig,
        trace: &Trace,
        seed_requests: usize,
    ) -> Self {
        let mut rubik = Self::new(config, dvfs);
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(seed_requests)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );
        rubik
    }

    /// The controller's configuration.
    pub fn config(&self) -> &RubikConfig {
        &self.config
    }

    /// Run counters.
    pub fn stats(&self) -> RubikStats {
        self.stats
    }

    /// The current target tail tables, if the model has been built.
    pub fn tables(&self) -> Option<&TargetTailTables> {
        self.tables.as_ref()
    }

    /// The external tail-latency bound `L` currently in force.
    pub fn latency_bound(&self) -> f64 {
        self.config.latency_bound
    }

    /// Retargets the external tail-latency bound mid-run (fleet-level power
    /// capping scales per-server bounds each epoch). Takes effect from the
    /// next decision; the precomputed tail tables are bound-independent (the
    /// bound enters Eq. 2 as the slack term), so no rebuild is needed.
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0`.
    pub fn set_latency_bound(&mut self, bound: f64) {
        assert!(bound > 0.0, "latency bound must be positive");
        self.config.latency_bound = bound;
    }

    /// The internal latency target currently in use (external bound scaled by
    /// the feedback controller).
    pub fn internal_target(&self) -> f64 {
        if self.config.feedback {
            self.feedback.internal_target(self.config.latency_bound)
        } else {
            self.config.latency_bound
        }
    }

    fn rebuild_tables(&mut self) {
        if self.profiler.len() < self.config.min_samples {
            return;
        }
        // Version gate: no sample has entered or left the window since the
        // last build, so the histograms — and therefore the tables — would
        // be bit-identical. Skip the whole rebuild.
        let version = self.profiler.version();
        if self.config.rebuild_gating
            && self.tables.is_some()
            && self.built_version == Some(version)
        {
            self.stats.table_rebuilds_skipped += 1;
            return;
        }
        self.profiler.compute_histogram_into(&mut self.hist_compute);
        self.profiler
            .membound_histogram_into(&mut self.hist_membound);
        match &mut self.tables {
            Some(tables) => self.builder.build_with_into(
                &self.hist_compute,
                &self.hist_membound,
                self.config.quantile,
                self.config.progress_rows,
                self.config.gaussian_cutoff,
                tables,
            ),
            None => {
                self.tables = Some(self.builder.build_with(
                    &self.hist_compute,
                    &self.hist_membound,
                    self.config.quantile,
                    self.config.progress_rows,
                    self.config.gaussian_cutoff,
                ))
            }
        }
        self.built_version = Some(version);
        self.stats.table_rebuilds_performed += 1;
    }

    /// Evaluates Eq. 2 for the current state and returns the chosen
    /// frequency.
    fn decide(&mut self, state: &ServerState) -> Freq {
        self.stats.decisions += 1;

        if state.is_idle() {
            return self.dvfs.min();
        }
        let tables = match &self.tables {
            Some(t) => t,
            None => {
                // Model not warmed up yet: run at nominal, the paper's
                // baseline frequency.
                self.stats.cold_decisions += 1;
                return self.dvfs.nominal();
            }
        };
        let bound = self.internal_target();

        let in_service = state
            .in_service
            .as_ref()
            .expect("non-idle state has a request in service");

        // Resolve the progress rows once for this decision; per queue
        // position the cursor lookup is two array reads (allocation-free,
        // no transcendental math — see `tables::TailsCursor`).
        let cursor = tables.tails_at(
            in_service.elapsed_compute_cycles,
            in_service.elapsed_membound_time,
        );

        let mut required_hz: f64 = 0.0;
        let mut saturated = false;

        // Position 0: the request in service.
        let mut consider = |pos: usize, arrival: f64| {
            let (c, m) = cursor.tails(pos);
            let waited = state.now - arrival;
            let slack = bound - waited - m;
            if slack <= 0.0 {
                saturated = true;
            } else {
                required_hz = required_hz.max(c / slack);
            }
        };

        consider(0, in_service.arrival);
        for (j, q) in state.queued.iter().enumerate() {
            consider(j + 1, q.arrival);
        }

        if saturated {
            self.stats.saturated_decisions += 1;
            return self.dvfs.max();
        }
        self.dvfs.ceil_level(required_hz)
    }
}

impl DvfsPolicy for RubikController {
    fn name(&self) -> &str {
        if self.config.feedback {
            "rubik"
        } else {
            "rubik-no-feedback"
        }
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        PolicyDecision::SetFrequency(self.decide(state))
    }

    fn on_completion(&mut self, state: &ServerState, record: &RequestRecord) -> PolicyDecision {
        self.profiler
            .record(record.compute_cycles, record.membound_time);
        self.measured.record(record.completion, record.latency());
        PolicyDecision::SetFrequency(self.decide(state))
    }

    fn on_tick(&mut self, state: &ServerState) -> PolicyDecision {
        // Rebuild the target tail tables from the latest profile (the 100 ms
        // periodic update of Sec. 4.2).
        self.rebuild_tables();

        // Feedback fine-tuning over the rolling measurement window.
        if self.config.feedback
            && state.now - self.last_feedback_update >= self.config.feedback_window
        {
            self.last_feedback_update = state.now;
            self.measured.advance(state.now);
            if let Some(tail) = self.measured.tail() {
                self.feedback.update(tail, self.config.latency_bound);
            }
        }

        PolicyDecision::SetFrequency(self.decide(state))
    }

    fn idle_frequency(&self) -> Option<Freq> {
        Some(self.dvfs.min())
    }

    fn latency_bound(&self) -> Option<f64> {
        Some(self.config.latency_bound)
    }

    fn set_latency_bound(&mut self, bound: f64) -> bool {
        RubikController::set_latency_bound(self, bound);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{Server, SimConfig};
    use rubik_workloads::{AppProfile, WorkloadGenerator};

    fn run_app(profile: AppProfile, load: f64, n: usize, bound: f64, feedback: bool) -> (f64, f64) {
        let sim_config = SimConfig::default();
        let mut generator = WorkloadGenerator::new(profile, 42);
        let trace = generator.steady_trace(load, n);

        let mut cfg = RubikConfig::new(bound).with_profiling_window(1024);
        if !feedback {
            cfg = cfg.without_feedback();
        }
        let mut rubik = RubikController::new(cfg, sim_config.dvfs.clone());
        // Seed from the trace itself so the short test run starts warm, as a
        // long-running server would be.
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(512)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );

        let result = Server::new(sim_config).run(&trace, &mut rubik);
        let tail = result.tail_latency(0.95).unwrap();
        let mean_freq_time_weighted = {
            let res = result.freq_residency();
            let busy = res.busy_time();
            res.busy
                .iter()
                .map(|(f, t)| f.ghz() * t / busy)
                .sum::<f64>()
        };
        (tail, mean_freq_time_weighted)
    }

    #[test]
    fn meets_tail_bound_on_masstree_at_moderate_load() {
        let profile = AppProfile::masstree();
        // Bound chosen near the fixed-frequency tail at 50% load for this
        // model (~3x the mean service time).
        let bound = 3.0 * profile.mean_service_time();
        let (tail, mean_freq) = run_app(profile, 0.4, 3000, bound, false);
        assert!(tail <= bound * 1.10, "tail {tail} vs bound {bound}");
        // And it should actually have slowed down below nominal on average.
        assert!(mean_freq < 2.4, "mean busy frequency {mean_freq} GHz");
    }

    #[test]
    fn low_load_uses_lower_frequencies_than_high_load() {
        let profile = AppProfile::masstree();
        let bound = 3.0 * profile.mean_service_time();
        let (_, freq_low) = run_app(profile.clone(), 0.2, 2000, bound, false);
        let (_, freq_high) = run_app(profile, 0.7, 2000, bound, false);
        assert!(
            freq_low < freq_high,
            "low-load mean freq {freq_low} should be below high-load {freq_high}"
        );
    }

    #[test]
    fn idle_system_requests_minimum_frequency() {
        let dvfs = DvfsConfig::haswell_like();
        let mut rubik = RubikController::new(RubikConfig::new(1e-3), dvfs.clone());
        let state = ServerState {
            now: 0.0,
            current_freq: dvfs.nominal(),
            target_freq: dvfs.nominal(),
            in_service: None,
            queued: vec![],
        };
        assert_eq!(
            rubik.on_tick(&state),
            PolicyDecision::SetFrequency(dvfs.min())
        );
        assert_eq!(rubik.idle_frequency(), Some(dvfs.min()));
    }

    #[test]
    fn cold_controller_runs_at_nominal_when_busy() {
        let dvfs = DvfsConfig::haswell_like();
        let mut rubik = RubikController::new(RubikConfig::new(1e-3), dvfs.clone());
        let state = ServerState {
            now: 0.0,
            current_freq: dvfs.min(),
            target_freq: dvfs.min(),
            in_service: Some(rubik_sim::InServiceView {
                id: 0,
                arrival: 0.0,
                elapsed_compute_cycles: 0.0,
                elapsed_membound_time: 0.0,
                oracle_compute_cycles: 1e6,
                oracle_membound_time: 0.0,
                class: 0,
            }),
            queued: vec![],
        };
        assert_eq!(
            rubik.on_arrival(&state),
            PolicyDecision::SetFrequency(dvfs.nominal())
        );
        assert_eq!(rubik.stats().cold_decisions, 1);
    }

    #[test]
    fn exhausted_slack_forces_maximum_frequency() {
        let dvfs = DvfsConfig::haswell_like();
        let mut rubik =
            RubikController::new(RubikConfig::new(1e-3).without_feedback(), dvfs.clone());
        rubik.seed_profile((0..200).map(|i| (1e6 + (i % 7) as f64 * 1e4, 0.0)));
        // A request that has already waited longer than the bound.
        let state = ServerState {
            now: 0.01,
            current_freq: dvfs.min(),
            target_freq: dvfs.min(),
            in_service: Some(rubik_sim::InServiceView {
                id: 0,
                arrival: 0.0,
                elapsed_compute_cycles: 0.0,
                elapsed_membound_time: 0.0,
                oracle_compute_cycles: 1e6,
                oracle_membound_time: 0.0,
                class: 0,
            }),
            queued: vec![],
        };
        assert_eq!(
            rubik.on_arrival(&state),
            PolicyDecision::SetFrequency(dvfs.max())
        );
        assert_eq!(rubik.stats().saturated_decisions, 1);
    }

    #[test]
    fn longer_queues_demand_higher_frequencies() {
        let dvfs = DvfsConfig::haswell_like();
        let mut rubik =
            RubikController::new(RubikConfig::new(2e-3).without_feedback(), dvfs.clone());
        rubik.seed_profile((0..500).map(|i| (5e5 + (i % 13) as f64 * 1e4, 0.0)));

        let in_service = rubik_sim::InServiceView {
            id: 0,
            arrival: 0.0,
            elapsed_compute_cycles: 0.0,
            elapsed_membound_time: 0.0,
            oracle_compute_cycles: 5e5,
            oracle_membound_time: 0.0,
            class: 0,
        };
        let mk_state = |queued: usize| ServerState {
            now: 1e-4,
            current_freq: dvfs.min(),
            target_freq: dvfs.min(),
            in_service: Some(in_service),
            queued: (0..queued)
                .map(|i| rubik_sim::QueuedView {
                    id: i as u64 + 1,
                    arrival: 1e-4,
                    oracle_compute_cycles: 5e5,
                    oracle_membound_time: 0.0,
                    class: 0,
                })
                .collect(),
        };

        let freq_of = |d: PolicyDecision| match d {
            PolicyDecision::SetFrequency(f) => f,
            PolicyDecision::Keep => panic!("expected a frequency"),
        };
        let short = freq_of(rubik.on_arrival(&mk_state(0)));
        let long = freq_of(rubik.on_arrival(&mk_state(8)));
        assert!(
            long > short,
            "queue of 8 chose {long}, empty queue chose {short}"
        );
    }

    #[test]
    fn retargeting_the_bound_changes_decisions_immediately() {
        let dvfs = DvfsConfig::haswell_like();
        let mut rubik =
            RubikController::new(RubikConfig::new(2e-3).without_feedback(), dvfs.clone());
        rubik.seed_profile((0..500).map(|i| (5e5 + (i % 13) as f64 * 1e4, 0.0)));

        let state = ServerState {
            now: 1e-4,
            current_freq: dvfs.min(),
            target_freq: dvfs.min(),
            in_service: Some(rubik_sim::InServiceView {
                id: 0,
                arrival: 0.0,
                elapsed_compute_cycles: 0.0,
                elapsed_membound_time: 0.0,
                oracle_compute_cycles: 5e5,
                oracle_membound_time: 0.0,
                class: 0,
            }),
            queued: vec![],
        };
        let freq_of = |d: PolicyDecision| match d {
            PolicyDecision::SetFrequency(f) => f,
            PolicyDecision::Keep => panic!("expected a frequency"),
        };
        let relaxed = freq_of(rubik.on_arrival(&state));
        // Through the trait surface the fleet controller uses.
        assert_eq!(DvfsPolicy::latency_bound(&rubik), Some(2e-3));
        assert!(DvfsPolicy::set_latency_bound(&mut rubik, 4e-4));
        assert_eq!(rubik.latency_bound(), 4e-4);
        let tightened = freq_of(rubik.on_arrival(&state));
        assert!(
            tightened > relaxed,
            "tightening the bound must demand a higher frequency \
             ({tightened} vs {relaxed})"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn retargeting_rejects_nonpositive_bounds() {
        let mut rubik = RubikController::new(RubikConfig::new(1e-3), DvfsConfig::haswell_like());
        rubik.set_latency_bound(0.0);
    }

    #[test]
    fn feedback_relaxes_target_when_there_is_headroom() {
        let profile = AppProfile::masstree();
        let bound = 3.0 * profile.mean_service_time();
        let sim_config = SimConfig::default();
        let mut generator = WorkloadGenerator::new(profile, 7);
        let trace = generator.steady_trace(0.3, 3000);
        let mut rubik = RubikController::new(
            RubikConfig::new(bound).with_profiling_window(1024),
            sim_config.dvfs.clone(),
        );
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(256)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );
        let _ = Server::new(sim_config).run(&trace, &mut rubik);
        // The conservative analytical model leaves headroom at 30% load, so
        // the feedback loop should have relaxed the internal target.
        assert!(rubik.internal_target() >= bound);
        assert!(rubik.stats().table_rebuilds_performed > 1);
    }

    #[test]
    fn unchanged_profile_skips_rebuilds_and_decisions_are_identical() {
        let dvfs = DvfsConfig::haswell_like();
        let seed_demands = || (0..200).map(|i| (1e6 + (i % 7) as f64 * 1e4, 30e-6));
        let mut gated = RubikController::new(RubikConfig::new(2e-3), dvfs.clone());
        let mut forced = RubikController::new(
            RubikConfig::new(2e-3).without_rebuild_gating(),
            dvfs.clone(),
        );
        gated.seed_profile(seed_demands());
        forced.seed_profile(seed_demands());

        let state = ServerState {
            now: 1e-4,
            current_freq: dvfs.min(),
            target_freq: dvfs.min(),
            in_service: Some(rubik_sim::InServiceView {
                id: 0,
                arrival: 0.0,
                elapsed_compute_cycles: 2e5,
                elapsed_membound_time: 5e-6,
                oracle_compute_cycles: 1e6,
                oracle_membound_time: 30e-6,
                class: 0,
            }),
            queued: vec![],
        };
        // Ticks with no intervening completions: the gated controller skips
        // every rebuild, the forced one redoes it — decisions must agree.
        for _ in 0..5 {
            assert_eq!(gated.on_tick(&state), forced.on_tick(&state));
        }
        assert_eq!(gated.stats().table_rebuilds_performed, 1);
        assert_eq!(gated.stats().table_rebuilds_skipped, 5);
        assert_eq!(forced.stats().table_rebuilds_performed, 6);
        assert_eq!(forced.stats().table_rebuilds_skipped, 0);
        assert_eq!(gated.tables().unwrap(), forced.tables().unwrap());

        // A new sample un-gates the next rebuild.
        let record = RequestRecord {
            id: 1,
            arrival: 0.0,
            start: 0.0,
            completion: 2e-4,
            compute_cycles: 1.1e6,
            membound_time: 25e-6,
            queue_len_at_arrival: 0,
            class: 0,
        };
        assert_eq!(
            gated.on_completion(&state, &record),
            forced.on_completion(&state, &record)
        );
        assert_eq!(gated.on_tick(&state), forced.on_tick(&state));
        assert_eq!(gated.stats().table_rebuilds_performed, 2);
        assert_eq!(gated.tables().unwrap(), forced.tables().unwrap());
    }
}
