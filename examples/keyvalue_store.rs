//! Key-value-store deep dive (the paper's masstree case study, Fig. 7).
//!
//! Runs masstree at 50% load under StaticOracle, AdrenalineOracle and Rubik,
//! then prints the response-latency CDF and Rubik's busy-frequency histogram,
//! showing how Rubik delays short requests (pushing the low end of the CDF
//! right) to spend most of its time at low frequencies.
//!
//! ```text
//! cargo run --release --example keyvalue_store
//! ```

use rubik::core::{replay, replay_tail};
use rubik::{
    AdrenalineOracle, AppProfile, CorePowerModel, Freq, RubikConfig, RubikController, Server,
    SimConfig, StaticOracle, WorkloadGenerator,
};

fn main() {
    let profile = AppProfile::masstree();
    let load = 0.5;
    let requests = 6_000;
    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();
    let active_power = |f: Freq| power.active_power(f);

    let mut generator = WorkloadGenerator::new(profile.clone(), 7);
    let trace = generator.steady_trace(load, requests);

    // Latency bound: tail latency at the nominal frequency (50% load).
    let static_oracle = StaticOracle::new(config.dvfs.clone(), 0.95);
    let bound = static_oracle
        .tail_at(&trace, config.dvfs.nominal())
        .expect("non-empty trace");

    // StaticOracle: lowest feasible single frequency.
    let so_freq = static_oracle.lowest_feasible_freq(&trace, bound);
    let so_records = replay(&trace, &vec![so_freq; trace.len()]);

    // AdrenalineOracle: boosted/unboosted pair tuned offline.
    let adrenaline =
        AdrenalineOracle::new(config.dvfs.clone(), 0.95).train(&trace, bound, active_power);
    let ao_records = replay(&trace, &adrenaline.assign(&trace));

    // Rubik.
    let mut rubik = RubikController::new(RubikConfig::new(bound), config.dvfs.clone());
    let rubik_result = Server::new(config).run(&trace, &mut rubik);

    println!(
        "masstree @ {:.0}% load, bound = {:.0} us",
        load * 100.0,
        bound * 1e6
    );
    println!();
    println!("Response-latency CDF (latency in us at each percentile):");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "pct", "StaticOracle", "Adrenaline", "Rubik"
    );
    let rubik_lat = rubik_result.latencies();
    let so_lat: Vec<f64> = so_records.iter().map(|r| r.latency()).collect();
    let ao_lat: Vec<f64> = ao_records.iter().map(|r| r.latency()).collect();
    for pct in [10, 25, 50, 75, 90, 95, 99] {
        let q = pct as f64 / 100.0;
        println!(
            "{:>5}% {:>14.1} {:>14.1} {:>14.1}",
            pct,
            rubik::stats::percentile(&so_lat, q).unwrap() * 1e6,
            rubik::stats::percentile(&ao_lat, q).unwrap() * 1e6,
            rubik::stats::percentile(&rubik_lat, q).unwrap() * 1e6,
        );
    }
    println!();
    println!(
        "StaticOracle tail: {:.0} us | Adrenaline tail: {:.0} us | Rubik tail: {:.0} us",
        replay_tail(&so_records, 0.95).unwrap() * 1e6,
        replay_tail(&ao_records, 0.95).unwrap() * 1e6,
        rubik_result.tail_latency(0.95).unwrap() * 1e6,
    );
    println!();
    println!("Rubik busy-frequency histogram (fraction of busy time):");
    for (freq, frac) in rubik_result.freq_residency().busy_fraction_per_freq() {
        let bar = "#".repeat((frac * 60.0).round() as usize);
        println!("{:>8} | {:5.1}% {}", freq.to_string(), frac * 100.0, bar);
    }
}
