//! Rolling-window tail-latency tracking.
//!
//! Rubik's feedback controller observes the measured tail latency over a
//! rolling 1-second window (paper Sec. 4.2, "Feedback-based fine-tuning"),
//! and the evaluation plots tails over rolling 200 ms windows (Fig. 1b,
//! Fig. 10). [`RollingTailTracker`] keeps the samples that fall inside the
//! window and reports their percentile on demand.

use std::collections::VecDeque;

use crate::percentile::percentile_of_sorted;

/// Tracks `(completion_time, latency)` samples and reports the latency
/// percentile over the most recent time window.
#[derive(Debug, Clone)]
pub struct RollingTailTracker {
    window: f64,
    quantile: f64,
    samples: VecDeque<(f64, f64)>,
    /// Reused sort buffer for [`RollingTailTracker::tail`], so the periodic
    /// feedback read performs no steady-state allocation.
    scratch: Vec<f64>,
}

impl RollingTailTracker {
    /// Creates a tracker over a window of `window` seconds reporting the
    /// given `quantile` (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `window <= 0` or `quantile` is outside `[0, 1]`.
    pub fn new(window: f64, quantile: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must be in [0, 1]"
        );
        Self {
            window,
            quantile,
            samples: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Records a request that completed at time `now` with the given
    /// end-to-end `latency`, and evicts samples older than the window.
    pub fn record(&mut self, now: f64, latency: f64) {
        self.samples.push_back((now, latency));
        self.evict(now);
    }

    /// Advances the window without recording a sample.
    pub fn advance(&mut self, now: f64) {
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        let cutoff = now - self.window;
        while let Some(&(t, _)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The tail latency over the current window, or `None` if the window has
    /// no samples. Sorts into a reused scratch buffer, so repeated reads
    /// allocate nothing once the buffer reaches the window's high-water mark.
    pub fn tail(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.scratch.extend(self.samples.iter().map(|&(_, l)| l));
        self.scratch
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Some(percentile_of_sorted(&self.scratch, self.quantile))
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The configured window length in seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The configured quantile.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_none() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        assert!(t.tail().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn tracks_percentile_of_window() {
        let mut t = RollingTailTracker::new(10.0, 0.5);
        for i in 0..10 {
            t.record(i as f64 * 0.1, (i + 1) as f64);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.tail(), Some(5.0));
    }

    #[test]
    fn old_samples_are_evicted() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        t.record(0.0, 100.0);
        t.record(0.5, 1.0);
        t.record(2.0, 2.0); // evicts both earlier samples (cutoff = 1.0)
        assert_eq!(t.len(), 1);
        assert_eq!(t.tail(), Some(2.0));
    }

    #[test]
    fn advance_evicts_without_recording() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        t.record(0.0, 5.0);
        t.advance(10.0);
        assert!(t.is_empty());
        assert!(t.tail().is_none());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_nonpositive_window() {
        let _ = RollingTailTracker::new(0.0, 0.95);
    }
}
