//! Request trace generation.
//!
//! The paper integrates server and client in one process; the client produces
//! a request stream with exponentially distributed inter-arrival times at a
//! given rate (a Markov input process, Sec. 5.1). [`WorkloadGenerator`] does
//! the same: it combines an [`AppProfile`] with a [`LoadProfile`] and a seed
//! to produce a reproducible [`Trace`].

use rubik_sim::{Freq, RequestSpec, Trace};
use rubik_stats::DeterministicRng;

use crate::load::LoadProfile;
use crate::profile::AppProfile;

/// Class label assigned to requests whose work factor is in the top decile.
/// Oracular schemes (AdrenalineOracle) may use it as a perfect "long request"
/// hint; Rubik never looks at it.
pub const LONG_REQUEST_CLASS: u32 = 1;

/// Generates request traces for one application.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: AppProfile,
    nominal: Freq,
    rng: DeterministicRng,
}

impl WorkloadGenerator {
    /// Creates a generator for `profile` with the paper's nominal frequency
    /// (2.4 GHz) and the given RNG seed.
    pub fn new(profile: AppProfile, seed: u64) -> Self {
        Self::with_nominal(profile, Freq::from_mhz(2400), seed)
    }

    /// Creates a generator with an explicit nominal frequency.
    pub fn with_nominal(profile: AppProfile, nominal: Freq, seed: u64) -> Self {
        Self {
            profile,
            nominal,
            rng: DeterministicRng::new(seed),
        }
    }

    /// The application profile driving this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// The nominal frequency that defines 100% load.
    pub fn nominal(&self) -> Freq {
        self.nominal
    }

    /// Generates a steady-load trace with `num_requests` requests at the
    /// given `load` (fraction of nominal capacity).
    ///
    /// # Panics
    ///
    /// Panics if `load <= 0`.
    pub fn steady_trace(&mut self, load: f64, num_requests: usize) -> Trace {
        assert!(load > 0.0, "load must be positive");
        let rate = self.steady_rate(load);
        let mut now = 0.0;
        let mut requests = Vec::with_capacity(num_requests);
        for id in 0..num_requests {
            now += self.next_interarrival(rate);
            requests.push(self.draw_request_at(id as u64, now));
        }
        Trace::new(requests)
    }

    /// The arrival rate (queries per second) corresponding to `load` — the
    /// exact product [`steady_trace`](Self::steady_trace) uses, exposed so
    /// incremental sources reproduce it bit-for-bit.
    pub fn steady_rate(&self, load: f64) -> f64 {
        load * self.profile.capacity_qps(self.nominal, self.nominal)
    }

    /// Draws one exponential interarrival gap at `rate` queries per second
    /// from the generator's RNG stream. [`steady_trace`](Self::steady_trace)
    /// is exactly this draw followed by
    /// [`draw_request_at`](Self::draw_request_at), per request — pull-based
    /// arrival sources interleave the same calls to produce bit-identical
    /// streams one request at a time.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn next_interarrival(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "arrival rate must be positive");
        self.rng.exponential(1.0 / rate)
    }

    /// Draws one request body (work factor, memory-bound time, class) at the
    /// given arrival time — the per-request sampling of
    /// [`steady_trace`](Self::steady_trace), exposed for incremental
    /// sources.
    pub fn draw_request_at(&mut self, id: u64, arrival: f64) -> RequestSpec {
        self.draw_request(id, arrival)
    }

    /// One uniform draw in `[0, 1)` from the generator's RNG stream, used by
    /// non-homogeneous Poisson (thinning) sources to accept or reject a
    /// candidate arrival against the instantaneous rate.
    pub fn thinning_draw(&mut self) -> f64 {
        self.rng.uniform()
    }

    /// Generates a trace following a time-varying [`LoadProfile`]. Arrivals
    /// are produced by a piecewise Poisson process whose rate tracks the
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn profile_trace(&mut self, load_profile: &LoadProfile) -> Trace {
        load_profile
            .validate()
            .expect("load profile must be well-formed");
        let capacity = self.profile.capacity_qps(self.nominal, self.nominal);
        let duration = load_profile.duration();
        let mut now = 0.0;
        let mut id = 0u64;
        let mut requests = Vec::new();
        // Thinning-free approach: advance with the rate in effect at the
        // current time; rates change slowly relative to inter-arrival times.
        while now < duration {
            let load = load_profile.load_at(now).max(1e-3);
            let rate = load * capacity;
            now += self.rng.exponential(1.0 / rate);
            if now >= duration {
                break;
            }
            requests.push(self.draw_request(id, now));
            id += 1;
        }
        Trace::new(requests)
    }

    /// Generates `paper_requests()` requests at the given load — the run
    /// length used by the paper's Table 3.
    pub fn paper_trace(&mut self, load: f64) -> Trace {
        let n = self.profile.paper_requests();
        self.steady_trace(load, n)
    }

    fn draw_request(&mut self, id: u64, arrival: f64) -> RequestSpec {
        let factor_sampler = self.profile.work_factor_sampler();
        let factor = factor_sampler.sample(&mut self.rng).max(0.01);
        let compute = factor * self.profile.mean_compute_cycles(self.nominal);
        let mem = factor * self.profile.mean_membound_time();
        // The top-decile work factor marks a "long" request (a perfect
        // application-level hint for oracle schemes).
        let class = if factor > self.long_threshold() {
            LONG_REQUEST_CLASS
        } else {
            0
        };
        RequestSpec {
            id,
            arrival,
            compute_cycles: compute,
            membound_time: mem,
            class,
        }
    }

    fn long_threshold(&self) -> f64 {
        // Approximate 90th percentile of a unit-mean distribution with the
        // profile's CoV; exact classification is not required, only a
        // consistent long/short split.
        1.0 + 1.2816 * self.profile.cov()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_stats::OnlineStats;

    #[test]
    fn steady_trace_has_requested_count_and_rate() {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 7);
        let trace = g.steady_trace(0.5, 10_000);
        assert_eq!(trace.len(), 10_000);
        // Offered load should be close to 50%.
        let load = trace.offered_load(Freq::from_mhz(2400));
        assert!((load - 0.5).abs() < 0.05, "load = {load}");
    }

    #[test]
    fn mean_service_time_matches_profile() {
        let profile = AppProfile::xapian();
        let mut g = WorkloadGenerator::new(profile.clone(), 11);
        let trace = g.steady_trace(0.3, 20_000);
        let nominal = Freq::from_mhz(2400);
        let stats: OnlineStats = trace
            .requests()
            .iter()
            .map(|r| r.service_time_at(nominal))
            .collect();
        assert!(
            (stats.mean() - profile.mean_service_time()).abs() < 0.05 * profile.mean_service_time(),
            "mean {} vs {}",
            stats.mean(),
            profile.mean_service_time()
        );
        // CoV should roughly match the profile.
        assert!((stats.cov() - profile.cov()).abs() < 0.15);
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let mut a = WorkloadGenerator::new(AppProfile::shore(), 99);
        let mut b = WorkloadGenerator::new(AppProfile::shore(), 99);
        assert_eq!(a.steady_trace(0.4, 500), b.steady_trace(0.4, 500));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::new(AppProfile::shore(), 1);
        let mut b = WorkloadGenerator::new(AppProfile::shore(), 2);
        assert_ne!(a.steady_trace(0.4, 100), b.steady_trace(0.4, 100));
    }

    #[test]
    fn profile_trace_tracks_load_steps() {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 5);
        let trace = g.profile_trace(&LoadProfile::Steps(vec![(0.2, 2.0), (0.6, 2.0)]));
        let early = trace.requests().iter().filter(|r| r.arrival < 2.0).count() as f64;
        let late = trace.requests().iter().filter(|r| r.arrival >= 2.0).count() as f64;
        // Roughly 3x more requests in the high-load phase.
        assert!(late / early > 2.0, "early {early}, late {late}");
        assert!(trace.duration() <= 4.0);
    }

    #[test]
    fn long_requests_are_a_minority() {
        let mut g = WorkloadGenerator::new(AppProfile::xapian(), 13);
        let trace = g.steady_trace(0.5, 20_000);
        let long = trace
            .requests()
            .iter()
            .filter(|r| r.class == LONG_REQUEST_CLASS)
            .count() as f64;
        let frac = long / trace.len() as f64;
        assert!(frac > 0.01 && frac < 0.3, "long fraction = {frac}");
    }

    #[test]
    fn paper_trace_uses_table3_request_count() {
        let mut g = WorkloadGenerator::new(AppProfile::moses(), 3);
        assert_eq!(g.paper_trace(0.3).len(), 900);
    }

    #[test]
    fn interarrivals_are_exponential_like() {
        // CoV of exponential inter-arrival times is 1.
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 21);
        let trace = g.steady_trace(0.5, 20_000);
        let arrivals: Vec<f64> = trace.requests().iter().map(|r| r.arrival).collect();
        let gaps: OnlineStats = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            (gaps.cov() - 1.0).abs() < 0.1,
            "interarrival CoV = {}",
            gaps.cov()
        );
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn rejects_zero_load() {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 1);
        let _ = g.steady_trace(0.0, 10);
    }
}
