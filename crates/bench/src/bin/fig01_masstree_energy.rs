//! Fig. 1a: core energy per request for Rubik vs StaticOracle on masstree at
//! 30%, 40% and 50% load.

use rubik::AppProfile;
use rubik_bench::{print_header, print_row, BenchArgs, Harness};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    let profile = AppProfile::masstree();
    let bound = harness.latency_bound(&profile);

    println!(
        "# Fig. 1a: masstree core energy per request (mJ/req), bound = {:.0} us",
        bound * 1e6
    );
    print_header(&["load", "static_oracle_mJ", "rubik_mJ", "rubik_savings_%"]);
    for (i, load) in [0.3, 0.4, 0.5].into_iter().enumerate() {
        // Evaluate the 50% point on the bound-defining trace itself, as in
        // the paper (the bound is the fixed-frequency tail at 50% load).
        let seed = if load == 0.5 { 777 } else { i as u64 };
        let trace = harness.trace(&profile, load, seed);
        let (static_oracle, _) = harness.run_static_oracle(&trace, bound);
        let (rubik, _) = harness.run_rubik(&trace, bound, true);
        print_row(
            &format!("{:.0}%", load * 100.0),
            &[
                static_oracle.energy_per_request * 1e3,
                rubik.energy_per_request * 1e3,
                Harness::savings_percent(&static_oracle, &rubik),
            ],
        );
    }
}
