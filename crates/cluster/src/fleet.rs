//! Fleet-level power management: heterogeneous fleet specs and global power
//! capping.
//!
//! Rubik's analytical controller manages one core against one latency bound;
//! a datacenter operator manages a *fleet* against a power budget. This
//! module composes the two: a [`FleetController`] runs on a coarse epoch
//! (1 s by default, the cadence of Pegasus-style cluster controllers) inside
//! the [`Cluster`](crate::Cluster) event loop, observes each server's
//! occupancy, operating point, and measured epoch power, and issues
//! [`FleetCommand`]s — per-server frequency ceilings (enforced by
//! [`rubik_sim::ServerSim::retarget`]) and latency-bound rescales (applied
//! through [`rubik_sim::DvfsPolicy::set_latency_bound`]).
//!
//! [`PegasusFleet`] is the first implementation: FastCap-style **weighted
//! budget apportioning** (each server's share of the global budget is
//! proportional to its capacity weight) with **waterfilling** — slack
//! reclaimed from idle servers and left over from level rounding is poured
//! into the most backlogged servers, one DVFS step at a time. Because the
//! cap is enforced *analytically* (the worst-case active power at the issued
//! ceilings never exceeds the budget, not merely the measured power of the
//! last epoch), a load spike between epochs cannot break the budget: the
//! fleet saturates at its ceilings instead.
//!
//! [`FleetSpec`] describes heterogeneous fleets — named core classes
//! (big/little), each with its own [`SimConfig`] and a capacity weight used
//! by both the capacity-aware router and the budget apportioning.

use rubik_power::CorePowerModel;
use rubik_sim::{CoreActivity, DvfsConfig, DvfsPolicy, Freq, ServerSim, SimConfig};

use crate::router::ServerView;

/// One named class of servers inside a [`FleetSpec`].
#[derive(Debug, Clone)]
pub struct CoreClass {
    name: String,
    config: SimConfig,
    capacity: f64,
    count: usize,
}

impl CoreClass {
    /// The class name (e.g. `"big"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulation configuration every server of this class runs.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The capacity weight (1.0 = one nominal core; 0 = route nothing here).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of servers of this class.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// A heterogeneous fleet description: an ordered list of core classes, each
/// contributing `count` servers with its own [`SimConfig`] and capacity
/// weight. Server indices are assigned in declaration order (all servers of
/// the first class, then the second, ...).
///
/// ```
/// use rubik_cluster::FleetSpec;
/// use rubik_sim::{DvfsConfig, Freq, SimConfig};
///
/// let big = SimConfig::paper_simulated();
/// let little = big.clone().with_dvfs(DvfsConfig::new(
///     Freq::from_mhz(800),
///     Freq::from_mhz(2000),
///     200,
///     Freq::from_mhz(1600),
///     4e-6,
/// ));
/// let spec = FleetSpec::new()
///     .class("big", big, 1.0, 4)
///     .class("little", little, 0.5, 8);
/// assert_eq!(spec.len(), 12);
/// assert_eq!(spec.class_of(0).name(), "big");
/// assert_eq!(spec.class_of(11).name(), "little");
/// assert_eq!(spec.capacity_of(6), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FleetSpec {
    classes: Vec<CoreClass>,
}

impl FleetSpec {
    /// An empty spec; add classes with [`FleetSpec::class`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-class fleet of `servers` identical servers with capacity 1.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn homogeneous(config: SimConfig, servers: usize) -> Self {
        Self::new().class("server", config, 1.0, servers)
    }

    /// Appends a class of `count` servers. Class names must be unique,
    /// capacities non-negative and finite.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, the capacity is negative or non-finite, or
    /// the name repeats an existing class.
    pub fn class(mut self, name: &str, config: SimConfig, capacity: f64, count: usize) -> Self {
        assert!(count > 0, "class {name:?} must have at least one server");
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "class {name:?} capacity must be finite and non-negative"
        );
        assert!(
            self.classes.iter().all(|c| c.name != name),
            "duplicate class name {name:?}"
        );
        self.classes.push(CoreClass {
            name: name.to_string(),
            config,
            capacity,
            count,
        });
        self
    }

    /// The classes, in declaration order.
    pub fn classes(&self) -> &[CoreClass] {
        &self.classes
    }

    /// Total number of servers across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Whether the spec has no servers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The class index (into [`FleetSpec::classes`]) of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn class_index_of(&self, i: usize) -> u32 {
        let mut rest = i;
        for (idx, class) in self.classes.iter().enumerate() {
            if rest < class.count {
                return idx as u32;
            }
            rest -= class.count;
        }
        panic!(
            "server index {i} out of range for a {}-server fleet",
            self.len()
        );
    }

    /// The class of server `i`.
    pub fn class_of(&self, i: usize) -> &CoreClass {
        &self.classes[self.class_index_of(i) as usize]
    }

    /// The simulation configuration of server `i`.
    pub fn config_of(&self, i: usize) -> &SimConfig {
        self.class_of(i).config()
    }

    /// The capacity weight of server `i`.
    pub fn capacity_of(&self, i: usize) -> f64 {
        self.class_of(i).capacity()
    }
}

/// A per-server observation handed to [`FleetController::on_epoch`]: the
/// router's live view plus the server's DVFS domain and its measured mean
/// power over the epoch that just ended.
#[derive(Debug, Clone, Copy)]
pub struct ServerPowerView<'a> {
    /// The router-visible state (occupancy, operating point, capacity).
    pub view: ServerView,
    /// The server's DVFS domain (per-class in heterogeneous fleets).
    pub dvfs: &'a DvfsConfig,
    /// Mean power (W) over the last epoch; 0 on the initial call at t = 0.
    pub measured_power: f64,
}

/// A command issued by a [`FleetController`] at an epoch boundary, applied
/// by the [`Cluster`](crate::Cluster) driver before the next event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetCommand {
    /// Impose (or lift) a frequency ceiling on one server — enforced by the
    /// simulation engine regardless of the server's policy.
    SetCeiling {
        /// Target server index.
        server: usize,
        /// Ceiling, snapped down to a DVFS level; `None` lifts the cap.
        ceiling: Option<Freq>,
    },
    /// Rescale one server's latency objective relative to its *original*
    /// bound (scale 1.0 restores it). Ignored for policies without a bound.
    ScaleBound {
        /// Target server index.
        server: usize,
        /// Multiplier applied to the bound the policy started the run with.
        scale: f64,
    },
}

/// A fleet-level power manager driven by the cluster event loop.
///
/// The driver calls [`on_epoch`](FleetController::on_epoch) once at `t = 0`
/// (before any event, with `elapsed == 0` and zero measured power) so caps
/// are in force from the first request, and then at every epoch boundary.
/// All events strictly before the boundary have been processed when the
/// call is made; commands take effect before the next event.
pub trait FleetController {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Seconds between epoch boundaries (1 s in Pegasus).
    fn epoch(&self) -> f64;

    /// Observes the fleet at an epoch boundary and appends commands to
    /// `commands` (cleared by the driver beforehand). `elapsed` is the
    /// length of the measurement window ending at `now` (0 on the initial
    /// call).
    fn on_epoch(
        &mut self,
        now: f64,
        elapsed: f64,
        servers: &[ServerPowerView<'_>],
        commands: &mut Vec<FleetCommand>,
    );
}

/// A Pegasus-style global power capper with FastCap-style apportioning.
///
/// Every epoch the controller recomputes per-server frequency ceilings so
/// the fleet's **worst-case** active power never exceeds the budget:
///
/// 1. **Weighted fair share** — server `i` is granted
///    `budget × capacity_i / Σ capacity` watts and its ceiling is the
///    highest DVFS level whose active power fits the grant (never below the
///    domain minimum).
/// 2. **Reclaim** — a server observed idle at the boundary (nothing in
///    flight) is dropped to its minimum level; its grant becomes slack.
/// 3. **Waterfill** — slack (reclaimed + rounding remainders) raises the
///    ceilings of backlogged servers one DVFS step at a time, most loaded
///    first, while each step's extra worst-case power still fits.
///
/// Because ceilings bound the *possible* power draw, the budget holds even
/// if load spikes mid-epoch; the boundary-instant occupancy (`in_flight`)
/// steers where the slack goes. This controller does not read
/// [`ServerPowerView::measured_power`] — the measurement is reported for
/// observability and for controllers that do react to draw rather than
/// occupancy. With an infinite budget the controller issues no commands at
/// all, so an uncapped fleet is bit-for-bit identical to one without a
/// controller (pinned by `tests/fleet_properties.rs`).
///
/// Optional **bound scaling** relaxes each capped server's latency
/// objective in proportion to the slowdown its ceiling imposes
/// (`nominal / ceiling`), so an analytical policy like Rubik aims for what
/// the cap permits instead of futilely demanding clamped frequencies.
#[derive(Debug, Clone)]
pub struct PegasusFleet {
    budget: f64,
    epoch: f64,
    power: CorePowerModel,
    bound_scaling: bool,
    /// Last issued ceiling per server (grown on first epoch); commands are
    /// only emitted on change.
    ceilings: Vec<Option<Freq>>,
    /// Last issued bound scale per server.
    scales: Vec<f64>,
}

impl PegasusFleet {
    /// A fleet capper holding `budget` watts across the whole fleet, scored
    /// with the given core power model (use the same model the cluster's
    /// energy accounting uses, or the cap will hold against a different
    /// meter than the one reporting fleet power).
    ///
    /// # Panics
    ///
    /// Panics if `budget <= 0` (use [`PegasusFleet::uncapped`] or
    /// `f64::INFINITY` for no cap).
    pub fn new(budget: f64, power: CorePowerModel) -> Self {
        assert!(budget > 0.0, "power budget must be positive");
        Self {
            budget,
            epoch: 1.0,
            power,
            bound_scaling: false,
            ceilings: Vec::new(),
            scales: Vec::new(),
        }
    }

    /// A controller with an infinite budget: it measures but never commands.
    pub fn uncapped(power: CorePowerModel) -> Self {
        Self::new(f64::INFINITY, power)
    }

    /// Overrides the epoch length (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `epoch <= 0`.
    pub fn with_epoch(mut self, epoch: f64) -> Self {
        assert!(epoch > 0.0, "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Enables latency-bound rescaling alongside frequency ceilings.
    pub fn with_bound_scaling(mut self) -> Self {
        self.bound_scaling = true;
        self
    }

    /// The global power budget in watts.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The lowest budget this fleet can actually honour: the sum of every
    /// server's active power at its minimum DVFS level. Below this floor the
    /// fleet saturates at minimum frequency and the cap is infeasible.
    pub fn feasible_floor(servers: &[ServerPowerView<'_>], power: &CorePowerModel) -> f64 {
        servers
            .iter()
            .map(|s| power.active_power(s.dvfs.min()))
            .sum()
    }

    /// The highest ceiling in `dvfs` whose active power fits `grant` watts,
    /// never below the domain minimum.
    fn fitting_level(&self, dvfs: &DvfsConfig, grant: f64) -> Freq {
        let mut fit = dvfs.min();
        for &level in dvfs.levels() {
            if self.power.active_power(level) <= grant {
                fit = level;
            } else {
                break;
            }
        }
        fit
    }
}

impl FleetController for PegasusFleet {
    fn name(&self) -> &str {
        "pegasus-fleet"
    }

    fn epoch(&self) -> f64 {
        self.epoch
    }

    fn on_epoch(
        &mut self,
        _now: f64,
        elapsed: f64,
        servers: &[ServerPowerView<'_>],
        commands: &mut Vec<FleetCommand>,
    ) {
        if self.budget.is_infinite() {
            return; // uncapped: never perturb the fleet
        }
        let n = servers.len();
        self.ceilings.resize(n, None);
        self.scales.resize(n, 1.0);

        // 1. Weighted fair share over the *survivors*: a down server is
        //    granted nothing — its share waterfalls back into the pool —
        //    and is pinned at its domain minimum (the analytical worst case
        //    still charges that minimum, so the cap holds even if it
        //    recovers mid-epoch). Zero total weight (all-zero capacities)
        //    falls back to equal shares among survivors. On an all-healthy
        //    fleet every filter passes and this is bit-identical to the
        //    health-blind apportioning.
        let alive = |s: &ServerPowerView<'_>| s.view.health != crate::router::ServerHealth::Down;
        let alive_count = servers.iter().filter(|s| alive(s)).count();
        let total_weight: f64 = servers
            .iter()
            .filter(|s| alive(s))
            .map(|s| s.view.capacity.max(0.0))
            .sum();
        // Down servers still burn their minimum-level worst case; reserve
        // it off the top so the survivors' grants plus the dead floors
        // never exceed the budget. With nobody down this subtracts 0.0 and
        // the pool is bit-identical to the budget.
        let reserved: f64 = servers
            .iter()
            .filter(|s| !alive(s))
            .map(|s| self.power.active_power(s.dvfs.min()))
            .sum();
        let pool = (self.budget - reserved).max(0.0);
        let share = |s: &ServerPowerView<'_>| {
            if total_weight > 0.0 {
                pool * s.view.capacity.max(0.0) / total_weight
            } else {
                pool / alive_count.max(1) as f64
            }
        };
        let mut ceilings: Vec<Freq> = servers
            .iter()
            .map(|s| {
                if alive(s) {
                    self.fitting_level(s.dvfs, share(s))
                } else {
                    s.dvfs.min()
                }
            })
            .collect();

        // 2. Reclaim from servers observed idle at this boundary (skipped on
        //    the initial call: nothing has been observed yet).
        if elapsed > 0.0 {
            for (c, s) in ceilings.iter_mut().zip(servers) {
                if s.view.in_flight == 0 {
                    *c = s.dvfs.min();
                }
            }
        }

        // 3. Waterfill the slack into backlogged servers, most loaded first
        //    (ties by index), one DVFS step at a time while the step's extra
        //    worst-case power fits. Zero-capacity servers are never raised:
        //    a zero weight means "grant nothing", not "grant leftovers".
        let worst_case = |ceilings: &[Freq]| -> f64 {
            ceilings
                .iter()
                .map(|&c| self.power.active_power(c))
                .sum::<f64>()
        };
        let mut slack = self.budget - worst_case(&ceilings);
        if slack > 0.0 {
            let mut order: Vec<usize> = (0..n)
                .filter(|&i| {
                    servers[i].view.in_flight > 0
                        && servers[i].view.capacity > 0.0
                        && alive(&servers[i])
                })
                .collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(servers[i].view.in_flight), i));
            loop {
                let mut raised = false;
                for &i in &order {
                    let dvfs = servers[i].dvfs;
                    let cur = ceilings[i];
                    if cur >= dvfs.max() {
                        continue;
                    }
                    let next = dvfs.ceil_level(cur.hz() + 1.0);
                    let delta = self.power.active_power(next) - self.power.active_power(cur);
                    if delta <= slack {
                        ceilings[i] = next;
                        slack -= delta;
                        raised = true;
                    }
                }
                if !raised {
                    break;
                }
            }
        }

        // Emit only the changes.
        for (i, s) in servers.iter().enumerate() {
            let ceiling = Some(ceilings[i]);
            if self.ceilings[i] != ceiling {
                self.ceilings[i] = ceiling;
                commands.push(FleetCommand::SetCeiling { server: i, ceiling });
            }
            if self.bound_scaling {
                let scale = (s.dvfs.nominal().hz() / ceilings[i].hz()).max(1.0);
                if self.scales[i] != scale {
                    self.scales[i] = scale;
                    commands.push(FleetCommand::ScaleBound { server: i, scale });
                }
            }
        }
    }
}

/// Measures each server's mean power over successive windows by integrating
/// its frequency/activity timeline — completed segments plus the live,
/// not-yet-materialized span from the server's clock to the boundary (which
/// is exact: all events before the boundary have been processed, so the
/// core's activity cannot change inside that span). Each server keeps a
/// cursor, so a measurement costs O(segments added since the last one).
#[derive(Debug)]
pub(crate) struct EpochMeter {
    last_t: f64,
    cursors: Vec<usize>,
}

impl EpochMeter {
    pub(crate) fn new(servers: usize) -> Self {
        Self {
            last_t: 0.0,
            cursors: vec![0; servers],
        }
    }

    /// End of the last measured window (0.0 before any measurement).
    pub(crate) fn last_time(&self) -> f64 {
        self.last_t
    }

    /// Mean power per server over `[last boundary, t]`, written into `out`.
    /// Accepts any iterator over the fleet in server-index order, so the
    /// driver's sharded loop can feed it without materializing a slice.
    pub(crate) fn measure<'a, P: DvfsPolicy + 'a>(
        &mut self,
        servers: impl Iterator<Item = &'a ServerSim<P>>,
        power: &CorePowerModel,
        t: f64,
        out: &mut Vec<f64>,
    ) {
        let window = t - self.last_t;
        out.clear();
        if window <= 0.0 {
            out.resize(self.cursors.len(), 0.0);
            return;
        }
        let span_power = |activity: CoreActivity, freq: Freq| match activity {
            CoreActivity::Busy => power.active_power(freq),
            CoreActivity::Idle => power.idle_power(freq),
            CoreActivity::Sleep => power.sleep_power(),
        };
        for (server, cursor) in servers.zip(&mut self.cursors) {
            let segments = server.segments();
            let mut energy = 0.0;
            let mut i = *cursor;
            while i < segments.len() {
                let s = &segments[i];
                let start = s.start.max(self.last_t);
                let end = s.end.min(t);
                if end > start {
                    energy += span_power(s.activity, s.freq) * (end - start);
                }
                // Never advance past the *final* segment: the engine extends
                // it in place when activity persists (`push_segment` merges
                // contiguous same-state spans), and a passed-over extension
                // would never be charged to any window. Re-scanning it next
                // time is safe — the `last_t` clamp excludes the part
                // already counted.
                if s.end <= t && i + 1 < segments.len() {
                    i += 1;
                } else {
                    break;
                }
            }
            *cursor = i;
            // The live span the timeline has not materialized yet.
            let live_start = server.now().max(self.last_t);
            if t > live_start {
                energy +=
                    span_power(server.current_activity(), server.current_freq()) * (t - live_start);
            }
            out.push(energy / window);
        }
        self.last_t = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::Freq;

    fn view(index: usize, in_flight: usize, mhz: u32, capacity: f64) -> ServerView {
        ServerView {
            index,
            in_flight,
            admitted: in_flight,
            queued: in_flight.saturating_sub(1),
            current_freq: Freq::from_mhz(mhz),
            target_freq: Freq::from_mhz(mhz),
            busy: in_flight > 0,
            capacity,
            class: 0,
            health: crate::router::ServerHealth::Up,
        }
    }

    fn power_views<'a>(
        dvfs: &'a DvfsConfig,
        loads: &[usize],
        capacities: &[f64],
    ) -> Vec<ServerPowerView<'a>> {
        loads
            .iter()
            .zip(capacities)
            .enumerate()
            .map(|(i, (&l, &c))| ServerPowerView {
                view: view(i, l, 2400, c),
                dvfs,
                measured_power: 0.0,
            })
            .collect()
    }

    fn ceilings_of(commands: &[FleetCommand], n: usize) -> Vec<Option<Freq>> {
        let mut out = vec![None; n];
        for cmd in commands {
            if let FleetCommand::SetCeiling { server, ceiling } = cmd {
                out[*server] = *ceiling;
            }
        }
        out
    }

    #[test]
    fn fleet_spec_assigns_classes_in_declaration_order() {
        let cfg = SimConfig::paper_simulated();
        let spec = FleetSpec::new().class("big", cfg.clone(), 1.0, 2).class(
            "little",
            cfg.clone(),
            0.25,
            3,
        );
        assert_eq!(spec.len(), 5);
        assert!(!spec.is_empty());
        assert_eq!(spec.class_index_of(0), 0);
        assert_eq!(spec.class_index_of(1), 0);
        assert_eq!(spec.class_index_of(2), 1);
        assert_eq!(spec.class_index_of(4), 1);
        assert_eq!(spec.class_of(3).name(), "little");
        assert_eq!(spec.capacity_of(0), 1.0);
        assert_eq!(spec.capacity_of(4), 0.25);
        assert_eq!(FleetSpec::homogeneous(cfg, 7).len(), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn fleet_spec_rejects_duplicate_names() {
        let cfg = SimConfig::paper_simulated();
        let _ = FleetSpec::new()
            .class("big", cfg.clone(), 1.0, 1)
            .class("big", cfg, 1.0, 1);
    }

    #[test]
    fn uncapped_fleet_issues_no_commands() {
        let dvfs = DvfsConfig::haswell_like();
        let mut fleet = PegasusFleet::uncapped(CorePowerModel::haswell_like());
        let servers = power_views(&dvfs, &[5, 0, 9], &[1.0, 1.0, 1.0]);
        let mut commands = Vec::new();
        fleet.on_epoch(0.0, 0.0, &servers, &mut commands);
        fleet.on_epoch(1.0, 1.0, &servers, &mut commands);
        assert!(commands.is_empty());
    }

    #[test]
    fn capped_fleet_never_grants_more_worst_case_power_than_the_budget() {
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        let mut commands = Vec::new();
        for budget_per_server in [2.0, 4.0, 6.0, 9.0] {
            for loads in [[0usize, 0, 0, 0], [9, 0, 3, 1], [5, 5, 5, 5]] {
                let servers = power_views(&dvfs, &loads, &[1.0; 4]);
                let budget = budget_per_server * 4.0;
                let floor = PegasusFleet::feasible_floor(&servers, &power);
                let mut fleet = PegasusFleet::new(budget, power);
                fleet.on_epoch(0.0, 0.0, &servers, &mut commands);
                fleet.on_epoch(1.0, 1.0, &servers, &mut commands);
                let ceilings = ceilings_of(&commands, 4);
                let worst: f64 = ceilings
                    .iter()
                    .map(|c| power.active_power(c.expect("capped fleet sets every ceiling")))
                    .sum();
                assert!(
                    worst <= budget.max(floor) + 1e-9,
                    "worst-case {worst} W exceeds budget {budget} W (floor {floor} W)"
                );
                commands.clear();
            }
        }
    }

    #[test]
    fn waterfilling_pours_idle_slack_into_the_backlogged_server() {
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        // Budget: 4 W per server on average — well under nominal active
        // power, so the fair share alone caps everyone low.
        let mut fleet = PegasusFleet::new(16.0, power);
        let mut commands = Vec::new();
        // Three idle servers, one deeply backlogged.
        let servers = power_views(&dvfs, &[12, 0, 0, 0], &[1.0; 4]);
        fleet.on_epoch(1.0, 1.0, &servers, &mut commands);
        let ceilings = ceilings_of(&commands, 4);
        let busy = ceilings[0].unwrap();
        for idle in &ceilings[1..] {
            assert_eq!(idle.unwrap(), dvfs.min(), "idle servers are reclaimed");
        }
        // The backlogged server gets the pooled slack: strictly above its
        // 4 W fair-share level.
        let fair = {
            let f = PegasusFleet::new(16.0, power);
            f.fitting_level(&dvfs, 4.0)
        };
        assert!(
            busy > fair,
            "waterfilled ceiling {busy} should exceed fair-share {fair}"
        );
        // And the total worst case still fits.
        let worst: f64 = ceilings
            .iter()
            .map(|c| power.active_power(c.unwrap()))
            .sum();
        assert!(worst <= 16.0 + 1e-9);
    }

    #[test]
    fn zero_capacity_servers_get_the_minimum_and_bound_scaling_tracks_ceilings() {
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        let mut fleet = PegasusFleet::new(14.0, power).with_bound_scaling();
        assert_eq!(fleet.budget(), 14.0);
        let mut commands = Vec::new();
        let servers = power_views(&dvfs, &[3, 3], &[1.0, 0.0]);
        fleet.on_epoch(0.0, 0.0, &servers, &mut commands);
        let ceilings = ceilings_of(&commands, 2);
        // All weight on server 0; server 1 idles at the minimum level.
        assert!(ceilings[0].unwrap() > dvfs.min());
        assert_eq!(ceilings[1].unwrap(), dvfs.min());
        // Bound scales: relaxed in proportion to the imposed slowdown.
        // Unchanged scales (server 0 keeps scale 1.0: its ceiling imposes
        // no slowdown) are not re-emitted.
        let mut scales = [1.0f64; 2];
        for c in &commands {
            if let FleetCommand::ScaleBound { server, scale } = c {
                scales[*server] = *scale;
            }
        }
        for (scale, ceiling) in scales.iter().zip(&ceilings) {
            let expected = (dvfs.nominal().hz() / ceiling.unwrap().hz()).max(1.0);
            assert!((scale - expected).abs() < 1e-12);
        }
        assert!(scales[1] > 1.0, "the capped little server's bound relaxes");
    }

    #[test]
    fn epoch_meter_charges_segments_extended_in_place_across_boundaries() {
        // Regression: the engine *extends* its final timeline segment in
        // place while activity persists (ticks merge into one growing idle
        // segment). A meter cursor that steps past that segment at a
        // boundary would never charge the extension — under-counting every
        // epoch in which state persists across the boundary (the common
        // case). Each window must report the full idle power.
        use rubik_sim::FixedFrequencyPolicy;
        let config = SimConfig::paper_simulated(); // 100 ms ticks, open sim
        let nominal = config.dvfs.nominal();
        let mut sim = ServerSim::new(config, FixedFrequencyPolicy::new(nominal));
        let power = CorePowerModel::haswell_like();
        let idle = power.idle_power(nominal);

        let mut meter = EpochMeter::new(1);
        let mut out = Vec::new();
        let servers = std::slice::from_mut(&mut sim);
        for boundary in [1.0, 2.0, 3.0] {
            servers[0].drain_until(boundary - 0.05);
            meter.measure(servers.iter(), &power, boundary, &mut out);
            assert!(
                (out[0] - idle).abs() < 1e-9,
                "window ending at {boundary}: measured {} W, expected {idle} W",
                out[0]
            );
        }
    }

    #[test]
    fn dead_servers_shares_waterfall_back_to_survivors_under_the_cap() {
        use crate::router::ServerHealth;
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        let budget = 16.0; // 4 W per server: binding for everyone
        let mut commands = Vec::new();

        // Baseline: four healthy, equally backlogged servers.
        let healthy = power_views(&dvfs, &[6, 6, 6, 6], &[1.0; 4]);
        let mut fleet = PegasusFleet::new(budget, power);
        fleet.on_epoch(1.0, 1.0, &healthy, &mut commands);
        let baseline = ceilings_of(&commands, 4);
        commands.clear();

        // Two of them crash: their shares must waterfall to the survivors.
        let mut faulted = power_views(&dvfs, &[6, 6, 6, 6], &[1.0; 4]);
        faulted[1].view.health = ServerHealth::Down;
        faulted[3].view.health = ServerHealth::Down;
        let mut fleet = PegasusFleet::new(budget, power);
        fleet.on_epoch(1.0, 1.0, &faulted, &mut commands);
        let survivors = ceilings_of(&commands, 4);

        // Down servers are pinned at the minimum level...
        assert_eq!(survivors[1].unwrap(), dvfs.min());
        assert_eq!(survivors[3].unwrap(), dvfs.min());
        // ...survivors run strictly faster than under the healthy split...
        for i in [0usize, 2] {
            assert!(
                survivors[i].unwrap() > baseline[i].unwrap(),
                "survivor {i} did not absorb the dead servers' share \
                 ({:?} vs baseline {:?})",
                survivors[i],
                baseline[i]
            );
        }
        // ...and the analytical worst case still fits the budget, charging
        // the down servers at their (minimum) ceilings too.
        let worst: f64 = survivors
            .iter()
            .map(|c| power.active_power(c.unwrap()))
            .sum();
        assert!(
            worst <= budget + 1e-9,
            "worst-case {worst} W over {budget} W"
        );
    }

    #[test]
    fn stragglers_keep_their_budget_share() {
        // A straggler still serves work, just slowly — starving it of watts
        // would make the lag worse. Only Down servers lose their share.
        use crate::router::ServerHealth;
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        let mut commands = Vec::new();
        let mut servers = power_views(&dvfs, &[4, 4], &[1.0, 1.0]);
        servers[1].view.health = ServerHealth::Straggling;
        let mut fleet = PegasusFleet::new(12.0, power);
        fleet.on_epoch(1.0, 1.0, &servers, &mut commands);
        let ceilings = ceilings_of(&commands, 2);
        assert_eq!(
            ceilings[0], ceilings[1],
            "equal weight, equal backlog: the straggler keeps its share"
        );
    }

    #[test]
    fn commands_are_emitted_only_on_change() {
        let dvfs = DvfsConfig::haswell_like();
        let power = CorePowerModel::haswell_like();
        let mut fleet = PegasusFleet::new(20.0, power);
        let servers = power_views(&dvfs, &[2, 2], &[1.0, 1.0]);
        let mut commands = Vec::new();
        fleet.on_epoch(0.0, 0.0, &servers, &mut commands);
        assert!(!commands.is_empty());
        commands.clear();
        // Same observation next epoch: nothing new to say.
        fleet.on_epoch(1.0, 1.0, &servers, &mut commands);
        assert!(commands.is_empty());
    }
}
