//! Chrome `trace_event` export.
//!
//! Emits the JSON object format understood by `chrome://tracing` and
//! Perfetto: one row (tid) per server plus a synthetic `client` row for
//! retry backoff, `X` complete spans for queueing/service/fault windows,
//! `i` instants for point events, and `C` counters for the fleet time
//! series. Timestamps are microseconds of simulated time.
//!
//! Everything is hand-rolled (the repo is offline); the output is plain
//! ASCII and deterministic for a given [`TraceLog`].

use crate::event::{RequestEventKind, ServerEventKind};
use crate::log::TraceLog;

/// Microsecond timestamp with fixed sub-µs precision.
fn us(t: f64) -> String {
    format!("{:.3}", t * 1e6)
}

fn span(out: &mut Vec<String>, tid: usize, cat: &str, name: &str, from: f64, to: f64, id: u64) {
    out.push(format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{name}\",\
         \"ts\":{},\"dur\":{},\"args\":{{\"id\":{id}}}}}",
        us(from),
        us((to - from).max(0.0)),
    ));
}

fn instant(out: &mut Vec<String>, tid: usize, cat: &str, name: &str, at: f64, id: u64) {
    out.push(format!(
        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{name}\",\
         \"ts\":{},\"s\":\"t\",\"args\":{{\"id\":{id}}}}}",
        us(at),
    ));
}

/// Serialize a [`TraceLog`] in Chrome `trace_event` JSON object format.
pub fn to_chrome_json(log: &TraceLog) -> String {
    let client_tid = log.servers;
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"rubik fleet\"}}"
            .to_string(),
    );
    for server in 0..log.servers {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{server},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"server {server}\"}}}}"
        ));
    }
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{client_tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"client (backoff)\"}}}}"
    ));

    // Request rows: queueing intervals per hosting server, the service span
    // on the completing server, backoff on the client row, instants for the
    // point events.
    for request in &log.requests {
        let service_start = request.start.or(request.completion).unwrap_or(log.end);
        let mut location: Option<(u32, f64)> = None;
        let close = |events: &mut Vec<String>, loc: &mut Option<(u32, f64)>, at: f64| {
            if let Some((server, since)) = loc.take() {
                span(
                    events,
                    server as usize,
                    "request",
                    "queued",
                    since,
                    at,
                    request.id,
                );
            }
        };
        for event in &request.events {
            match event.kind {
                RequestEventKind::Routed { server, .. } => {
                    close(&mut events, &mut location, event.at);
                    location = Some((server, event.at));
                }
                RequestEventKind::Requeued { to, .. } | RequestEventKind::Migrated { to, .. } => {
                    close(&mut events, &mut location, event.at);
                    location = Some((to, event.at));
                    instant(
                        &mut events,
                        to as usize,
                        "request",
                        "hop",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::TimedOut { server, .. } => {
                    close(&mut events, &mut location, event.at);
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "timeout",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::Salvaged { server } => {
                    close(&mut events, &mut location, event.at);
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "salvage",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::Dropped { server } => {
                    close(&mut events, &mut location, event.at);
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "drop",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::Backoff { until } => {
                    span(
                        &mut events,
                        client_tid,
                        "request",
                        "backoff",
                        event.at,
                        until,
                        request.id,
                    );
                }
                // Hedge events are instants: the duplicate's queueing and
                // service live on the hedge server's row like any other
                // copy, so only the launch/outcome points need marking. The
                // primary's open queueing span is left alone — the request
                // is still waiting there too.
                RequestEventKind::Hedged { server, .. } => {
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "hedge",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::HedgeWon { server } => {
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "hedge won",
                        event.at,
                        request.id,
                    );
                }
                RequestEventKind::HedgeCancelled { server } => {
                    instant(
                        &mut events,
                        server as usize,
                        "request",
                        "hedge cancelled",
                        event.at,
                        request.id,
                    );
                }
            }
        }
        close(&mut events, &mut location, service_start.min(log.end));
        if let (Some(start), Some(completion), Some(server)) =
            (request.start, request.completion, request.server)
        {
            if request.events.is_empty() && start > request.arrival {
                // Bare-RunResult logs have no routing events; synthesize the
                // queueing span from the record.
                span(
                    &mut events,
                    server as usize,
                    "request",
                    "queued",
                    request.arrival,
                    start,
                    request.id,
                );
            }
            span(
                &mut events,
                server as usize,
                "request",
                "service",
                start,
                completion,
                request.id,
            );
        }
    }

    // Fault windows per server.
    for (server, windows) in log.down_windows().iter().enumerate() {
        for &(from, to) in windows {
            span(
                &mut events,
                server,
                "fault",
                "down",
                from,
                to,
                server as u64,
            );
        }
    }
    let mut straggling: Vec<Option<f64>> = vec![None; log.servers];
    for event in &log.server_events {
        let server = event.server as usize;
        if server >= log.servers {
            continue;
        }
        match event.kind {
            ServerEventKind::StraggleStart { .. } => {
                straggling[server].get_or_insert(event.at);
            }
            ServerEventKind::StraggleEnd => {
                if let Some(from) = straggling[server].take() {
                    span(
                        &mut events,
                        server,
                        "fault",
                        "straggle",
                        from,
                        event.at,
                        event.server as u64,
                    );
                }
            }
            ServerEventKind::FreqStuck { mhz } => {
                let name = if mhz.is_some() {
                    "freq stuck"
                } else {
                    "freq unstuck"
                };
                instant(
                    &mut events,
                    server,
                    "fault",
                    name,
                    event.at,
                    event.server as u64,
                );
            }
            _ => {}
        }
    }
    for (server, from) in straggling.into_iter().enumerate() {
        if let Some(from) = from {
            span(
                &mut events,
                server,
                "fault",
                "straggle",
                from,
                log.end.max(from),
                server as u64,
            );
        }
    }

    // Fleet counters, one series point per sample window.
    for epoch in &log.epochs {
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":\"fleet power (W)\",\
             \"ts\":{},\"args\":{{\"watts\":{:.4}}}}}",
            us(epoch.end),
            epoch.power,
        ));
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":\"fleet load\",\
             \"ts\":{},\"args\":{{\"queued\":{},\"in_flight\":{}}}}}",
            us(epoch.end),
            epoch.queued,
            epoch.in_flight,
        ));
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":\"fleet progress\",\
             \"ts\":{},\"args\":{{\"completions\":{},\"retries\":{},\"timeouts\":{}}}}}",
            us(epoch.end),
            epoch.completions,
            epoch.retries,
            epoch.timeouts,
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RequestEvent, ServerEvent};
    use crate::fleet::EpochSample;
    use crate::log::RequestTrace;

    #[test]
    fn export_covers_spans_instants_and_counters() {
        let log = TraceLog {
            servers: 2,
            end: 1.0,
            requests: vec![RequestTrace {
                id: 4,
                arrival: 0.0,
                start: Some(0.3),
                completion: Some(0.4),
                server: Some(1),
                events: vec![
                    RequestEvent {
                        at: 0.0,
                        kind: RequestEventKind::Routed {
                            server: 0,
                            attempt: 1,
                        },
                    },
                    RequestEvent {
                        at: 0.1,
                        kind: RequestEventKind::TimedOut {
                            server: 0,
                            attempt: 1,
                        },
                    },
                    RequestEvent {
                        at: 0.1,
                        kind: RequestEventKind::Backoff { until: 0.2 },
                    },
                    RequestEvent {
                        at: 0.2,
                        kind: RequestEventKind::Routed {
                            server: 1,
                            attempt: 2,
                        },
                    },
                ],
            }],
            server_events: vec![
                ServerEvent {
                    at: 0.05,
                    server: 0,
                    kind: ServerEventKind::Down,
                },
                ServerEvent {
                    at: 0.15,
                    server: 0,
                    kind: ServerEventKind::Up,
                },
            ],
            epochs: vec![EpochSample {
                start: 0.0,
                end: 0.5,
                power: 9.0,
                queued: 1,
                in_flight: 2,
                completions: 1,
                retries: 1,
                timeouts: 1,
                per_server: Vec::new(),
            }],
        };
        let text = to_chrome_json(&log);
        for needle in [
            "\"name\":\"server 0\"",
            "\"name\":\"client (backoff)\"",
            "\"name\":\"queued\"",
            "\"name\":\"service\"",
            "\"name\":\"backoff\"",
            "\"name\":\"timeout\"",
            "\"name\":\"down\"",
            "\"name\":\"fleet power (W)\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in export");
        }
        // Determinism: same log, same bytes.
        assert_eq!(text, to_chrome_json(&log));
    }

    #[test]
    fn bare_record_requests_get_synthesized_queue_spans() {
        let log = TraceLog {
            servers: 1,
            end: 1.0,
            requests: vec![RequestTrace {
                id: 0,
                arrival: 0.0,
                start: Some(0.5),
                completion: Some(0.75),
                server: Some(0),
                events: Vec::new(),
            }],
            server_events: Vec::new(),
            epochs: Vec::new(),
        };
        let text = to_chrome_json(&log);
        assert!(text.contains("\"name\":\"queued\""));
        assert!(text.contains("\"name\":\"service\""));
    }
}
