//! Target tail tables.
//!
//! The core of Rubik's efficiency (paper Sec. 4.2, Fig. 5): instead of
//! convolving service-demand distributions on every frequency decision, the
//! controller periodically precomputes two small lookup tables — one for
//! compute cycles and one for memory-bound time. Each row corresponds to a
//! quantile band (octiles in the paper's implementation) of how much work the
//! in-service request has already performed (ω), and each column to a queue
//! position. Entry `(row, i)` is the target-quantile ("tail") amount of
//! *remaining* work until the request at queue position `i` completes:
//!
//! * position 0 is the request in service, whose remaining-work distribution
//!   is the service distribution conditioned on ω,
//! * position `i > 0` adds `i` further independent draws of the service
//!   distribution,
//! * for positions at or beyond the configurable cutoff (16 in the paper),
//!   the distribution is replaced by its Gaussian (CLT) approximation, so
//!   the tables stay small no matter how long the queue grows.
//!
//! # Build cost: the spectral ladder
//!
//! The naive build convolves per row and per position — `rows × (cutoff−1)`
//! full convolutions. The spectral build instead works in the frequency
//! domain: the base PMF is transformed **once** per transform size
//! ([`FftPlan`]), the ladder of self-convolutions `base^⊛i` is produced by
//! one O(n) pointwise product per rung
//! ([`rubik_stats::fft::Spectrum::mul_assign`]), and each rung is shared by
//! *all* progress rows — `O(rows + cutoff)` transforms total. Per rung, a
//! single running-CDF pass accumulates the rung's prefix sums; each table
//! entry is then the `q`-quantile of `cond_row ⊛ base^⊛i`, found by
//! bisecting that shared CDF (evaluating
//! `P[X_row + Y_i ≤ t] = Σ_a pmf_row[a]·CDF_i[t−a]` directly) without ever
//! materializing the per-row convolution. The reference per-row builder is
//! kept as [`TailTable::build_direct`] and the two are checked against each
//! other by the equivalence tests in
//! `crates/core/tests/spectral_equivalence.rs` and benchmarked by
//! `crates/bench/benches/table_rebuild.rs`.
//!
//! # Rebuild cost: incremental builder
//!
//! Rubik rebuilds these tables every 100 ms tick, so the build is a
//! steady-state hot path, not a one-off. [`TableBuilder`] is the persistent
//! engine the controller owns for it:
//!
//! * **Plan caching.** [`FftPlan`]s (twiddle factors, bit-reversal tables)
//!   are cached per transform size and reused for every later rebuild; the
//!   ladder also *right-sizes* each rung's transform — rung `i` only needs
//!   `i·(len−1)+1` points of support, so early rungs run at 256–1024 instead
//!   of the deepest rung's size (the running product at the final size
//!   receives exactly the same pointwise-product sequence as before, so deep
//!   rungs are bit-identical to the single-size ladder).
//! * **Buffer reuse.** The trimmed base, the per-row conditionals, the
//!   spectra, the rung PMF/CDF buffers, and the target's own row storage are
//!   all reused across rebuilds via `*_into` APIs
//!   ([`TableBuilder::build_with_into`] writes into an existing
//!   [`TargetTailTables`]), so a warm rebuild performs **zero allocations**
//!   once every buffer has reached its high-water size.
//! * **Warm-start quantile bisection.** Within one build, the quantile index
//!   for a row is nondecreasing in queue depth and moves by at most the base
//!   support per rung, so each bisection brackets from the previous rung's
//!   answer instead of the full support (falling back to the full bracket if
//!   the windowed one does not straddle the target, so results are exactly
//!   the ones the full-range bisection returns). The inner dot product is
//!   also trimmed to the conditional's non-zero support.
//!
//! [`TargetTailTables::build`]/[`TargetTailTables::build_with`] remain as
//! thin wrappers over a throwaway builder, and the controller skips the
//! rebuild entirely when the profiler's version says the histograms are
//! unchanged (see `RubikController`), making the periodic tick O(1) in the
//! no-new-samples case. `crates/bench/benches/rebuild_amortized.rs` tracks
//! all three tiers (skipped tick, warm rebuild, cold build).
//!
//! # Lookup cost
//!
//! [`TargetTailTables`] caches the [`GaussianTail`] z-score at build time and
//! resolves the progress row by binary search (`partition_point`) once per
//! decision via [`TargetTailTables::tails_at`]; a per-position lookup is then
//! two array reads (or two fused multiply-adds past the Gaussian cutoff)
//! with no transcendental math on the decision path.

use rubik_stats::fft::{Complex, FftPlan, Spectrum};
use rubik_stats::{GaussianTail, Histogram};
use serde::{Deserialize, Serialize};

/// Queue depth at which the Gaussian approximation takes over
/// ("We use this formulation for i ≥ 16", Sec. 4.2).
pub const DEFAULT_GAUSSIAN_CUTOFF: usize = 16;

/// Number of progress (ω) rows; the paper's implementation uses octiles.
pub const DEFAULT_PROGRESS_ROWS: usize = 8;

/// Mean memory-bound time below which the memory component is treated as
/// absent (avoids charging a full histogram bucket of phantom memory time to
/// compute-only workloads).
const NEGLIGIBLE_MEM_TIME: f64 = 1e-9;

/// Tolerance when comparing a CDF against the target quantile, matching
/// [`Histogram::quantile`].
const QUANTILE_EPS: f64 = 1e-12;

/// One precomputed table (compute cycles or memory time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TailTable {
    /// `rows[row][pos]`: tail remaining work for queue position `pos` when
    /// the in-service request's elapsed work falls in band `row`.
    rows: Vec<Vec<f64>>,
    /// Lower boundary of each elapsed-work band (ascending; first is 0).
    boundaries: Vec<f64>,
    /// Mean/variance of the conditioned in-service distribution, per row
    /// (used by the Gaussian extension).
    cond_mean: Vec<f64>,
    cond_var: Vec<f64>,
    /// Mean/variance of the unconditioned service distribution.
    mean: f64,
    var: f64,
}

/// Lower boundary of progress band `row`: band 0 starts at zero, band `r`
/// at the `r/rows` quantile of the trimmed base. Shared by the spectral
/// builder and the `build_direct` oracle so the two row layouts cannot
/// drift apart.
fn row_boundary(base: &Histogram, row: usize, rows: usize) -> f64 {
    if row == 0 {
        0.0
    } else {
        base.quantile(row as f64 / rows as f64)
    }
}

impl TailTable {
    /// Reference builder: the original per-row convolution scheme,
    /// `rows × (cutoff−1)` full convolutions. Kept as the oracle for the
    /// spectral-vs-direct equivalence tests and as the baseline for the
    /// `table_rebuild` bench.
    fn build_direct(hist: &Histogram, quantile: f64, rows: usize, cutoff: usize) -> Self {
        // Trim negligible tail mass so repeated convolutions stay cheap.
        let base = hist.trim_tail(1e-9);

        let mut boundaries = Vec::with_capacity(rows);
        let mut conds = Vec::with_capacity(rows);
        let mut cond_mean = Vec::with_capacity(rows);
        let mut cond_var = Vec::with_capacity(rows);
        for row in 0..rows {
            let boundary = row_boundary(&base, row, rows);
            boundaries.push(boundary);
            let conditioned = base.conditional_on_elapsed(boundary);
            cond_mean.push(conditioned.mean());
            cond_var.push(conditioned.variance());
            conds.push(conditioned);
        }

        let mut table_rows = Vec::with_capacity(rows);
        for cond in &conds {
            let mut row_vals = Vec::with_capacity(cutoff);
            let mut cumulative = cond.clone();
            row_vals.push(cumulative.quantile(quantile));
            for _ in 1..cutoff {
                cumulative = cumulative.convolve(&base).trim_tail(1e-9);
                row_vals.push(cumulative.quantile(quantile));
            }
            table_rows.push(row_vals);
        }

        Self {
            rows: table_rows,
            boundaries,
            cond_mean,
            cond_var,
            mean: base.mean(),
            var: base.variance(),
        }
    }

    fn zero(rows: usize, cutoff: usize) -> Self {
        Self {
            rows: vec![vec![0.0; cutoff]; rows],
            boundaries: vec![0.0; rows],
            cond_mean: vec![0.0; rows],
            cond_var: vec![0.0; rows],
            mean: 0.0,
            var: 0.0,
        }
    }

    /// In-place equivalent of [`TailTable::zero`], reusing the storage.
    fn zero_into(&mut self, rows: usize, cutoff: usize) {
        self.rows.truncate(rows);
        while self.rows.len() < rows {
            self.rows.push(Vec::new());
        }
        for row in &mut self.rows {
            row.clear();
            row.resize(cutoff, 0.0);
        }
        for v in [
            &mut self.boundaries,
            &mut self.cond_mean,
            &mut self.cond_var,
        ] {
            v.clear();
            v.resize(rows, 0.0);
        }
        self.mean = 0.0;
        self.var = 0.0;
    }

    /// Largest row whose boundary is `<= elapsed`. Boundaries are ascending,
    /// so this is a binary search, resolved once per decision (not per queue
    /// position) by [`TargetTailTables::tails_at`].
    fn row_for(&self, elapsed: f64) -> usize {
        self.boundaries
            .partition_point(|&b| b <= elapsed)
            .saturating_sub(1)
    }

    #[inline]
    fn lookup_row(&self, row: usize, pos: usize, tail: &GaussianTail) -> f64 {
        let explicit = &self.rows[row];
        if pos < explicit.len() {
            explicit[pos]
        } else {
            let mean = self.cond_mean[row] + pos as f64 * self.mean;
            let var = self.cond_var[row] + pos as f64 * self.var;
            tail.tail(mean, var)
        }
    }
}

/// The `q`-quantile of `X + Y_i` where `X` has `cond_pmf` (bucket index `a` ↦
/// value `(a+1)·w`) and `Y_i` is the ladder rung with running CDF `rung_cdf`
/// (index `b` ↦ value `(b+i)·w`, the `i` accounting for the upper-edge
/// representative of each of the `i` summands). Returns the combined bucket
/// index `t` (value `(t+1)·w`): the smallest `t` with
/// `P[a + b + i ≤ t] ≥ q − ε`, found by bisection; each CDF evaluation is a
/// dot product of the conditioned PMF — trimmed to its non-zero support
/// `[first, last]` — with a shifted window of the shared rung CDF.
///
/// `warm` carries the previous rung's answer for this row. The quantile is
/// nondecreasing across rungs (each rung adds an independent non-negative
/// draw) and advances by at most `base_len` indices (the added draw is
/// bounded by the base support), so `(warm, warm + base_len]` brackets the
/// answer; the bracket is verified before use and the bisection falls back
/// to the full range whenever it does not straddle the target. The CDF is
/// monotone in `t` (a sum of nondecreasing non-negative terms), so every
/// valid bracket converges to the same minimal `t` — warm starts change the
/// probe count, never the result.
fn quantile_of_sum(
    cond_pmf: &[f64],
    (first, last): (usize, usize),
    rung_cdf: &[f64],
    i: usize,
    q: f64,
    warm: Option<(usize, usize)>,
) -> usize {
    let support = rung_cdf.len();
    let total = rung_cdf[support - 1];
    let cdf_at = |t: usize| -> f64 {
        // P[a + b + i <= t] = Σ_a cond[a] · P[b <= t - i - a], accumulated
        // over ascending a exactly like the naive branchy loop (adding a
        // zero-mass term is a floating-point no-op, so the zero-skip branch
        // is dropped), but split into the two structural segments — shift
        // beyond the rung support (CDF saturates at `total`) and shift
        // inside it — so both run as zipped slices with no per-element
        // branches or bounds checks.
        let Some(ti) = t.checked_sub(i) else {
            return 0.0;
        };
        // Terms with a > t - i have empty windows (P[b < 0] = 0).
        let a_hi = last.min(ti);
        if a_hi < first {
            return 0.0;
        }
        let mut acc = 0.0;
        // Segment 1: a <= ti - support ⟹ shift >= support ⟹ CDF = total.
        let mut a = first;
        if let Some(saturated_end) = ti.checked_sub(support) {
            let end = saturated_end.min(a_hi);
            if end >= a {
                for &p in &cond_pmf[a..=end] {
                    acc += p * total;
                }
                a = end + 1;
            }
        }
        // Segment 2: the in-support window, rung CDF read back-to-front as
        // a ascends (shift = ti - a descends).
        if a <= a_hi {
            let window = &rung_cdf[ti - a_hi..=ti - a];
            for (&p, &cdf) in cond_pmf[a..=a_hi].iter().zip(window.iter().rev()) {
                acc += p * cdf;
            }
        }
        acc
    };

    let full_hi = cond_pmf.len() - 1 + (support - 1) + i;
    let (mut lo, mut hi) = match warm {
        Some((prev, base_len))
            if prev < full_hi
                && cdf_at(prev) < q - QUANTILE_EPS
                && cdf_at((prev + base_len).min(full_hi)) >= q - QUANTILE_EPS =>
        {
            (prev, (prev + base_len).min(full_hi))
        }
        _ => {
            let lo = i; // a = 0, b = 0
            if cdf_at(lo) >= q - QUANTILE_EPS {
                return lo;
            }
            (lo, full_hi)
        }
    };
    // Invariant: cdf_at(lo) < q - ε <= cdf_at(hi) (hi covers all mass).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if cdf_at(mid) >= q - QUANTILE_EPS {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The pair of precomputed tables Rubik consults on every decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetTailTables {
    compute: TailTable,
    memory: TailTable,
    quantile: f64,
    cutoff: usize,
    /// z-score of the target quantile, computed once at build time so the
    /// decision path never evaluates the inverse normal CDF.
    tail: GaussianTail,
}

/// A decision-scoped cursor over [`TargetTailTables`]: the progress rows for
/// the in-service request's elapsed compute/memory work are resolved once
/// (two binary searches), after which each queue position costs two array
/// reads. Obtained from [`TargetTailTables::tails_at`]; borrows the tables,
/// so it is allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct TailsCursor<'a> {
    tables: &'a TargetTailTables,
    compute_row: usize,
    memory_row: usize,
}

impl TailsCursor<'_> {
    /// Tail remaining compute cycles for queue position `pos`.
    #[inline]
    pub fn tail_compute_cycles(&self, pos: usize) -> f64 {
        self.tables
            .compute
            .lookup_row(self.compute_row, pos, &self.tables.tail)
    }

    /// Tail remaining memory-bound time for queue position `pos`.
    #[inline]
    pub fn tail_membound_time(&self, pos: usize) -> f64 {
        self.tables
            .memory
            .lookup_row(self.memory_row, pos, &self.tables.tail)
    }

    /// Both tails for queue position `pos`.
    #[inline]
    pub fn tails(&self, pos: usize) -> (f64, f64) {
        (self.tail_compute_cycles(pos), self.tail_membound_time(pos))
    }
}

/// Persistent spectral table builder (see the module docs, "Rebuild cost:
/// incremental builder").
///
/// The controller owns one of these across its lifetime: FFT plans are
/// cached per transform size, and every working buffer — the trimmed base,
/// per-row conditionals, spectra, rung PMF/CDF — is reused from rebuild to
/// rebuild, so a warm [`TableBuilder::build_with_into`] performs no
/// allocation once the buffers have reached their high-water sizes. One-off
/// callers go through [`TargetTailTables::build`], which spins up a
/// throwaway builder.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    /// FFT plans cached by transform size (a handful of powers of two).
    plans: Vec<FftPlan>,
    /// Packed-FFT scratch shared by all transforms.
    scratch: Vec<Complex>,
    /// Trimmed copy of the histogram under construction.
    base: Histogram,
    /// Per-row conditional distributions.
    conds: Vec<Histogram>,
    /// Non-zero support `[first, last]` of each row's conditional PMF.
    row_nnz: Vec<(usize, usize)>,
    /// Previous rung's quantile index per row (warm-start bisection).
    prev_t: Vec<usize>,
    /// Spectrum of the trimmed base at the current ladder size.
    base_spec: Spectrum,
    /// Running product `base_spec^i`.
    running: Spectrum,
    /// Time-domain rung `base^⊛i`.
    rung_pmf: Vec<f64>,
    /// Running CDF of the current rung.
    rung_cdf: Vec<f64>,
}

impl Default for TableBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TableBuilder {
    /// Creates an empty builder; buffers grow to their steady-state sizes on
    /// first use.
    pub fn new() -> Self {
        Self {
            plans: Vec::new(),
            scratch: Vec::new(),
            base: Histogram::zero(),
            conds: Vec::new(),
            row_nnz: Vec::new(),
            prev_t: Vec::new(),
            base_spec: Spectrum::default(),
            running: Spectrum::default(),
            rung_pmf: Vec::new(),
            rung_cdf: Vec::new(),
        }
    }

    /// Builds a fresh pair of tables with the paper's default shape. Warm
    /// callers that hold a target should prefer
    /// [`TableBuilder::build_with_into`].
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`.
    pub fn build(
        &mut self,
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
    ) -> TargetTailTables {
        self.build_with(
            compute,
            memory,
            quantile,
            DEFAULT_PROGRESS_ROWS,
            DEFAULT_GAUSSIAN_CUTOFF,
        )
    }

    /// Builds a fresh pair of tables with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`, or `rows`/`cutoff` are zero.
    pub fn build_with(
        &mut self,
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
    ) -> TargetTailTables {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        let mut out = TargetTailTables {
            compute: TailTable::zero(rows.max(1), cutoff.max(1)),
            memory: TailTable::zero(rows.max(1), cutoff.max(1)),
            quantile,
            cutoff,
            tail: GaussianTail::new(quantile),
        };
        self.build_with_into(compute, memory, quantile, rows, cutoff, &mut out);
        out
    }

    /// Rebuilds `out` in place from the given histograms, reusing both the
    /// builder's scratch state and the target's own storage. This is the
    /// controller's warm path: bit-identical results to
    /// [`TargetTailTables::build_with`], zero steady-state allocations.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`, or `rows`/`cutoff` are zero.
    pub fn build_with_into(
        &mut self,
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
        out: &mut TargetTailTables,
    ) {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        assert!(rows > 0 && cutoff > 0, "table dimensions must be positive");
        self.build_table_into(compute, quantile, rows, cutoff, &mut out.compute);
        if memory.mean() < NEGLIGIBLE_MEM_TIME {
            out.memory.zero_into(rows, cutoff);
        } else {
            self.build_table_into(memory, quantile, rows, cutoff, &mut out.memory);
        }
        out.quantile = quantile;
        out.cutoff = cutoff;
        out.tail = GaussianTail::new(quantile);
    }

    /// Builds one table into `out` (see the module docs for the ladder
    /// scheme).
    fn build_table_into(
        &mut self,
        hist: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
        out: &mut TailTable,
    ) {
        let Self {
            plans,
            scratch,
            base,
            conds,
            row_nnz,
            prev_t,
            base_spec,
            running,
            rung_pmf,
            rung_cdf,
        } = self;

        // Trim negligible tail mass so the transform size stays small.
        hist.trim_tail_into(1e-9, base);
        let width = base.bucket_width();
        let base_len = base.pmf().len();

        // Row setup: boundaries, conditionals (with their non-zero support),
        // moments, and the position-0 column — all into reused storage.
        out.boundaries.clear();
        out.cond_mean.clear();
        out.cond_var.clear();
        out.rows.truncate(rows);
        while out.rows.len() < rows {
            out.rows.push(Vec::new());
        }
        if conds.len() < rows {
            conds.resize(rows, Histogram::zero());
        }
        row_nnz.clear();
        prev_t.clear();
        for row in 0..rows {
            let boundary = row_boundary(base, row, rows);
            out.boundaries.push(boundary);
            let cond = &mut conds[row];
            base.conditional_on_elapsed_into(boundary, cond);
            out.cond_mean.push(cond.mean());
            out.cond_var.push(cond.variance());
            let pmf = cond.pmf();
            let first = pmf
                .iter()
                .position(|&p| p != 0.0)
                .expect("conditional PMF has mass");
            let last = pmf.iter().rposition(|&p| p != 0.0).expect("has mass");
            row_nnz.push((first, last));
            // Position 0 needs no convolution: the conditioned distribution's
            // own quantile (also the warm start for rung 1).
            let j0 = cond.quantile_bucket(quantile);
            let row_vals = &mut out.rows[row];
            row_vals.clear();
            row_vals.reserve(cutoff);
            row_vals.push(cond.bucket_value(j0));
            prev_t.push(j0);
        }
        out.mean = base.mean();
        out.var = base.variance();

        if cutoff > 1 {
            // Right-sized ladder: rung base^⊛i has linear-convolution support
            // i(len−1)+1, so early rungs transform at small power-of-two
            // sizes. When the size steps up, the running product at the new
            // size is caught up with the same pointwise-product sequence a
            // single-size ladder would have applied, so rungs at the deepest
            // size are bit-identical to the uniform-size build.
            let mut cur_size = 0usize;
            let mut exp = 0usize;
            for i in 1..cutoff {
                let support = i * (base_len - 1) + 1;
                if i > 1 {
                    let size = support.next_power_of_two().max(2);
                    let plan_idx = if size != cur_size {
                        let idx = plan_index(plans, size);
                        plans[idx].forward_into(base.pmf(), scratch, base_spec);
                        running.clone_from(base_spec);
                        exp = 1;
                        cur_size = size;
                        idx
                    } else {
                        plan_index(plans, size)
                    };
                    while exp < i {
                        running.mul_assign(base_spec);
                        exp += 1;
                    }
                    plans[plan_idx].inverse_into(running, scratch, rung_pmf);
                } else {
                    // Rung 1 *is* the base PMF — no transform needed.
                    rung_pmf.clear();
                    rung_pmf.extend_from_slice(base.pmf());
                }

                // The single running-CDF pass over this rung, clamping FFT
                // round-off (a convolution of PMFs cannot go negative).
                rung_cdf.clear();
                let mut cum = 0.0;
                for &p in &rung_pmf[..support] {
                    cum += p.max(0.0);
                    rung_cdf.push(cum);
                }

                for (row, cond) in conds.iter().enumerate().take(rows) {
                    let t = quantile_of_sum(
                        cond.pmf(),
                        row_nnz[row],
                        rung_cdf,
                        i,
                        quantile,
                        Some((prev_t[row], base_len)),
                    );
                    prev_t[row] = t;
                    out.rows[row].push((t + 1) as f64 * width);
                }
            }
        }
    }
}

/// Index of the cached plan for transform size `n`, creating it on first
/// use. The cache holds a handful of distinct power-of-two sizes, so a
/// linear scan beats any map.
fn plan_index(plans: &mut Vec<FftPlan>, n: usize) -> usize {
    match plans.iter().position(|p| p.len() == n) {
        Some(idx) => idx,
        None => {
            plans.push(FftPlan::new(n));
            plans.len() - 1
        }
    }
}

impl TargetTailTables {
    /// Builds the tables from the profiled compute-cycle and memory-time
    /// histograms for the given tail quantile (e.g. 0.95), with the paper's
    /// default table shape (8 progress rows, Gaussian beyond depth 16).
    ///
    /// Thin wrapper over a throwaway [`TableBuilder`]; rebuild loops should
    /// hold a persistent builder and use [`TableBuilder::build_with_into`].
    pub fn build(compute: &Histogram, memory: &Histogram, quantile: f64) -> Self {
        TableBuilder::new().build(compute, memory, quantile)
    }

    /// Builds the tables with explicit table dimensions (used by the
    /// ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`, or `rows`/`cutoff` are zero.
    pub fn build_with(
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
    ) -> Self {
        TableBuilder::new().build_with(compute, memory, quantile, rows, cutoff)
    }

    /// Builds the tables with the reference per-row convolution scheme and
    /// the paper's default shape. Slower than [`TargetTailTables::build`] by
    /// construction; exists as the equivalence-test oracle and the bench
    /// baseline.
    pub fn build_direct(compute: &Histogram, memory: &Histogram, quantile: f64) -> Self {
        Self::build_direct_with(
            compute,
            memory,
            quantile,
            DEFAULT_PROGRESS_ROWS,
            DEFAULT_GAUSSIAN_CUTOFF,
        )
    }

    /// Reference builder with explicit dimensions; see
    /// [`TargetTailTables::build_direct`].
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`, or `rows`/`cutoff` are zero.
    pub fn build_direct_with(
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
    ) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        assert!(rows > 0 && cutoff > 0, "table dimensions must be positive");
        let compute_table = TailTable::build_direct(compute, quantile, rows, cutoff);
        let memory_table = if memory.mean() < NEGLIGIBLE_MEM_TIME {
            TailTable::zero(rows, cutoff)
        } else {
            TailTable::build_direct(memory, quantile, rows, cutoff)
        };
        Self {
            compute: compute_table,
            memory: memory_table,
            quantile,
            cutoff,
            tail: GaussianTail::new(quantile),
        }
    }

    /// The tail quantile the tables were built for.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// The queue depth beyond which the Gaussian approximation is used.
    pub fn gaussian_cutoff(&self) -> usize {
        self.cutoff
    }

    /// Resolves the progress rows for the in-service request's elapsed work
    /// once and returns a cursor for per-position lookups. This is the
    /// decision-path entry point: one decision resolves the rows a single
    /// time and then walks the queue with O(1) lookups.
    pub fn tails_at(&self, elapsed_compute: f64, elapsed_mem: f64) -> TailsCursor<'_> {
        TailsCursor {
            tables: self,
            compute_row: self.compute.row_for(elapsed_compute),
            memory_row: self.memory.row_for(elapsed_mem),
        }
    }

    /// Tail *remaining compute cycles* until the request at queue position
    /// `pos` completes, given that the in-service request has already
    /// executed `elapsed_compute_cycles`.
    pub fn tail_compute_cycles(&self, elapsed_compute_cycles: f64, pos: usize) -> f64 {
        let row = self.compute.row_for(elapsed_compute_cycles);
        self.compute.lookup_row(row, pos, &self.tail)
    }

    /// Tail *remaining memory-bound time* until the request at queue position
    /// `pos` completes, given the in-service request's elapsed memory time.
    pub fn tail_membound_time(&self, elapsed_membound_time: f64, pos: usize) -> f64 {
        let row = self.memory.row_for(elapsed_membound_time);
        self.memory.lookup_row(row, pos, &self.tail)
    }

    /// Convenience: both tails at once. For repeated lookups at the same
    /// elapsed-work point (the common case: walking the queue), prefer
    /// [`TargetTailTables::tails_at`], which resolves the rows only once.
    pub fn tails(&self, elapsed_compute: f64, elapsed_mem: f64, pos: usize) -> (f64, f64) {
        self.tails_at(elapsed_compute, elapsed_mem).tails(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_stats::DeterministicRng;

    fn lognormal_hist(mean: f64, cov: f64, n: usize, seed: u64) -> Histogram {
        let mut rng = DeterministicRng::new(seed);
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal(mean, cov)).collect();
        Histogram::from_samples(&samples, 128)
    }

    fn zero_hist() -> Histogram {
        Histogram::from_samples(&[0.0, 0.0, 0.0], 4)
    }

    #[test]
    fn deeper_queue_positions_have_larger_tails() {
        let c = lognormal_hist(1e6, 0.3, 5000, 1);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let mut prev = 0.0;
        for pos in 0..32 {
            let tail = t.tail_compute_cycles(0.0, pos);
            assert!(tail > prev, "pos {pos}: {tail} <= {prev}");
            prev = tail;
        }
    }

    #[test]
    fn tail_grows_roughly_linearly_with_queue_depth() {
        let c = lognormal_hist(1e6, 0.3, 5000, 2);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let t1 = t.tail_compute_cycles(0.0, 1);
        let t9 = t.tail_compute_cycles(0.0, 9);
        // Tail at depth 9 should be close to (but less than) 5x the tail at
        // depth 1: independent work averages out, so the tail grows slower
        // than proportionally (the effect Rubik exploits, Sec. 4.1).
        assert!(t9 < 5.2 * t1, "t9 = {t9}, t1 = {t1}");
        assert!(t9 > 3.0 * t1);
    }

    #[test]
    fn per_position_tail_shrinks_relative_to_naive_sum() {
        // The tail of a sum is less than the sum of tails (the queue's
        // completion time concentrates). This is why the last queued request
        // rarely sets the frequency.
        let c = lognormal_hist(1e6, 0.5, 5000, 3);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let single = t.tail_compute_cycles(0.0, 0);
        let ten = t.tail_compute_cycles(0.0, 9);
        assert!(ten < 10.0 * single);
    }

    #[test]
    fn more_elapsed_work_reduces_the_remaining_tail_for_clustered_work() {
        let c = lognormal_hist(1e6, 0.2, 5000, 4);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let fresh = t.tail_compute_cycles(0.0, 0);
        let after_median = t.tail_compute_cycles(1e6, 0);
        assert!(after_median < fresh, "{after_median} vs {fresh}");
    }

    #[test]
    fn gaussian_extension_is_continuous_at_the_cutoff() {
        let c = lognormal_hist(1e6, 0.3, 5000, 5);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let last_explicit = t.tail_compute_cycles(0.0, DEFAULT_GAUSSIAN_CUTOFF - 1);
        let first_gaussian = t.tail_compute_cycles(0.0, DEFAULT_GAUSSIAN_CUTOFF);
        let ratio = first_gaussian / last_explicit;
        // The approximation should hand over smoothly: one extra request's
        // worth of work, not a jump.
        assert!(ratio > 1.0 && ratio < 1.2, "ratio = {ratio}");
    }

    #[test]
    fn zero_memory_distribution_contributes_nothing() {
        let c = lognormal_hist(1e6, 0.3, 2000, 6);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        for pos in 0..20 {
            assert_eq!(t.tail_membound_time(0.0, pos), 0.0);
        }
    }

    #[test]
    fn memory_table_tracks_memory_distribution() {
        let c = lognormal_hist(1e6, 0.3, 2000, 7);
        let m = lognormal_hist(100e-6, 0.3, 2000, 8);
        let t = TargetTailTables::build(&c, &m, 0.95);
        let m0 = t.tail_membound_time(0.0, 0);
        assert!(m0 > 100e-6 && m0 < 300e-6, "m0 = {m0}");
        assert!(t.tail_membound_time(0.0, 3) > 3.0 * 100e-6);
    }

    #[test]
    fn higher_quantile_produces_larger_tails() {
        let c = lognormal_hist(1e6, 0.5, 3000, 9);
        let t95 = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let t99 = TargetTailTables::build(&c, &zero_hist(), 0.99);
        assert!(t99.tail_compute_cycles(0.0, 0) > t95.tail_compute_cycles(0.0, 0));
        assert!(t99.tail_compute_cycles(0.0, 5) > t95.tail_compute_cycles(0.0, 5));
    }

    #[test]
    fn custom_dimensions_are_respected() {
        let c = lognormal_hist(1e6, 0.3, 1000, 10);
        let t = TargetTailTables::build_with(&c, &zero_hist(), 0.95, 4, 8);
        assert_eq!(t.gaussian_cutoff(), 8);
        // Depth 8 and beyond uses the Gaussian extension and still grows.
        assert!(t.tail_compute_cycles(0.0, 8) > t.tail_compute_cycles(0.0, 7));
    }

    #[test]
    fn cursor_matches_single_shot_lookups() {
        let c = lognormal_hist(1e6, 0.4, 3000, 12);
        let m = lognormal_hist(50e-6, 0.4, 3000, 13);
        let t = TargetTailTables::build(&c, &m, 0.95);
        for &(ec, em) in &[(0.0, 0.0), (5e5, 20e-6), (2e6, 200e-6), (1e9, 1.0)] {
            let cursor = t.tails_at(ec, em);
            for pos in 0..40 {
                assert_eq!(
                    cursor.tail_compute_cycles(pos),
                    t.tail_compute_cycles(ec, pos)
                );
                assert_eq!(
                    cursor.tail_membound_time(pos),
                    t.tail_membound_time(em, pos)
                );
                assert_eq!(cursor.tails(pos), t.tails(ec, em, pos));
            }
        }
    }

    #[test]
    fn row_resolution_matches_linear_scan() {
        let c = lognormal_hist(1e6, 0.6, 4000, 14);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let boundaries = &t.compute.boundaries;
        // partition_point row resolution must agree with the original linear
        // scan for elapsed values around every boundary.
        let linear = |elapsed: f64| {
            let mut row = 0;
            for (i, &b) in boundaries.iter().enumerate() {
                if elapsed >= b {
                    row = i;
                } else {
                    break;
                }
            }
            row
        };
        let mut probes = vec![0.0, 1e-30, 1e12];
        for &b in boundaries {
            probes.extend([b - 1.0, b, b + 1.0]);
        }
        for p in probes {
            let p = p.max(0.0);
            assert_eq!(t.compute.row_for(p), linear(p), "elapsed {p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_invalid_quantile() {
        let c = lognormal_hist(1e6, 0.3, 100, 11);
        let _ = TargetTailTables::build(&c, &zero_hist(), 1.0);
    }
}
