//! Least-squares power-model fitting and cross-validation.
//!
//! The paper (Sec. 5.1, "Power model") fits a full-system power model to a
//! real Haswell server: it runs SPEC CPU2006 mixes at different frequencies,
//! samples performance counters and RAPL/wall-plug power, performs
//! least-squares regression, and validates with k-fold cross-validation,
//! reporting 5.1% mean and 11% worst-case absolute error.
//!
//! We reproduce the *methodology* end to end on synthetic data: a hidden
//! "ground truth" machine generates counter samples with measurement noise,
//! [`PowerRegression::fit`] recovers a linear model over physically motivated
//! features (`V²·f`, `V`, memory activity, utilization), and
//! [`k_fold_cross_validation`] reports the error statistics that the
//! `table_power_model` bench binary prints.

use serde::{Deserialize, Serialize};

use rubik_sim::Freq;
use rubik_stats::DeterministicRng;

use crate::vf::VfCurve;

/// One 25 ms-style measurement sample: counters plus measured power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Core frequency during the sample.
    pub freq: Freq,
    /// Supply voltage during the sample.
    pub voltage: f64,
    /// Core utilization in `[0, 1]` (non-halted cycle fraction).
    pub utilization: f64,
    /// Memory traffic intensity in `[0, 1]` (fraction of peak bandwidth).
    pub memory_activity: f64,
    /// Measured power in watts.
    pub measured_power: f64,
}

impl CounterSample {
    fn features(&self) -> [f64; 4] {
        [
            1.0,
            self.voltage * self.voltage * self.freq.ghz() * self.utilization,
            self.voltage,
            self.memory_activity,
        ]
    }
}

/// A fitted linear power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerRegression {
    /// Coefficients for `[1, V²·f·util, V, mem]`.
    coefficients: [f64; 4],
}

impl PowerRegression {
    /// Fits the model to samples by ordinary least squares (normal
    /// equations).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 samples are provided or the normal equations
    /// are singular (e.g. all samples identical).
    pub fn fit(samples: &[CounterSample]) -> Self {
        assert!(
            samples.len() >= 4,
            "need at least as many samples as model coefficients"
        );
        // Accumulate X^T X (4x4) and X^T y (4).
        let mut xtx = [[0.0f64; 4]; 4];
        let mut xty = [0.0f64; 4];
        for s in samples {
            let x = s.features();
            for i in 0..4 {
                for j in 0..4 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * s.measured_power;
            }
        }
        let coefficients = solve_4x4(xtx, xty).expect("normal equations must not be singular");
        Self { coefficients }
    }

    /// The fitted coefficients for `[1, V²·f·util, V, mem]`.
    pub fn coefficients(&self) -> [f64; 4] {
        self.coefficients
    }

    /// Predicted power for a sample's counters.
    pub fn predict(&self, sample: &CounterSample) -> f64 {
        sample
            .features()
            .iter()
            .zip(&self.coefficients)
            .map(|(x, c)| x * c)
            .sum()
    }

    /// Mean and worst-case absolute relative error over a sample set.
    pub fn errors(&self, samples: &[CounterSample]) -> RegressionReport {
        let mut sum = 0.0;
        let mut worst: f64 = 0.0;
        for s in samples {
            let rel = ((self.predict(s) - s.measured_power) / s.measured_power).abs();
            sum += rel;
            worst = worst.max(rel);
        }
        RegressionReport {
            mean_abs_error: if samples.is_empty() {
                0.0
            } else {
                sum / samples.len() as f64
            },
            worst_abs_error: worst,
            samples: samples.len(),
        }
    }
}

/// Error statistics of a fitted model on a validation set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Mean absolute relative error.
    pub mean_abs_error: f64,
    /// Worst-case absolute relative error.
    pub worst_abs_error: f64,
    /// Number of validation samples.
    pub samples: usize,
}

/// k-fold cross-validation: fits on k−1 folds, evaluates on the held-out
/// fold, and aggregates mean / worst error over all folds (the paper uses
/// this to report its 5.1% / 11% numbers).
///
/// # Panics
///
/// Panics if `k < 2` or there are fewer samples than folds.
pub fn k_fold_cross_validation(samples: &[CounterSample], k: usize) -> RegressionReport {
    assert!(k >= 2, "cross-validation needs at least two folds");
    assert!(samples.len() >= k, "need at least one sample per fold");
    let fold_size = samples.len().div_ceil(k);
    let mut total_err = 0.0;
    let mut worst: f64 = 0.0;
    let mut count = 0usize;
    for fold in 0..k {
        let lo = fold * fold_size;
        let hi = ((fold + 1) * fold_size).min(samples.len());
        if lo >= hi {
            continue;
        }
        let test = &samples[lo..hi];
        let train: Vec<CounterSample> = samples[..lo]
            .iter()
            .chain(&samples[hi..])
            .copied()
            .collect();
        let model = PowerRegression::fit(&train);
        let report = model.errors(test);
        total_err += report.mean_abs_error * report.samples as f64;
        worst = worst.max(report.worst_abs_error);
        count += report.samples;
    }
    RegressionReport {
        mean_abs_error: total_err / count as f64,
        worst_abs_error: worst,
        samples: count,
    }
}

/// Generates synthetic counter samples from a hidden "ground truth" server:
/// random frequency levels, utilizations and memory intensities, true power
/// from a physically motivated model, plus multiplicative measurement noise
/// (`noise` is the standard deviation as a fraction, e.g. 0.05 for 5%).
pub fn synthesize_samples(count: usize, noise: f64, seed: u64) -> Vec<CounterSample> {
    assert!(noise >= 0.0);
    let vf = VfCurve::haswell_like();
    let mut rng = DeterministicRng::new(seed);
    let levels: Vec<Freq> = (800..=3400).step_by(200).map(Freq::from_mhz).collect();
    (0..count)
        .map(|_| {
            let freq = levels[rng.index(levels.len())];
            let voltage = vf.voltage(freq);
            let utilization = rng.uniform();
            let memory_activity = rng.uniform() * utilization.max(0.05);
            // Hidden truth: idle platform power + core dynamic + leakage +
            // memory power, with a small interaction term the linear model
            // cannot represent (so the fit error is non-zero, as in reality).
            let true_power = 32.0
                + 15.0 * voltage * voltage * freq.ghz() * utilization
                + 6.0 * voltage
                + 9.0 * memory_activity
                + 1.5 * memory_activity * freq.ghz();
            let noisy = true_power * (1.0 + noise * (rng.uniform() * 2.0 - 1.0));
            CounterSample {
                freq,
                voltage,
                utilization,
                memory_activity,
                measured_power: noisy,
            }
        })
        .collect()
}

fn solve_4x4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    // Gaussian elimination with partial pivoting.
    for col in 0..4 {
        let mut pivot = col;
        for row in col + 1..4 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..4 {
            let factor = a[row][col] / a[col][col];
            for k in col..4 {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut sum = b[row];
        for k in row + 1..4 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_a_noiseless_linear_model() {
        // Ground truth exactly in the model family, no noise → near-zero error.
        let vf = VfCurve::haswell_like();
        let mut rng = DeterministicRng::new(3);
        let samples: Vec<CounterSample> = (0..500)
            .map(|_| {
                let freq = Freq::from_mhz(800 + 200 * rng.index(14) as u32);
                let voltage = vf.voltage(freq);
                let utilization = rng.uniform();
                let memory_activity = rng.uniform();
                let power = 30.0
                    + 12.0 * voltage * voltage * freq.ghz() * utilization
                    + 5.0 * voltage
                    + 8.0 * memory_activity;
                CounterSample {
                    freq,
                    voltage,
                    utilization,
                    memory_activity,
                    measured_power: power,
                }
            })
            .collect();
        let model = PowerRegression::fit(&samples);
        let report = model.errors(&samples);
        assert!(report.mean_abs_error < 1e-9);
        assert!((model.coefficients()[0] - 30.0).abs() < 1e-6);
        assert!((model.coefficients()[1] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn cross_validation_error_is_small_but_nonzero() {
        // With 5% measurement noise and a model-mismatch term, the k-fold
        // error should land in the same band the paper reports (a few
        // percent mean, ~2x worse worst-case).
        let samples = synthesize_samples(20_000, 0.05, 7);
        let report = k_fold_cross_validation(&samples, 10);
        assert!(
            report.mean_abs_error > 0.005,
            "mean {}",
            report.mean_abs_error
        );
        assert!(
            report.mean_abs_error < 0.10,
            "mean {}",
            report.mean_abs_error
        );
        assert!(
            report.worst_abs_error < 0.25,
            "worst {}",
            report.worst_abs_error
        );
        assert!(report.worst_abs_error > report.mean_abs_error);
        assert_eq!(report.samples, 20_000);
    }

    #[test]
    fn prediction_increases_with_frequency_and_utilization() {
        let samples = synthesize_samples(5_000, 0.02, 11);
        let model = PowerRegression::fit(&samples);
        let vf = VfCurve::haswell_like();
        let mk = |mhz: u32, util: f64| CounterSample {
            freq: Freq::from_mhz(mhz),
            voltage: vf.voltage(Freq::from_mhz(mhz)),
            utilization: util,
            memory_activity: 0.2,
            measured_power: 0.0,
        };
        assert!(model.predict(&mk(3400, 1.0)) > model.predict(&mk(800, 1.0)));
        assert!(model.predict(&mk(2400, 1.0)) > model.predict(&mk(2400, 0.1)));
    }

    #[test]
    fn solver_handles_identity() {
        let a = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let x = solve_4x4(a, [1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solver_reports_singularity() {
        let a = [[1.0, 1.0, 0.0, 0.0]; 4];
        assert!(solve_4x4(a, [1.0; 4]).is_none());
    }

    #[test]
    #[should_panic(expected = "at least as many samples")]
    fn fit_rejects_too_few_samples() {
        let _ = PowerRegression::fit(&synthesize_samples(3, 0.0, 1));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn cross_validation_rejects_single_fold() {
        let _ = k_fold_cross_validation(&synthesize_samples(10, 0.0, 1), 1);
    }
}
