//! Serving through failures at scale: a 100-server capped Rubik fleet loses
//! ten servers in a crash wave and gets them back, under a scripted
//! [`FaultPlan`].
//!
//! This is the acceptance experiment for the failure-aware stack. Three
//! things must hold, and all three are recorded in the `"fleet_faults"`
//! section of `BENCH_cluster.json`:
//!
//! 1. **The watt cap holds through the wave.** `PegasusFleet` re-apportions
//!    its budget over the survivors, so no epoch window — before, during,
//!    or after the outage — exceeds the budget.
//! 2. **Goodput recovers.** Completions-within-deadline dip while a tenth
//!    of the fleet is dark and climb back after recovery; the recorded
//!    recovery curve (per-window goodput fraction) shows the dip and the
//!    return.
//! 3. **The rescue stack earns its keep.** Health-aware routing plus
//!    timeouts and retries strictly cuts deadline violations against a
//!    failure-blind baseline on the same fault schedule.
//!
//! Criterion tracks the wall time of the faulted runs (the fault-layer
//! overhead) in `BENCH_controller.json`.
//!
//! Env knobs: `RUBIK_FLEET_FAULTS_REQUESTS` (default 60) sets requests per
//! server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::cluster::fleet_trace;
use rubik::{
    AppProfile, Cluster, ClusterOutcome, CorePowerModel, FaultPlan, HealthAware, JoinShortestQueue,
    PegasusFleet, RequestPolicy, RubikConfig, RubikController, RunResult, SimConfig, Trace,
};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

const FLEET: usize = 100;
const CRASHED: usize = 10;
const LOAD: f64 = 0.6;
/// Watts per server: far under the ~6 W a busy core draws at nominal, so
/// the apportioned ceilings genuinely bind and the re-apportioning over
/// survivors is observable in the max epoch power.
const BUDGET_PER_SERVER: f64 = 3.0;
/// Fleet-controller epoch; short enough that a bench-sized run spans many
/// epochs and the crash wave straddles several of them.
const EPOCH: f64 = 0.02;

fn requests_per_server() -> usize {
    std::env::var("RUBIK_FLEET_FAULTS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Ten servers crash in a staggered wave a third of the way into the run
/// and recover, equally staggered, at two thirds.
fn crash_wave(duration: f64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let down = 0.33 * duration;
    let up = 0.66 * duration;
    let stagger = 0.002 * duration;
    for i in 0..CRASHED {
        plan = plan
            .crash(i, down + i as f64 * stagger)
            .recover(i, up + i as f64 * stagger);
    }
    plan
}

/// Deadline and retry schedule shared by the aware runs, derived from the
/// app's service time.
fn rescue_policy(mean: f64, deadline: f64) -> RequestPolicy {
    RequestPolicy::new()
        .with_deadline(deadline)
        .with_timeout(6.0 * mean)
        .with_retries(4, mean, 10.0 * mean)
        .salvaging_in_flight()
        .draining_on_crash()
}

fn run_fleet(
    trace: &Trace,
    bound: f64,
    deadline: f64,
    budget: f64,
    aware: bool,
) -> (ClusterOutcome, Vec<RunResult>) {
    let config = SimConfig::paper_simulated();
    let power = CorePowerModel::haswell_like();
    let profile_mean = bound / 3.0;
    let router: Box<dyn rubik::Router> = if aware {
        Box::new(HealthAware::new(JoinShortestQueue::new()))
    } else {
        Box::new(JoinShortestQueue::new())
    };
    let mut cluster = Cluster::new(config.clone(), FLEET, router, |_| {
        RubikController::seeded_for_trace(
            RubikConfig::new(bound).with_profiling_window(1024),
            config.dvfs.clone(),
            trace,
            256,
        )
    })
    .with_power(power)
    .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(EPOCH)))
    .with_fault_plan(crash_wave(trace.duration()));
    cluster = if aware {
        cluster.with_request_policy(rescue_policy(profile_mean, deadline))
    } else {
        // The blind baseline sees the same deadline but never times out,
        // retries, or routes around the dead servers.
        cluster.with_request_policy(RequestPolicy::new().with_deadline(deadline))
    };
    cluster.run_with_results(trace)
}

/// Goodput fraction (completions within deadline / arrivals) per
/// epoch-aligned window: the recovery curve.
fn recovery_curve(
    results: &[RunResult],
    trace: &Trace,
    deadline: f64,
    duration: f64,
    windows: usize,
) -> Vec<f64> {
    let window = duration / windows as f64;
    let mut offered = vec![0usize; windows];
    for r in trace.requests() {
        let w = ((r.arrival / window) as usize).min(windows - 1);
        offered[w] += 1;
    }
    let mut good = vec![0usize; windows];
    for r in results {
        for rec in r.records() {
            if rec.completion - rec.arrival <= deadline {
                let w = ((rec.arrival / window) as usize).min(windows - 1);
                good[w] += 1;
            }
        }
    }
    offered
        .iter()
        .zip(&good)
        .map(|(&o, &g)| if o == 0 { 1.0 } else { g as f64 / o as f64 })
        .collect()
}

fn bench_fleet_faults(c: &mut Criterion) {
    let profile = AppProfile::masstree();
    let mean = profile.mean_service_time();
    let bound = 3.0 * mean;
    let deadline = 15.0 * mean;
    let per_server = requests_per_server();
    let budget = BUDGET_PER_SERVER * FLEET as f64;
    let trace = fleet_trace(&profile, LOAD, FLEET, per_server * FLEET, 2015);

    let mut group = c.benchmark_group("fleet_faults");
    for (label, aware) in [("blind", false), ("health_aware", true)] {
        group.bench_with_input(BenchmarkId::new("mode", label), &aware, |b, &aware| {
            b.iter(|| {
                let (outcome, _) = run_fleet(&trace, bound, deadline, budget, aware);
                assert_eq!(outcome.availability.offered, trace.len());
                outcome.fleet_energy // checksum against dead-code elimination
            })
        });
    }
    group.finish();

    // One measured run per mode for the recorded experiment numbers.
    let (blind, blind_results) = run_fleet(&trace, bound, deadline, budget, false);
    let (aware, aware_results) = run_fleet(&trace, bound, deadline, budget, true);
    let power = CorePowerModel::haswell_like();
    let max_power = rubik_bench::max_epoch_power(&aware_results, aware.duration, EPOCH, &power);
    // The blind fleet's curve dips while the wave is down and climbs back
    // after recovery; the rescue stack's job is to flatten that dip.
    let blind_curve = recovery_curve(&blind_results, &trace, deadline, blind.duration, 12);
    let aware_curve = recovery_curve(&aware_results, &trace, deadline, aware.duration, 12);
    // The wave is down for [0.33, 0.66) of the run: windows 4..8 of 12.
    let during = blind_curve[4..8]
        .iter()
        .fold(f64::INFINITY, |m, &g| m.min(g));
    let after = blind_curve[10];
    let aware_during = aware_curve[4..8]
        .iter()
        .fold(f64::INFINITY, |m, &g| m.min(g));
    let b = &blind.availability;
    let a = &aware.availability;

    let curve_json = |curve: &[f64]| {
        curve
            .iter()
            .map(|g| format!("{g:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let blind_curve_json = curve_json(&blind_curve);
    let aware_curve_json = curve_json(&aware_curve);
    let section = format!(
        "{{\n    \"servers\": {FLEET},\n    \"crashed\": {CRASHED},\n    \
         \"load_per_server\": {LOAD},\n    \"requests_per_server\": {per_server},\n    \
         \"policy\": \"rubik-per-server\",\n    \"budget_w\": {budget:.1},\n    \
         \"epoch_s\": {EPOCH},\n    \"deadline_ms\": {:.3},\n    \
         \"blind\": {{\"router\": \"jsq\", \"goodput_fraction\": {:.4}, \
         \"deadline_exceeded\": {}, \"lost\": {}, \
         \"recovery_curve_goodput\": [{blind_curve_json}]}},\n    \
         \"health_aware\": {{\"router\": \"health-aware(jsq) + retries\", \
         \"goodput_fraction\": {:.4}, \"deadline_exceeded\": {}, \"lost\": {}, \
         \"timeouts\": {}, \"retries\": {}, \"requeued_on_failure\": {}, \
         \"max_epoch_power_w\": {max_power:.2}, \
         \"recovery_curve_goodput\": [{aware_curve_json}]}},\n    \
         \"cap_held_under_failures\": {},\n    \"goodput_recovers\": {},\n    \
         \"rescue_flattens_the_dip\": {},\n    \
         \"rescue_cuts_deadline_misses\": {}\n  }}",
        deadline * 1e3,
        b.goodput_fraction(),
        b.deadline_exceeded,
        b.lost,
        a.goodput_fraction(),
        a.deadline_exceeded,
        a.lost,
        a.timeouts,
        a.retries,
        a.requeued_on_failure,
        max_power <= budget,
        after > during,
        aware_during > during,
        a.deadline_exceeded < b.deadline_exceeded,
    );
    match rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_faults", &section) {
        Ok(()) => println!("fleet_faults: merged into {CLUSTER_JSON}"),
        Err(e) => eprintln!("fleet_faults: could not write {CLUSTER_JSON}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_faults
}
criterion_main!(benches);
