//! Simulator throughput: how many requests per second the event-driven
//! server simulation processes under the fixed-frequency baseline and under
//! Rubik (whose per-event decisions add controller work).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rubik::{
    AppProfile, FixedFrequencyPolicy, RubikConfig, RubikController, Server, SimConfig,
    WorkloadGenerator,
};

fn bench_simulator(c: &mut Criterion) {
    let config = SimConfig::default();
    let profile = AppProfile::masstree();
    let mut generator = WorkloadGenerator::new(profile.clone(), 5);
    let trace = generator.steady_trace(0.5, 2000);
    let bound = 3.0 * profile.mean_service_time();

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("fixed_frequency_2000_requests", |b| {
        b.iter(|| {
            let mut policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
            Server::new(config.clone()).run(&trace, &mut policy)
        })
    });
    group.bench_function("rubik_2000_requests", |b| {
        b.iter(|| {
            let mut rubik = RubikController::new(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
            );
            rubik.seed_profile(
                trace
                    .requests()
                    .iter()
                    .take(256)
                    .map(|r| (r.compute_cycles, r.membound_time)),
            );
            Server::new(config.clone()).run(&trace, &mut rubik)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
