//! Byte-identical figure output across controller-internals changes.
//!
//! The incremental-rebuild work (version gating, the persistent
//! `TableBuilder`, incremental profiler histograms) is contractually
//! invisible: figure stdout must not change by a single byte. These tests
//! pin that by running the figure binaries at a small, fast grid size and
//! comparing against checked-in golden captures (`tests/golden/*.txt`)
//! taken before the rebuild path was made incremental.
//!
//! If a **deliberate** output-affecting change lands (new columns, model
//! changes), regenerate the fixtures with the exact commands below and
//! explain the diff in the commit:
//!
//! ```text
//! target/release/fig06_power_savings --requests 80 --seed 3 > crates/bench/tests/golden/fig06_power_savings.txt
//! target/release/fig15_coloc_tail    --requests 80 --seed 3 > crates/bench/tests/golden/fig15_coloc_tail.txt
//! target/release/fig09_load_sweep    --requests 60 --seed 5 > crates/bench/tests/golden/fig09_load_sweep.txt
//! target/release/fig_fleet           --requests 60 --seed 7 > crates/bench/tests/golden/fig_fleet.txt
//! ```

use std::process::Command;

fn assert_matches_golden(bin: &str, args: &[&str], fixture: &str) {
    let output = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let golden_path = format!("{}/tests/golden/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden fixture {golden_path}: {e}"));
    assert!(
        output.stdout == golden,
        "{bin} stdout diverged from {fixture}:\n--- golden ---\n{}\n--- actual ---\n{}",
        String::from_utf8_lossy(&golden),
        String::from_utf8_lossy(&output.stdout)
    );
}

#[test]
fn fig06_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig06_power_savings"),
        &["--requests", "80", "--seed", "3"],
        "fig06_power_savings.txt",
    );
}

#[test]
fn fig09_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig09_load_sweep"),
        &["--requests", "60", "--seed", "5"],
        "fig09_load_sweep.txt",
    );
}

#[test]
fn fig15_stdout_is_byte_identical_to_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig15_coloc_tail"),
        &["--requests", "80", "--seed", "3"],
        "fig15_coloc_tail.txt",
    );
}

#[test]
fn fig_fleet_stdout_is_byte_identical_to_golden() {
    // Pins the whole fleet-management stack end to end: budget apportioning
    // and waterfilling (PegasusFleet), queue migration (ThresholdMigrator),
    // heterogeneous FleetSpec fleets, and capacity-aware routing.
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig_fleet"),
        &["--requests", "60", "--seed", "7"],
        "fig_fleet.txt",
    );
}
