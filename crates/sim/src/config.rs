//! Simulation configuration, mirroring the paper's Table 2 where relevant.

use serde::{Deserialize, Serialize};

use crate::freq::DvfsConfig;

/// What the core does while it has no pending requests.
///
/// The paper's simulated CMP supports a Haswell C3-like core sleep state
/// (L1s and L2 flushed to the LLC). The power model in `rubik-power` charges
/// different static power for each mode; the simulator only needs to record
/// which mode the idle time was spent in and the wake-up penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum IdleMode {
    /// Clock-gated idle at the current frequency; wake-up is immediate.
    #[default]
    ClockGated,
    /// Haswell C3-like sleep: private caches flushed, wake-up incurs the
    /// given latency (seconds) before the next request starts service.
    Sleep {
        /// Time to wake the core back up.
        wakeup_latency: f64,
    },
}

/// Configuration of a simulated server core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// DVFS domain of the core.
    pub dvfs: DvfsConfig,
    /// Interval between periodic policy ticks, in seconds. Rubik rebuilds its
    /// target tail tables on this tick (0.1 s in the paper).
    pub tick_interval: f64,
    /// What the core does while idle.
    pub idle_mode: IdleMode,
}

impl SimConfig {
    /// The configuration used by the paper's simulated experiments
    /// (Table 2 + Sec. 4.2): Haswell-like DVFS, 100 ms ticks, clock-gated
    /// idle.
    pub fn paper_simulated() -> Self {
        Self {
            dvfs: DvfsConfig::haswell_like(),
            tick_interval: 0.1,
            idle_mode: IdleMode::ClockGated,
        }
    }

    /// The configuration approximating the paper's real-system evaluation
    /// (Sec. 5.5): 130 µs DVFS transitions.
    pub fn paper_real_system() -> Self {
        Self {
            dvfs: DvfsConfig::real_haswell(),
            tick_interval: 0.1,
            idle_mode: IdleMode::ClockGated,
        }
    }

    /// Returns a copy with the given tick interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval <= 0`.
    pub fn with_tick_interval(mut self, interval: f64) -> Self {
        assert!(interval > 0.0, "tick interval must be positive");
        self.tick_interval = interval;
        self
    }

    /// Returns a copy with the given idle mode.
    pub fn with_idle_mode(mut self, mode: IdleMode) -> Self {
        self.idle_mode = mode;
        self
    }

    /// Returns a copy with the given DVFS configuration.
    pub fn with_dvfs(mut self, dvfs: DvfsConfig) -> Self {
        self.dvfs = dvfs;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_simulated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_simulated() {
        let c = SimConfig::default();
        assert_eq!(c.dvfs.nominal().mhz(), 2400);
        assert!((c.tick_interval - 0.1).abs() < 1e-12);
        assert_eq!(c.idle_mode, IdleMode::ClockGated);
    }

    #[test]
    fn real_system_has_slow_dvfs() {
        let c = SimConfig::paper_real_system();
        assert!((c.dvfs.transition_latency() - 130e-6).abs() < 1e-12);
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_tick_interval(0.05)
            .with_idle_mode(IdleMode::Sleep {
                wakeup_latency: 10e-6,
            });
        assert!((c.tick_interval - 0.05).abs() < 1e-12);
        assert_eq!(
            c.idle_mode,
            IdleMode::Sleep {
                wakeup_latency: 10e-6
            }
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_tick() {
        let _ = SimConfig::default().with_tick_interval(0.0);
    }
}
