//! Cluster-scale serving: global tail latency and fleet power across
//! `routing × load × fleet-size`, with one Rubik controller per server.
//!
//! There is no figure like this in the paper — its evaluation is per-core —
//! but it is the experiment the paper's datacenter claims point at: N
//! servers behind a load balancer, each running Rubik, serving one pooled
//! arrival stream. The grid runs on `rubik-sweep` (one cluster per cell);
//! pass `--threads N` to control the worker pool, `--requests N` for the
//! per-server request count, `--seed N` for the trace seed, and
//! `--trace-out PATH` to write a telemetry trace of the representative
//! cell (JSQ at the largest fleet and highest load).

use rubik::cluster::{fleet_trace, JoinShortestQueue, PowerAware, RoundRobin, Router};
use rubik::{
    AppProfile, Cluster, ClusterOutcome, RubikConfig, RubikController, SimConfig, SweepSpec,
};
use rubik_bench::{print_header, BenchArgs};

const FLEETS: [usize; 3] = [4, 16, 64];
const LOADS: [f64; 3] = [0.2, 0.4, 0.6];

fn router(idx: usize) -> Box<dyn Router> {
    match idx {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(JoinShortestQueue::new()),
        _ => Box::new(PowerAware::default()),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let per_server_requests = args.requests.unwrap_or(150);
    let seed = args.seed.unwrap_or(2015);
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();

    let routers = 3;
    let spec = SweepSpec::new()
        .axis("router", routers)
        .axis("fleet", FLEETS.len())
        .axis("load", LOADS.len());

    let outcomes: Vec<ClusterOutcome> = args
        .executor()
        .run(&spec, |cell| {
            let fleet = FLEETS[cell.get("fleet")];
            let load = LOADS[cell.get("load")];
            // The seed must not depend on the router axis: routers are
            // compared on identical arrival streams (as fig15 does for
            // schemes).
            let trace_seed = seed + (cell.get("fleet") * LOADS.len() + cell.get("load")) as u64;
            let trace = fleet_trace(
                &profile,
                load,
                fleet,
                per_server_requests * fleet,
                trace_seed,
            );
            let cluster = Cluster::new(config.clone(), fleet, router(cell.get("router")), |_| {
                RubikController::seeded_for_trace(
                    RubikConfig::new(bound).with_profiling_window(1024),
                    config.dvfs.clone(),
                    &trace,
                    256,
                )
            });
            cluster.run(&trace)
        })
        .into_results();

    println!(
        "# Cluster serving: {} with Rubik per server, bound {:.2} ms, {} requests/server",
        profile.name(),
        bound * 1e3,
        per_server_requests
    );
    print_header(&[
        "router",
        "fleet",
        "load",
        "tail_norm",
        "fleet_power_w",
        "j_per_req",
        "imbalance",
    ]);
    let router_names: Vec<String> = (0..routers).map(|i| router(i).name().to_string()).collect();
    for cell in spec.cells() {
        let o = &outcomes[cell.index()];
        println!(
            "{}\t{}\t{:.1}\t{:.3}\t{:.2}\t{:.5}\t{:.2}",
            router_names[cell.get("router")],
            FLEETS[cell.get("fleet")],
            LOADS[cell.get("load")],
            o.tail_latency / bound,
            o.fleet_power,
            o.energy_per_request(),
            o.load_imbalance(),
        );
    }

    if args.tracing() {
        // Re-run the representative cell — JSQ at the largest fleet and
        // highest load — with telemetry recording (bit-identical to the
        // grid cell by the neutrality contract) and emit its trace.
        let fleet = *FLEETS.last().expect("non-empty fleets");
        let load = *LOADS.last().expect("non-empty loads");
        let trace_seed = seed + ((FLEETS.len() - 1) * LOADS.len() + (LOADS.len() - 1)) as u64;
        let trace = fleet_trace(
            &profile,
            load,
            fleet,
            per_server_requests * fleet,
            trace_seed,
        );
        let cluster = Cluster::new(config.clone(), fleet, router(1), |_| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                &trace,
                256,
            )
        });
        let (_, _, log) = cluster.run_traced(&trace);
        args.emit_trace(&log);
    }
}
