//! Fleet-level result aggregation.

use rubik_power::CorePowerModel;
use rubik_sim::RunResult;
use rubik_stats::percentile;
use serde::{Deserialize, Serialize};

/// Per-server summary inside a [`ClusterOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerOutcome {
    /// Requests this server completed.
    pub requests: usize,
    /// This server's own tail latency (0 if it served nothing).
    pub tail_latency: f64,
    /// Core energy over the run (J): active + idle + sleep.
    pub energy: f64,
    /// Seconds spent executing requests.
    pub busy_time: f64,
    /// Seconds spent idle (clock-gated).
    pub idle_time: f64,
    /// Seconds spent in deep sleep.
    pub sleep_time: f64,
    /// End of this server's timeline. The cluster driver coasts every
    /// server to the fleet's end before finishing, so within a
    /// [`ClusterOutcome`] this equals the run duration and the server is
    /// charged idle/sleep power through the whole run.
    pub end_time: f64,
}

impl ServerOutcome {
    /// Core utilization: busy time over total residency time.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_time + self.idle_time + self.sleep_time;
        if total <= 0.0 {
            0.0
        } else {
            self.busy_time / total
        }
    }
}

/// The aggregated result of one cluster run: global latency statistics,
/// fleet energy/power, and the per-server residency breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Total requests completed across the fleet.
    pub requests: usize,
    /// Global tail latency over every request in the fleet.
    pub tail_latency: f64,
    /// Global mean latency.
    pub mean_latency: f64,
    /// Total core energy across the fleet (J).
    pub fleet_energy: f64,
    /// Average fleet power (W): fleet energy over the run duration.
    pub fleet_power: f64,
    /// Wall-clock duration of the run (the latest server end time).
    pub duration: f64,
    /// Per-server summaries, in server index order.
    pub per_server: Vec<ServerOutcome>,
}

impl ClusterOutcome {
    /// Aggregates per-server [`RunResult`]s into a fleet outcome. The global
    /// tail is the quantile over the *pooled* latencies of every request —
    /// the number a fleet operator's SLO is written against — not a mean of
    /// per-server tails.
    pub fn aggregate(results: &[RunResult], power: &CorePowerModel, quantile: f64) -> Self {
        let latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.records().iter().map(|rec| rec.latency()))
            .collect();
        let requests = latencies.len();
        let tail_latency = percentile(&latencies, quantile).unwrap_or(0.0);
        let mean_latency = if requests == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / requests as f64
        };
        let duration = results.iter().map(|r| r.end_time()).fold(0.0, f64::max);

        let per_server: Vec<ServerOutcome> = results
            .iter()
            .map(|r| {
                let res = r.freq_residency();
                ServerOutcome {
                    requests: r.records().len(),
                    tail_latency: r.tail_latency(quantile).unwrap_or(0.0),
                    energy: power.energy(&res).total(),
                    busy_time: res.busy_time(),
                    idle_time: res.idle_time(),
                    sleep_time: res.sleep,
                    end_time: r.end_time(),
                }
            })
            .collect();

        let fleet_energy: f64 = per_server.iter().map(|s| s.energy).sum();
        let fleet_power = if duration > 0.0 {
            fleet_energy / duration
        } else {
            0.0
        };

        Self {
            requests,
            tail_latency,
            mean_latency,
            fleet_energy,
            fleet_power,
            duration,
            per_server,
        }
    }

    /// Number of servers in the fleet.
    pub fn servers(&self) -> usize {
        self.per_server.len()
    }

    /// Fleet energy per completed request (J), or 0 for an empty run.
    pub fn energy_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fleet_energy / self.requests as f64
        }
    }

    /// Mean core utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_server.is_empty() {
            return 0.0;
        }
        self.per_server.iter().map(|s| s.utilization()).sum::<f64>() / self.per_server.len() as f64
    }

    /// The spread of load across the fleet: the largest per-server request
    /// count divided by the ideal (uniform) share. 1.0 means perfectly
    /// balanced; round-robin sits near 1, a broken router far above.
    pub fn load_imbalance(&self) -> f64 {
        if self.requests == 0 || self.per_server.is_empty() {
            return 1.0;
        }
        let max = self
            .per_server
            .iter()
            .map(|s| s.requests)
            .max()
            .unwrap_or(0) as f64;
        let ideal = self.requests as f64 / self.per_server.len() as f64;
        if ideal <= 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{CoreActivity, Freq, RequestRecord, Segment};

    fn record(id: u64, arrival: f64, completion: f64) -> RequestRecord {
        RequestRecord {
            id,
            arrival,
            start: arrival,
            completion,
            compute_cycles: 1e6,
            membound_time: 0.0,
            queue_len_at_arrival: 0,
            class: 0,
        }
    }

    fn result(records: Vec<RequestRecord>, busy: f64, idle: f64) -> RunResult {
        let segments = vec![
            Segment {
                start: 0.0,
                end: busy,
                freq: Freq::from_mhz(2400),
                activity: CoreActivity::Busy,
            },
            Segment {
                start: busy,
                end: busy + idle,
                freq: Freq::from_mhz(2400),
                activity: CoreActivity::Idle,
            },
        ];
        let end = busy + idle;
        RunResult::new(records, segments, end)
    }

    #[test]
    fn aggregate_pools_latencies_across_servers() {
        let power = CorePowerModel::haswell_like();
        // Server 0: latencies 1 ms ×10; server 1: 3 ms ×10.
        let a = result((0..10).map(|i| record(i, 0.0, 1e-3)).collect(), 0.5, 0.5);
        let b = result((10..20).map(|i| record(i, 0.0, 3e-3)).collect(), 0.8, 0.2);
        let o = ClusterOutcome::aggregate(&[a, b], &power, 0.95);
        assert_eq!(o.requests, 20);
        assert_eq!(o.servers(), 2);
        // The pooled 95th percentile lands in the slow server's latencies.
        assert!((o.tail_latency - 3e-3).abs() < 1e-9);
        assert!((o.mean_latency - 2e-3).abs() < 1e-9);
        assert!((o.duration - 1.0).abs() < 1e-12);
        assert!(o.fleet_energy > 0.0);
        assert!((o.fleet_power - o.fleet_energy).abs() < 1e-9); // duration = 1 s
        assert!(o.energy_per_request() > 0.0);
        assert!(o.mean_utilization() > 0.5);
    }

    #[test]
    fn empty_fleet_outcome_is_zeroed() {
        let power = CorePowerModel::haswell_like();
        let o = ClusterOutcome::aggregate(&[], &power, 0.95);
        assert_eq!(o.requests, 0);
        assert_eq!(o.tail_latency, 0.0);
        assert_eq!(o.fleet_power, 0.0);
        assert_eq!(o.load_imbalance(), 1.0);
    }

    #[test]
    fn load_imbalance_flags_skew() {
        let power = CorePowerModel::haswell_like();
        let a = result((0..30).map(|i| record(i, 0.0, 1e-3)).collect(), 0.9, 0.1);
        let b = result((30..40).map(|i| record(i, 0.0, 1e-3)).collect(), 0.3, 0.7);
        let o = ClusterOutcome::aggregate(&[a, b], &power, 0.95);
        // 30 of 40 requests on one of two servers: 30 / 20 = 1.5.
        assert!((o.load_imbalance() - 1.5).abs() < 1e-12);
    }
}
