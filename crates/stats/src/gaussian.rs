//! Gaussian (normal) tail approximations.
//!
//! For deep queues Rubik does not convolve explicitly: by Lyapunov's central
//! limit theorem the completion distribution of the i-th queued request
//! converges to a Gaussian with mean `E[S0] + i·E[S]` and variance
//! `var[S0] + i·var[S]` (paper Sec. 4.2, "Large queues"). The controller
//! precomputes the tail of a zero-centered Gaussian and adds the mean.

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses the complementary error function via the Abramowitz & Stegun 7.1.26
/// polynomial approximation (absolute error < 1.5e-7), which is more than
/// enough for picking DVFS frequencies.
pub fn standard_normal_cdf(x: f64) -> f64 {
    // Φ(x) = 0.5 * erfc(-x / sqrt(2))
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    // A&S 7.1.26 on |x|, reflected for negative arguments.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-z * z).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Uses the Acklam rational approximation (relative error < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn gaussian_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Precomputed tail of a zero-centered Gaussian, used by Rubik for deep
/// queues: `tail(i) = mean(i) + z_q · stddev(i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianTail {
    /// z-score of the target quantile (e.g. 1.645 for q = 0.95).
    z: f64,
}

impl GaussianTail {
    /// Creates a tail helper for quantile `q` (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly inside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        Self {
            z: gaussian_quantile(q),
        }
    }

    /// The z-score used.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Tail value of a Gaussian with the given `mean` and `variance`, clamped
    /// below at `mean` (a work distribution's tail is never below its mean
    /// for the high quantiles Rubik uses).
    pub fn tail(&self, mean: f64, variance: f64) -> f64 {
        let std = variance.max(0.0).sqrt();
        (mean + self.z * std).max(mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_zero_is_half() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn cdf_known_values() {
        assert!((standard_normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((standard_normal_cdf(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((standard_normal_cdf(1.6448536) - 0.95).abs() < 1e-5);
        assert!((standard_normal_cdf(2.3263479) - 0.99).abs() < 1e-5);
    }

    #[test]
    fn quantile_known_values() {
        assert!((gaussian_quantile(0.5)).abs() < 1e-8);
        assert!((gaussian_quantile(0.95) - 1.6448536).abs() < 1e-6);
        assert!((gaussian_quantile(0.99) - 2.3263479).abs() < 1e-6);
        assert!((gaussian_quantile(0.025) + 1.9599640).abs() < 1e-6);
    }

    #[test]
    fn quantile_and_cdf_are_inverses() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = gaussian_quantile(p);
            assert!((standard_normal_cdf(x) - p).abs() < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn tail_is_at_least_mean() {
        let g = GaussianTail::new(0.95);
        assert!(g.tail(10.0, 4.0) >= 10.0);
        assert!(g.tail(10.0, 0.0) >= 10.0);
        // 95th percentile of N(10, 4): 10 + 1.645*2 ≈ 13.29
        assert!((g.tail(10.0, 4.0) - 13.2897).abs() < 1e-3);
    }

    #[test]
    fn higher_quantile_gives_larger_tail() {
        let lo = GaussianTail::new(0.9);
        let hi = GaussianTail::new(0.99);
        assert!(hi.tail(5.0, 1.0) > lo.tail(5.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn quantile_rejects_out_of_range() {
        let _ = gaussian_quantile(1.0);
    }
}
