//! Cross-crate integration tests: every controller runs end-to-end through
//! the workload generator, the event simulator, and the power model, and the
//! qualitative ordering of the paper's headline comparison (Fig. 6 / Fig. 9)
//! holds: Rubik meets the bound and saves energy over the fixed-frequency
//! baseline and over StaticOracle.

use rubik::core::replay_energy;
use rubik::{
    AppProfile, CorePowerModel, DynamicOracle, FixedFrequencyPolicy, Freq, RubikConfig,
    RubikController, Server, SimConfig, StaticOracle, Trace, WorkloadGenerator,
};

struct SchemeOutcome {
    tail: f64,
    energy_per_request: f64,
}

fn run_fixed(
    trace: &Trace,
    config: &SimConfig,
    freq: Freq,
    power: &CorePowerModel,
) -> SchemeOutcome {
    let mut policy = FixedFrequencyPolicy::new(freq);
    let result = Server::new(config.clone()).run(trace, &mut policy);
    SchemeOutcome {
        tail: result.tail_latency(0.95).unwrap(),
        energy_per_request: power.energy_per_request(&result.freq_residency(), trace.len()),
    }
}

fn run_rubik(
    trace: &Trace,
    config: &SimConfig,
    bound: f64,
    power: &CorePowerModel,
) -> SchemeOutcome {
    let mut rubik = RubikController::new(
        RubikConfig::new(bound).with_profiling_window(2048),
        config.dvfs.clone(),
    );
    rubik.seed_profile(
        trace
            .requests()
            .iter()
            .take(512)
            .map(|r| (r.compute_cycles, r.membound_time)),
    );
    let result = Server::new(config.clone()).run(trace, &mut rubik);
    SchemeOutcome {
        tail: result.tail_latency(0.95).unwrap(),
        energy_per_request: power.energy_per_request(&result.freq_residency(), trace.len()),
    }
}

#[test]
fn rubik_meets_bound_and_beats_fixed_frequency_on_every_app() {
    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();
    for (i, profile) in AppProfile::all().into_iter().enumerate() {
        let mut generator = WorkloadGenerator::new(profile.clone(), 100 + i as u64);
        let trace = generator.steady_trace(0.4, 2500);

        let fixed = run_fixed(&trace, &config, config.dvfs.nominal(), &power);
        // The bound is the fixed-frequency tail at 50% load; at 40% load the
        // fixed tail is lower, so use the 50%-load calibration.
        let mut calib = WorkloadGenerator::new(profile.clone(), 500 + i as u64);
        let calib_trace = calib.steady_trace(0.5, 2500);
        let bound = run_fixed(&calib_trace, &config, config.dvfs.nominal(), &power).tail;

        let rubik = run_rubik(&trace, &config, bound, &power);
        assert!(
            rubik.tail <= bound * 1.15,
            "{}: Rubik tail {} vs bound {}",
            profile.name(),
            rubik.tail,
            bound
        );
        assert!(
            rubik.energy_per_request < fixed.energy_per_request,
            "{}: Rubik should save energy over fixed frequency ({} vs {})",
            profile.name(),
            rubik.energy_per_request,
            fixed.energy_per_request
        );
    }
}

#[test]
fn rubik_saves_energy_over_static_oracle_at_moderate_load() {
    // The paper's headline comparison (Fig. 1a / Fig. 6): at loads below 50%
    // Rubik's sub-millisecond adaptation beats the best static frequency.
    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();
    let profile = AppProfile::masstree();

    let mut generator = WorkloadGenerator::new(profile.clone(), 9);
    let trace = generator.steady_trace(0.3, 4000);
    let mut calib = WorkloadGenerator::new(profile.clone(), 10);
    let bound = run_fixed(
        &calib.steady_trace(0.5, 4000),
        &config,
        config.dvfs.nominal(),
        &power,
    )
    .tail;

    let oracle = StaticOracle::new(config.dvfs.clone(), 0.95);
    let static_freq = oracle.lowest_feasible_freq(&trace, bound);
    let static_outcome = run_fixed(&trace, &config, static_freq, &power);
    let rubik = run_rubik(&trace, &config, bound, &power);

    assert!(static_outcome.tail <= bound * 1.001);
    assert!(rubik.tail <= bound * 1.15);
    assert!(
        rubik.energy_per_request < static_outcome.energy_per_request,
        "Rubik {} mJ/req vs StaticOracle {} mJ/req",
        rubik.energy_per_request * 1e3,
        static_outcome.energy_per_request * 1e3
    );
}

#[test]
fn oracle_hierarchy_holds_on_a_replayed_trace() {
    // DynamicOracle (per-request freedom) <= StaticOracle (single frequency)
    // <= fixed nominal, in active energy, all meeting the same bound.
    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();
    let active = |f: Freq| power.active_power(f);
    let profile = AppProfile::shore();

    let mut generator = WorkloadGenerator::new(profile, 11);
    let trace = generator.steady_trace(0.45, 1200);
    let oracle = StaticOracle::new(config.dvfs.clone(), 0.95);
    let bound = oracle.tail_at(&trace, config.dvfs.nominal()).unwrap();

    let nominal_energy = replay_energy(&trace, &vec![config.dvfs.nominal(); trace.len()], active);
    let static_freq = oracle.lowest_feasible_freq(&trace, bound);
    let static_energy = replay_energy(&trace, &vec![static_freq; trace.len()], active);
    let dynamic = DynamicOracle::new(config.dvfs.clone(), 0.95).schedule(&trace, bound, active);

    assert!(static_energy <= nominal_energy * 1.0001);
    assert!(dynamic.energy <= static_energy * 1.0001);
    assert!(dynamic.tail_latency <= bound * 1.0001);
}

#[test]
fn rubik_without_feedback_is_more_conservative_than_with_feedback() {
    let config = SimConfig::default();
    let profile = AppProfile::masstree();
    let mut generator = WorkloadGenerator::new(profile.clone(), 13);
    let trace = generator.steady_trace(0.35, 4000);
    let bound = 3.0 * profile.mean_service_time();

    let run = |feedback: bool| {
        let mut cfg = RubikConfig::new(bound).with_profiling_window(2048);
        if !feedback {
            cfg = cfg.without_feedback();
        }
        let mut rubik = RubikController::new(cfg, config.dvfs.clone());
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(512)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );
        let result = Server::new(config.clone()).run(&trace, &mut rubik);
        result.tail_latency(0.95).unwrap()
    };

    let without = run(false);
    let with = run(true);
    // Feedback relaxes the conservative analytical model, so the measured
    // tail with feedback should be at least as close to the bound.
    assert!(without <= bound * 1.05);
    assert!(with + 1e-9 >= without);
    assert!(with <= bound * 1.15);
}
