//! Integration tests for the trace-driven methodology (Sec. 5.3): traces can
//! be captured, persisted, reloaded, and replayed, and the replay model
//! agrees with the event-driven simulator.

use rubik::core::{replay, replay_tail};
use rubik::workloads::trace_io;
use rubik::{AppProfile, FixedFrequencyPolicy, Server, SimConfig, WorkloadGenerator};

#[test]
fn captured_trace_replays_identically_after_a_round_trip_through_json() {
    let profile = AppProfile::specjbb();
    let mut generator = WorkloadGenerator::new(profile, 31);
    let trace = generator.steady_trace(0.4, 1500);

    let json = trace_io::to_json(&trace);
    let reloaded = trace_io::from_json(&json).expect("round trip");

    let config = SimConfig::default();
    let freqs = vec![config.dvfs.nominal(); trace.len()];
    let original_tail = replay_tail(&replay(&trace, &freqs), 0.95).unwrap();
    let reloaded_tail = replay_tail(&replay(&reloaded, &freqs), 0.95).unwrap();
    assert!((original_tail - reloaded_tail).abs() < 1e-9);
}

#[test]
fn replay_and_event_simulation_agree_for_a_fixed_frequency() {
    let profile = AppProfile::xapian();
    let config = SimConfig::default();
    let mut generator = WorkloadGenerator::new(profile, 37);
    let trace = generator.steady_trace(0.55, 2000);

    let freq = config.dvfs.nominal();
    let replayed_tail = replay_tail(&replay(&trace, &vec![freq; trace.len()]), 0.95).unwrap();

    let mut policy = FixedFrequencyPolicy::new(freq);
    let simulated = Server::new(config).run(&trace, &mut policy);
    let simulated_tail = simulated.tail_latency(0.95).unwrap();

    assert!(
        (replayed_tail - simulated_tail).abs() < 1e-9,
        "replay {replayed_tail} vs simulation {simulated_tail}"
    );
    assert_eq!(simulated.records().len(), trace.len());
}

#[test]
fn same_seed_reproduces_an_identical_experiment_end_to_end() {
    let run = || {
        let profile = AppProfile::shore();
        let config = SimConfig::default();
        let mut generator = WorkloadGenerator::new(profile, 41);
        let trace = generator.steady_trace(0.5, 1200);
        let mut policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
        Server::new(config)
            .run(&trace, &mut policy)
            .tail_latency(0.95)
            .unwrap()
    };
    assert_eq!(run(), run());
}
