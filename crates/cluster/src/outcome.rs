//! Fleet-level result aggregation.

use rubik_power::CorePowerModel;
use rubik_sim::RunResult;
use rubik_stats::percentile;
use serde::{Deserialize, Serialize};

/// Per-server summary inside a [`ClusterOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerOutcome {
    /// Core-class index of the server (see
    /// [`FleetSpec`](crate::FleetSpec); 0 for homogeneous fleets).
    pub class: u32,
    /// Requests this server completed.
    pub requests: usize,
    /// This server's own tail latency (0 if it served nothing).
    pub tail_latency: f64,
    /// Core energy over the run (J): active + idle + sleep.
    pub energy: f64,
    /// Seconds spent executing requests.
    pub busy_time: f64,
    /// Seconds spent idle (clock-gated).
    pub idle_time: f64,
    /// Seconds spent in deep sleep.
    pub sleep_time: f64,
    /// End of this server's timeline. The cluster driver coasts every
    /// server to the fleet's end before finishing, so within a
    /// [`ClusterOutcome`] this equals the run duration and the server is
    /// charged idle/sleep power through the whole run.
    pub end_time: f64,
    /// Seconds this server spent down (crashed) during the run — a subset
    /// of `sleep_time`, since downtime is charged at sleep power. Always
    /// 0.0 without a [`FaultPlan`](crate::FaultPlan).
    pub downtime: f64,
}

impl ServerOutcome {
    /// Core utilization: busy time over total residency time.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_time + self.idle_time + self.sleep_time;
        if total <= 0.0 {
            0.0
        } else {
            self.busy_time / total
        }
    }
}

/// Availability metrics of a cluster run: what a fleet operator asks first
/// when servers die, lag, or get stuck.
///
/// Without a [`FaultPlan`](crate::FaultPlan) or
/// [`RequestPolicy`](crate::RequestPolicy) these degenerate to "everything
/// offered was served in time": `offered == completed == goodput`,
/// everything else zero, and `tail_latency_ok` equals the plain tail (the
/// empty-plan bit-neutrality contract).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Requests offered to the cluster (the input trace length).
    pub offered: usize,
    /// Requests that completed somewhere, on time or not.
    pub completed: usize,
    /// Requests that completed *within their deadline* — the number the
    /// operator actually gets paid for. With no deadline configured every
    /// completion is goodput.
    pub goodput: usize,
    /// Requests that never completed: lost in a crash with no retry left,
    /// or still stranded when the run ended.
    pub lost: usize,
    /// Requests that missed their deadline: late completions plus losses.
    pub deadline_exceeded: usize,
    /// Timeout expirations detected by the request-lifecycle layer (one
    /// request can time out once per attempt).
    pub timeouts: usize,
    /// Retry attempts dispatched (after backoff) by the lifecycle layer.
    pub retries: usize,
    /// Queued requests pulled off a crashing server and re-routed by the
    /// failure drain.
    pub requeued_on_failure: usize,
    /// In-service requests salvaged (re-dispatched) from a crashing server
    /// under [`RequestPolicy::salvage_in_flight`](crate::RequestPolicy).
    pub salvaged_in_flight: usize,
    /// Speculative duplicates launched by
    /// [`RequestPolicy::with_hedging`](crate::RequestPolicy::with_hedging).
    pub hedged: usize,
    /// Hedged pairs whose *duplicate* completed first — the completions
    /// hedging actually bought.
    pub hedge_wins: usize,
    /// Losing copies of hedged pairs cancelled after the other copy
    /// completed (one per resolved pair, whichever side won).
    pub hedge_cancelled: usize,
    /// Tail latency over *successful* (within-deadline) completions only —
    /// the p95-of-successes a recovery curve is judged by. `None` when no
    /// request succeeded (an all-lost or all-late run has no success tail
    /// to report; 0.0 would masquerade as a perfect one).
    pub tail_latency_ok: Option<f64>,
}

impl AvailabilityStats {
    /// Fraction of offered requests that became goodput (1.0 for an empty
    /// run — nothing offered, nothing failed).
    pub fn goodput_fraction(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.goodput as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests that missed their deadline or were
    /// lost (0.0 for an empty run).
    pub fn error_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.deadline_exceeded as f64 / self.offered as f64
        }
    }
}

/// Aggregated totals for one core class of a heterogeneous fleet (see
/// [`ClusterOutcome::class_totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassTotals {
    /// Core-class index.
    pub class: u32,
    /// Number of servers of this class.
    pub servers: usize,
    /// Requests completed by this class.
    pub requests: usize,
    /// Core energy (J) consumed by this class.
    pub energy: f64,
    /// Seconds spent executing requests, summed across the class.
    pub busy_time: f64,
    /// Seconds spent idle, summed across the class.
    pub idle_time: f64,
    /// Seconds spent in deep sleep, summed across the class.
    pub sleep_time: f64,
}

/// The aggregated result of one cluster run: global latency statistics,
/// fleet energy/power, and the per-server residency breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Total requests completed across the fleet.
    pub requests: usize,
    /// Global tail latency over every request in the fleet.
    pub tail_latency: f64,
    /// Global mean latency.
    pub mean_latency: f64,
    /// Total core energy across the fleet (J).
    pub fleet_energy: f64,
    /// Average fleet power (W): fleet energy over the run duration.
    pub fleet_power: f64,
    /// Wall-clock duration of the run (the latest server end time).
    pub duration: f64,
    /// Requests moved between servers by the cluster's
    /// [`Migrator`](crate::Migrator) (0 when no migrator is attached).
    pub migrated_requests: usize,
    /// Availability metrics (goodput, errors, retries, downtime-adjacent
    /// counters). Degenerate "all served" values without a fault plan or
    /// request policy.
    pub availability: AvailabilityStats,
    /// Per-server summaries, in server index order.
    pub per_server: Vec<ServerOutcome>,
}

impl ClusterOutcome {
    /// Aggregates per-server [`RunResult`]s into a fleet outcome. The global
    /// tail is the quantile over the *pooled* latencies of every request —
    /// the number a fleet operator's SLO is written against — not a mean of
    /// per-server tails.
    pub fn aggregate(results: &[RunResult], power: &CorePowerModel, quantile: f64) -> Self {
        Self::aggregate_classed(results, None, power, quantile)
    }

    /// Like [`ClusterOutcome::aggregate`], labelling each server with its
    /// core-class index (`None` = homogeneous, every server class 0).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is given with a length other than
    /// `results.len()`.
    pub fn aggregate_classed(
        results: &[RunResult],
        classes: Option<&[u32]>,
        power: &CorePowerModel,
        quantile: f64,
    ) -> Self {
        if let Some(classes) = classes {
            assert_eq!(
                classes.len(),
                results.len(),
                "one class label per server result"
            );
        }
        let latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.records().iter().map(|rec| rec.latency()))
            .collect();
        let requests = latencies.len();
        let tail_latency = percentile(&latencies, quantile).unwrap_or(0.0);
        let mean_latency = if requests == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / requests as f64
        };
        let duration = results.iter().map(|r| r.end_time()).fold(0.0, f64::max);

        let per_server: Vec<ServerOutcome> = results
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let res = r.freq_residency();
                ServerOutcome {
                    class: classes.map_or(0, |c| c[i]),
                    requests: r.records().len(),
                    tail_latency: r.tail_latency(quantile).unwrap_or(0.0),
                    energy: power.energy(&res).total(),
                    busy_time: res.busy_time(),
                    idle_time: res.idle_time(),
                    sleep_time: res.sleep,
                    end_time: r.end_time(),
                    downtime: 0.0,
                }
            })
            .collect();

        let fleet_energy: f64 = per_server.iter().map(|s| s.energy).sum();
        let fleet_power = if duration > 0.0 {
            fleet_energy / duration
        } else {
            0.0
        };

        Self {
            requests,
            tail_latency,
            mean_latency,
            fleet_energy,
            fleet_power,
            duration,
            migrated_requests: 0,
            // Neutral fill: everything offered was served in time. The
            // driver overwrites this when a fault layer is active.
            availability: AvailabilityStats {
                offered: requests,
                completed: requests,
                goodput: requests,
                tail_latency_ok: if requests == 0 {
                    None
                } else {
                    Some(tail_latency)
                },
                ..AvailabilityStats::default()
            },
            per_server,
        }
    }

    /// Number of servers in the fleet.
    pub fn servers(&self) -> usize {
        self.per_server.len()
    }

    /// Fleet energy per completed request (J), or 0 for an empty run.
    pub fn energy_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fleet_energy / self.requests as f64
        }
    }

    /// Mean core utilization across the fleet.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_server.is_empty() {
            return 0.0;
        }
        self.per_server.iter().map(|s| s.utilization()).sum::<f64>() / self.per_server.len() as f64
    }

    /// The spread of load across the fleet: the largest per-server request
    /// count divided by the ideal (uniform) share. 1.0 means perfectly
    /// balanced; round-robin sits near 1, a broken router far above. An
    /// all-idle fleet (no requests, so no spread to measure — the division
    /// by the mean share would otherwise be 0/0) reports 0.0.
    pub fn load_imbalance(&self) -> f64 {
        if self.requests == 0 || self.per_server.is_empty() {
            return 0.0;
        }
        let max = self
            .per_server
            .iter()
            .map(|s| s.requests)
            .max()
            .unwrap_or(0) as f64;
        let ideal = self.requests as f64 / self.per_server.len() as f64;
        max / ideal
    }

    /// Aggregated totals per core class (sorted by class index): completed
    /// requests, energy, and busy/idle/sleep residency. Heterogeneous-fleet
    /// experiments report these per big/little class.
    pub fn class_totals(&self) -> Vec<ClassTotals> {
        let mut totals: Vec<ClassTotals> = Vec::new();
        for s in &self.per_server {
            let slot = match totals.iter_mut().find(|t| t.class == s.class) {
                Some(slot) => slot,
                None => {
                    totals.push(ClassTotals {
                        class: s.class,
                        ..ClassTotals::default()
                    });
                    totals.last_mut().expect("just pushed")
                }
            };
            slot.servers += 1;
            slot.requests += s.requests;
            slot.energy += s.energy;
            slot.busy_time += s.busy_time;
            slot.idle_time += s.idle_time;
            slot.sleep_time += s.sleep_time;
        }
        totals.sort_by_key(|t| t.class);
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{CoreActivity, Freq, RequestRecord, Segment};

    fn record(id: u64, arrival: f64, completion: f64) -> RequestRecord {
        RequestRecord {
            id,
            arrival,
            start: arrival,
            completion,
            compute_cycles: 1e6,
            membound_time: 0.0,
            queue_len_at_arrival: 0,
            class: 0,
        }
    }

    fn result(records: Vec<RequestRecord>, busy: f64, idle: f64) -> RunResult {
        let segments = vec![
            Segment {
                start: 0.0,
                end: busy,
                freq: Freq::from_mhz(2400),
                activity: CoreActivity::Busy,
            },
            Segment {
                start: busy,
                end: busy + idle,
                freq: Freq::from_mhz(2400),
                activity: CoreActivity::Idle,
            },
        ];
        let end = busy + idle;
        RunResult::new(records, segments, end)
    }

    #[test]
    fn aggregate_pools_latencies_across_servers() {
        let power = CorePowerModel::haswell_like();
        // Server 0: latencies 1 ms ×10; server 1: 3 ms ×10.
        let a = result((0..10).map(|i| record(i, 0.0, 1e-3)).collect(), 0.5, 0.5);
        let b = result((10..20).map(|i| record(i, 0.0, 3e-3)).collect(), 0.8, 0.2);
        let o = ClusterOutcome::aggregate(&[a, b], &power, 0.95);
        assert_eq!(o.requests, 20);
        assert_eq!(o.servers(), 2);
        // The pooled 95th percentile lands in the slow server's latencies.
        assert!((o.tail_latency - 3e-3).abs() < 1e-9);
        assert!((o.mean_latency - 2e-3).abs() < 1e-9);
        assert!((o.duration - 1.0).abs() < 1e-12);
        assert!(o.fleet_energy > 0.0);
        assert!((o.fleet_power - o.fleet_energy).abs() < 1e-9); // duration = 1 s
        assert!(o.energy_per_request() > 0.0);
        assert!(o.mean_utilization() > 0.5);
    }

    #[test]
    fn empty_fleet_outcome_is_zeroed() {
        let power = CorePowerModel::haswell_like();
        let o = ClusterOutcome::aggregate(&[], &power, 0.95);
        assert_eq!(o.requests, 0);
        assert_eq!(o.tail_latency, 0.0);
        assert_eq!(o.fleet_power, 0.0);
        assert_eq!(o.migrated_requests, 0);
        assert_eq!(o.load_imbalance(), 0.0);
    }

    #[test]
    fn all_idle_fleet_load_imbalance_is_zero_not_nan() {
        // Regression: an empty trace through a real fleet used to hit the
        // division by the (zero) mean share. The guard must return 0.0 — a
        // finite, "no spread" answer — never NaN.
        let power = CorePowerModel::haswell_like();
        // Three servers that each served nothing but idled for a second.
        let idle = |_: usize| result(vec![], 0.0, 1.0);
        let results: Vec<RunResult> = (0..3).map(idle).collect();
        let o = ClusterOutcome::aggregate(&results, &power, 0.95);
        assert_eq!(o.requests, 0);
        let imbalance = o.load_imbalance();
        assert!(!imbalance.is_nan(), "all-idle imbalance must not be NaN");
        assert_eq!(imbalance, 0.0);
    }

    #[test]
    fn class_totals_aggregate_per_core_class() {
        let power = CorePowerModel::haswell_like();
        let a = result((0..30).map(|i| record(i, 0.0, 1e-3)).collect(), 0.9, 0.1);
        let b = result((30..40).map(|i| record(i, 0.0, 1e-3)).collect(), 0.3, 0.7);
        let c = result((40..45).map(|i| record(i, 0.0, 1e-3)).collect(), 0.2, 0.8);
        let o = ClusterOutcome::aggregate_classed(&[a, b, c], Some(&[0, 1, 1]), &power, 0.95);
        assert_eq!(o.per_server[0].class, 0);
        assert_eq!(o.per_server[2].class, 1);
        let totals = o.class_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].class, 0);
        assert_eq!(totals[0].servers, 1);
        assert_eq!(totals[0].requests, 30);
        assert_eq!(totals[1].class, 1);
        assert_eq!(totals[1].servers, 2);
        assert_eq!(totals[1].requests, 15);
        assert!((totals[1].busy_time - 0.5).abs() < 1e-12);
        assert!((totals[1].idle_time - 1.5).abs() < 1e-12);
        let energy: f64 = totals.iter().map(|t| t.energy).sum();
        assert!((energy - o.fleet_energy).abs() < 1e-9);
    }

    #[test]
    fn neutral_availability_fill_matches_the_plain_outcome() {
        let power = CorePowerModel::haswell_like();
        let a = result((0..10).map(|i| record(i, 0.0, 1e-3)).collect(), 0.5, 0.5);
        let o = ClusterOutcome::aggregate(&[a], &power, 0.95);
        let av = o.availability;
        assert_eq!(av.offered, 10);
        assert_eq!(av.completed, 10);
        assert_eq!(av.goodput, 10);
        assert_eq!(av.lost, 0);
        assert_eq!(av.deadline_exceeded, 0);
        assert_eq!(av.timeouts + av.retries + av.requeued_on_failure, 0);
        let tail_ok = av.tail_latency_ok.expect("successful completions exist");
        assert_eq!(tail_ok.to_bits(), o.tail_latency.to_bits());
        assert_eq!(av.goodput_fraction(), 1.0);
        assert_eq!(av.error_fraction(), 0.0);
        assert_eq!(o.per_server[0].downtime, 0.0);
    }

    #[test]
    fn availability_fractions_handle_empty_runs() {
        let av = AvailabilityStats::default();
        assert_eq!(av.goodput_fraction(), 1.0);
        assert_eq!(av.error_fraction(), 0.0);
        assert_eq!(av.tail_latency_ok, None);
        let av = AvailabilityStats {
            offered: 10,
            completed: 8,
            goodput: 6,
            lost: 2,
            deadline_exceeded: 4,
            ..AvailabilityStats::default()
        };
        assert!((av.goodput_fraction() - 0.6).abs() < 1e-12);
        assert!((av.error_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_flags_skew() {
        let power = CorePowerModel::haswell_like();
        let a = result((0..30).map(|i| record(i, 0.0, 1e-3)).collect(), 0.9, 0.1);
        let b = result((30..40).map(|i| record(i, 0.0, 1e-3)).collect(), 0.3, 0.7);
        let o = ClusterOutcome::aggregate(&[a, b], &power, 0.95);
        // 30 of 40 requests on one of two servers: 30 / 20 = 1.5.
        assert!((o.load_imbalance() - 1.5).abs() < 1e-12);
    }
}
