//! Request routing: the load-balancer policies of a simulated fleet.
//!
//! A [`Router`] picks the destination server for each arriving request. It
//! sees one [`ServerView`] per server — a cheap summary of the server's
//! current state (occupancy and DVFS operating point) refreshed by the
//! [`Cluster`](crate::Cluster) driver immediately before each routing
//! decision. Routers may keep internal state (e.g. the round-robin cursor)
//! but must be deterministic: the same request/view sequence must produce
//! the same choices, or cluster runs stop being reproducible.

use rubik_power::CorePowerModel;
use rubik_sim::{Freq, RequestSpec};

/// Health of a server as tracked by the fault layer (see
/// [`crate::FaultPlan`]). Without a fault plan every server is
/// permanently [`Up`](ServerHealth::Up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerHealth {
    /// Serving normally.
    #[default]
    Up,
    /// Alive but degraded (straggling): it still completes work, slowly.
    Straggling,
    /// Crashed: serves nothing until a `Recover` event.
    Down,
}

impl ServerHealth {
    /// Whether a health-aware router should send *new* work here. Only
    /// fully healthy servers are routable; stragglers keep serving what
    /// they already hold but stop receiving more.
    pub fn routable(self) -> bool {
        matches!(self, ServerHealth::Up)
    }
}

/// A per-server summary handed to [`Router::route`] (and to the fleet
/// controller and migrator hooks).
///
/// `in_flight` counts every request committed to the server — queued, in
/// service, and offered-but-not-yet-admitted — which is what a load balancer
/// observes: a request routed a microsecond ago occupies a slot even if the
/// server has not processed its arrival event yet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerView {
    /// Index of the server in the cluster.
    pub index: usize,
    /// Requests committed to the server (offered + queued + in service).
    pub in_flight: usize,
    /// Requests admitted into the server (queued + in service).
    pub admitted: usize,
    /// Requests waiting in the FIFO queue (admitted minus in service) — the
    /// depth a [`Migrator`](crate::Migrator) can steal from.
    pub queued: usize,
    /// Frequency currently in effect on the server's core.
    pub current_freq: Freq,
    /// Frequency the server's policy most recently requested.
    pub target_freq: Freq,
    /// Whether the core is serving or has queued work.
    pub busy: bool,
    /// Capacity weight of the server's core class (1.0 for every server of a
    /// homogeneous fleet; see [`FleetSpec`](crate::FleetSpec)). Zero means
    /// "route nothing here".
    pub capacity: f64,
    /// Core-class index of the server within its
    /// [`FleetSpec`](crate::FleetSpec) (0 for homogeneous fleets).
    pub class: u32,
    /// Health as tracked by the fault layer ([`ServerHealth::Up`] when no
    /// fault plan is attached). Plain routers ignore it; wrap them in
    /// [`HealthAware`] to eject unhealthy servers from the candidate set.
    pub health: ServerHealth,
}

impl ServerView {
    /// Occupancy normalized by the server's capacity weight: the load metric
    /// capacity-aware policies compare. Zero-capacity servers report
    /// infinite load, so they lose every comparison against a server that
    /// can actually serve.
    pub fn effective_load(&self) -> f64 {
        if self.capacity > 0.0 {
            self.in_flight as f64 / self.capacity
        } else {
            f64::INFINITY
        }
    }
}

/// A load-balancing policy for a [`Cluster`](crate::Cluster).
pub trait Router {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Chooses the destination server (an index into `servers`) for
    /// `request`. `servers` holds one view per server, in index order, and
    /// is never empty.
    fn route(&mut self, request: &RequestSpec, servers: &[ServerView]) -> usize;
}

/// Sends every request to server 0 — the identity router.
///
/// With a single server this makes a cluster an exact proxy for the
/// standalone simulator: the equivalence suite pins that a 1-server cluster
/// behind `Passthrough` reproduces [`rubik_sim::Server::run`] bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Passthrough;

impl Router for Passthrough {
    fn name(&self) -> &str {
        "passthrough"
    }

    fn route(&mut self, _request: &RequestSpec, _servers: &[ServerView]) -> usize {
        0
    }
}

/// Cycles through the servers in index order, ignoring their state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin router starting at server 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Router for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn route(&mut self, _request: &RequestSpec, servers: &[ServerView]) -> usize {
        let choice = self.next % servers.len();
        self.next = (self.next + 1) % servers.len();
        choice
    }
}

/// Joins the server with the fewest in-flight requests (ties broken by the
/// lowest index) — the classic JSQ policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// A JSQ router.
    pub fn new() -> Self {
        Self
    }
}

impl Router for JoinShortestQueue {
    fn name(&self) -> &str {
        "join-shortest-queue"
    }

    fn route(&mut self, _request: &RequestSpec, servers: &[ServerView]) -> usize {
        // `servers` is non-empty (Cluster construction validates the fleet);
        // fall back to 0 rather than panicking if a caller hands us less.
        servers
            .iter()
            .min_by_key(|v| (v.in_flight, v.index))
            .map_or(0, |v| v.index)
    }
}

/// Capacity- and queue-aware routing with a power tie-break: among the
/// servers with the lowest capacity-normalized occupancy
/// ([`ServerView::effective_load`]), picks the one whose core currently
/// burns the least active power.
///
/// Per-server DVFS controllers (Rubik) leave each core at a different
/// operating point — a lightly loaded server that just finished a burst may
/// still sit at a high frequency while an equally idle neighbour coasts at
/// the minimum level. JSQ is blind to that difference; `PowerAware` routes
/// the marginal request to the cheaper core, nudging the fleet toward its
/// low-power operating points without sacrificing queue balance.
///
/// In a heterogeneous [`FleetSpec`](crate::FleetSpec) fleet the capacity
/// weighting makes the router send proportionally more work to "big" cores
/// (a big server at 2 in flight with capacity 2.0 looks as loaded as a
/// little server at 1 with capacity 1.0), and a zero-capacity class is
/// never routed to while any positive-capacity server exists. For a
/// homogeneous fleet every capacity is 1.0 and the policy degenerates to
/// exactly the JSQ-plus-power-tie-break it was before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAware {
    power: CorePowerModel,
}

impl PowerAware {
    /// A power-aware router scoring servers with the given core power model.
    pub fn new(power: CorePowerModel) -> Self {
        Self { power }
    }
}

impl Default for PowerAware {
    fn default() -> Self {
        Self::new(CorePowerModel::haswell_like())
    }
}

impl Router for PowerAware {
    fn name(&self) -> &str {
        "power-aware"
    }

    fn route(&mut self, _request: &RequestSpec, servers: &[ServerView]) -> usize {
        servers
            .iter()
            .min_by(|a, b| {
                (a.effective_load().total_cmp(&b.effective_load()))
                    .then_with(|| {
                        self.power
                            .active_power(a.current_freq)
                            .total_cmp(&self.power.active_power(b.current_freq))
                    })
                    .then_with(|| a.index.cmp(&b.index))
            })
            .map_or(0, |v| v.index)
    }
}

/// Wraps any [`Router`] with health-based candidate filtering: down and
/// straggling servers are ejected from the view slice the inner router
/// sees, and readmitted the moment the fault layer marks them
/// [`Up`](ServerHealth::Up) again.
///
/// If **no** server is routable (the whole fleet is down or straggling),
/// the wrapper degrades to the inner router over the full set — routing
/// somewhere beats dropping the request on the floor, and timeouts/retries
/// will rescue it if the destination never recovers.
///
/// The inner router sees re-indexed views (`index` runs over the healthy
/// subset) so index-arithmetic policies like [`RoundRobin`] cycle over the
/// healthy servers only; the wrapper maps the choice back to the true
/// server index. On an all-healthy fleet the filtered slice equals the
/// full slice, and the wrapper is behaviourally identical to the inner
/// router (pinned in `tests/fault_properties.rs`).
#[derive(Debug)]
pub struct HealthAware<R> {
    inner: R,
    name: String,
    /// Re-indexed healthy views handed to the inner router.
    scratch: Vec<ServerView>,
    /// Maps positions in `scratch` back to true server indices.
    map: Vec<usize>,
}

impl<R: Router> HealthAware<R> {
    /// Wraps `inner` with health filtering.
    pub fn new(inner: R) -> Self {
        let name = format!("health-aware({})", inner.name());
        Self {
            inner,
            name,
            scratch: Vec::new(),
            map: Vec::new(),
        }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: Router> Router for HealthAware<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(&mut self, request: &RequestSpec, servers: &[ServerView]) -> usize {
        self.scratch.clear();
        self.map.clear();
        for view in servers {
            if view.health.routable() {
                let mut v = *view;
                v.index = self.scratch.len();
                self.scratch.push(v);
                self.map.push(view.index);
            }
        }
        if self.scratch.is_empty() {
            // Nothing healthy: degrade to failure-blind routing.
            return self.inner.route(request, servers);
        }
        let choice = self.inner.route(request, &self.scratch);
        self.map[choice.min(self.map.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(index: usize, in_flight: usize, mhz: u32) -> ServerView {
        view_with_capacity(index, in_flight, mhz, 1.0)
    }

    fn view_with_capacity(index: usize, in_flight: usize, mhz: u32, capacity: f64) -> ServerView {
        ServerView {
            index,
            in_flight,
            admitted: in_flight,
            queued: in_flight.saturating_sub(1),
            current_freq: Freq::from_mhz(mhz),
            target_freq: Freq::from_mhz(mhz),
            busy: in_flight > 0,
            capacity,
            class: 0,
            health: ServerHealth::Up,
        }
    }

    fn req() -> RequestSpec {
        RequestSpec::new(0, 0.0, 1e6, 0.0)
    }

    #[test]
    fn passthrough_always_picks_server_zero() {
        let mut r = Passthrough;
        let views = [view(0, 9, 2400), view(1, 0, 800)];
        assert_eq!(r.route(&req(), &views), 0);
        assert_eq!(r.route(&req(), &views), 0);
    }

    #[test]
    fn round_robin_cycles_in_index_order() {
        let mut r = RoundRobin::new();
        let views = [view(0, 0, 2400), view(1, 0, 2400), view(2, 0, 2400)];
        let picks: Vec<usize> = (0..7).map(|_| r.route(&req(), &views)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn jsq_picks_fewest_in_flight_lowest_index() {
        let mut r = JoinShortestQueue::new();
        let views = [view(0, 3, 2400), view(1, 1, 2400), view(2, 1, 800)];
        assert_eq!(r.route(&req(), &views), 1, "tie broken by lowest index");
        let views = [view(0, 0, 2400), view(1, 1, 800)];
        assert_eq!(r.route(&req(), &views), 0);
    }

    #[test]
    fn power_aware_breaks_queue_ties_by_cheaper_core() {
        let mut r = PowerAware::default();
        // Equal occupancy: the 800 MHz core burns less than the 3.4 GHz one.
        let views = [view(0, 1, 3400), view(1, 1, 800)];
        assert_eq!(r.route(&req(), &views), 1);
        // Queue balance still dominates.
        let views = [view(0, 0, 3400), view(1, 1, 800)];
        assert_eq!(r.route(&req(), &views), 0);
    }

    #[test]
    fn power_aware_weights_occupancy_by_capacity() {
        let mut r = PowerAware::default();
        // A big core (capacity 2) at 2 in flight ties a little core
        // (capacity 1) at 1 in flight; the cheaper little core wins the tie.
        let views = [
            view_with_capacity(0, 2, 2400, 2.0),
            view_with_capacity(1, 1, 800, 1.0),
        ];
        assert_eq!(r.route(&req(), &views), 1);
        // At 3-vs-1 the big core's normalized load (1.5) loses to 1.0.
        let views = [
            view_with_capacity(0, 3, 800, 2.0),
            view_with_capacity(1, 1, 3400, 1.0),
        ];
        assert_eq!(r.route(&req(), &views), 1);
    }

    #[test]
    fn power_aware_never_routes_to_zero_capacity_servers() {
        let mut r = PowerAware::default();
        // The idle zero-capacity server reports infinite load, so the busy
        // full-capacity one still wins.
        let views = [
            view_with_capacity(0, 0, 800, 0.0),
            view_with_capacity(1, 7, 3400, 1.0),
        ];
        assert_eq!(r.route(&req(), &views), 1);
        assert!(views[0].effective_load().is_infinite());
    }

    #[test]
    fn health_aware_ejects_down_and_straggling_servers() {
        let mut r = HealthAware::new(JoinShortestQueue::new());
        let mut views = [view(0, 0, 2400), view(1, 3, 2400), view(2, 5, 2400)];
        views[0].health = ServerHealth::Down;
        // JSQ would pick 0 (fewest in flight); health filtering picks 1.
        assert_eq!(r.route(&req(), &views), 1);
        views[1].health = ServerHealth::Straggling;
        assert_eq!(r.route(&req(), &views), 2, "stragglers get no new work");
        // Recovery readmits immediately.
        views[0].health = ServerHealth::Up;
        assert_eq!(r.route(&req(), &views), 0);
    }

    #[test]
    fn health_aware_round_robin_cycles_over_the_healthy_subset() {
        let mut r = HealthAware::new(RoundRobin::new());
        let mut views = [view(0, 0, 2400), view(1, 0, 2400), view(2, 0, 2400)];
        views[1].health = ServerHealth::Down;
        let picks: Vec<usize> = (0..4).map(|_| r.route(&req(), &views)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2], "cursor runs over healthy servers");
    }

    #[test]
    fn health_aware_with_nothing_healthy_degrades_to_the_inner_router() {
        let mut r = HealthAware::new(JoinShortestQueue::new());
        let mut views = [view(0, 4, 2400), view(1, 2, 2400)];
        views[0].health = ServerHealth::Down;
        views[1].health = ServerHealth::Down;
        // Better to route somewhere (and let timeouts rescue it) than drop.
        assert_eq!(r.route(&req(), &views), 1);
    }

    #[test]
    fn health_aware_matches_inner_router_on_a_healthy_fleet() {
        let views = [view(0, 3, 2400), view(1, 1, 800), view(2, 1, 3400)];
        let mut plain = PowerAware::default();
        let mut wrapped = HealthAware::new(PowerAware::default());
        for _ in 0..5 {
            assert_eq!(plain.route(&req(), &views), wrapped.route(&req(), &views));
        }
        assert_eq!(wrapped.name(), "health-aware(power-aware)");
    }

    #[test]
    fn routers_fall_back_to_server_zero_on_an_empty_view_slice() {
        // Cluster construction rejects empty fleets (ClusterError), so this
        // is unreachable from the driver; the routers still must not panic.
        assert_eq!(JoinShortestQueue::new().route(&req(), &[]), 0);
        assert_eq!(PowerAware::default().route(&req(), &[]), 0);
    }
}
