//! `Cluster::run_streamed` holds memory at O(in-flight), not O(requests):
//! arrivals are pulled one at a time from the source and handed straight to
//! the per-server simulators, so no request backlog is ever materialized.
//!
//! A counting global allocator pins that directly (the cluster-level twin of
//! `rubik-sim`'s `event_loop_alloc` test): after a warm-up run has faulted in
//! code paths and sized allocator pools, an 8x-longer streamed run may only
//! pay for run-scoped containers — per-server record vectors and segment
//! timelines that amortize to O(log n) reallocations — while the per-arrival
//! path (source pull, route, offer, schedule) stays allocation-free. The
//! allocation count of the long run must therefore stay within a fixed slack
//! of the short run instead of scaling with the request count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rubik_cluster::{Cluster, JoinShortestQueue};
use rubik_load::PoissonSource;
use rubik_sim::{FixedFrequencyPolicy, SimConfig};
use rubik_workloads::AppProfile;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const FLEET: usize = 4;

fn allocations_for_streamed_run(requests: usize) -> u64 {
    let config = SimConfig::paper_simulated();
    let cluster = Cluster::new(
        config.clone(),
        FLEET,
        Box::new(JoinShortestQueue::new()),
        |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
    );
    let source = PoissonSource::new(AppProfile::masstree(), 0.5 * FLEET as f64, requests, 42);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let outcome = cluster.run_streamed(source);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(outcome.requests, requests);
    after - before
}

#[test]
fn run_streamed_allocations_do_not_scale_with_request_count() {
    // Warm-up run (fills allocator pools, faults in code paths).
    let _ = allocations_for_streamed_run(512);

    let small = allocations_for_streamed_run(512);
    let large = allocations_for_streamed_run(4096);

    // 8x the requests must not cost 8x the allocations: each arrival is
    // pulled from the source, routed, and offered without allocating, so the
    // only growth is the amortized doubling of per-server record vectors and
    // segment timelines — O(fleet * log n) reallocations in total.
    assert!(
        large < small + 160,
        "run_streamed allocations grew with request count: {small} -> {large}"
    );
}
