//! File-backed streaming trace I/O.
//!
//! [`rubik_workloads::trace_io`] reads and writes whole [`Trace`]s in one
//! shot — O(requests) resident memory on both sides. The streaming pair
//! here speaks the *same* JSON schema byte-for-byte but one request at a
//! time: [`StreamingTraceWriter`] appends requests as they are generated,
//! and [`StreamingTraceReader`] is an [`ArrivalSource`] that parses one
//! request per pull, so huge captured traces replay through
//! `Cluster::run_streamed` without ever materializing.
//!
//! ```json
//! {"requests":[{"id":0,"arrival":0.0,"compute_cycles":1.0e6,
//!               "membound_time":1.0e-5,"class":0}, ...]}
//! ```
//!
//! A file produced by the streaming writer is byte-identical to
//! [`rubik_workloads::trace_io::to_json`] of the same requests, and the
//! streaming reader accepts any file the batch parser accepts, with the
//! same strict schema checks (unknown/duplicate/missing fields and
//! non-finite numbers rejected) plus one more: arrivals must be
//! time-ordered, because a pull-based reader cannot sort after the fact.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use rubik_sim::RequestSpec;

use crate::source::ArrivalSource;

/// Why a streaming trace read or write failed.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The stream is not a valid trace; the offset is in bytes from the
    /// start of the file.
    Parse {
        /// What was wrong.
        message: String,
        /// Byte offset where the problem was detected.
        offset: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream I/O failed: {e}"),
            StreamError::Parse { message, offset } => {
                write!(
                    f,
                    "trace stream is not a valid trace: {message} at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Writes a trace file one request at a time with O(1) resident memory.
///
/// Call [`StreamingTraceWriter::finish`] to close the JSON structure; a
/// dropped-without-finish writer leaves a truncated file the readers will
/// reject, never a silently short trace.
#[derive(Debug)]
pub struct StreamingTraceWriter<W: Write> {
    out: W,
    written: usize,
}

impl StreamingTraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, StreamError> {
        Ok(Self::new(BufWriter::new(File::create(path)?))?)
    }
}

impl<W: Write> StreamingTraceWriter<W> {
    /// Starts a trace stream on any writer (the JSON header is written
    /// immediately).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the header cannot be written.
    pub fn new(mut out: W) -> std::io::Result<Self> {
        out.write_all(b"{\"requests\":[")?;
        Ok(Self { out, written: 0 })
    }

    /// Appends one request.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the record cannot be written.
    pub fn write(&mut self, r: &RequestSpec) -> std::io::Result<()> {
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        // Identical formatting to `rubik_workloads::trace_io::to_json`:
        // `{:e}` prints the shortest-roundtrip mantissa, so values survive
        // a write/read cycle bit-exactly and streamed files match batch
        // files byte-for-byte.
        write!(
            self.out,
            "{{\"id\":{},\"arrival\":{:e},\"compute_cycles\":{:e},\
             \"membound_time\":{:e},\"class\":{}}}",
            r.id, r.arrival, r.compute_cycles, r.membound_time, r.class
        )?;
        self.written += 1;
        Ok(())
    }

    /// Drains `source` into the file, then finishes it. Returns the number
    /// of requests written.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if any record cannot be written.
    pub fn write_all_from<S: ArrivalSource>(mut self, mut source: S) -> std::io::Result<usize> {
        while let Some(r) = source.next_arrival() {
            self.write(&r)?;
        }
        let n = self.written;
        self.finish()?;
        Ok(n)
    }

    /// Closes the JSON structure and flushes, returning the inner writer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the trailer cannot be written.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.write_all(b"]}")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Replays a trace file one request per pull with O(1) resident memory.
///
/// Implements [`ArrivalSource`], so a captured multi-gigabyte trace feeds
/// `Cluster::run_streamed` directly. Schema checks match the batch parser
/// (unknown, duplicate, or missing fields and non-finite numbers are
/// rejected); out-of-order arrivals are additionally rejected because the
/// engine requires a time-ordered stream.
///
/// [`ArrivalSource::next_arrival`] cannot carry an error, so a parse or
/// I/O failure ends the stream early and is held for inspection: check
/// [`StreamingTraceReader::finish`] (or [`StreamingTraceReader::error`])
/// after the run to distinguish clean exhaustion from a truncated or
/// malformed file.
#[derive(Debug)]
pub struct StreamingTraceReader<R: Read> {
    input: R,
    buf: Vec<u8>,
    /// Window of unconsumed bytes in `buf`.
    pos: usize,
    len: usize,
    /// Absolute byte offset of `buf[pos]` in the stream.
    offset: usize,
    state: ReaderState,
    last_arrival: f64,
    error: Option<StreamError>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    /// Before the first element; `]` or a request may follow.
    FirstElement,
    /// Between elements; `,` or `]` may follow.
    NextElement,
    /// The closing `]}` has been consumed; the stream is exhausted.
    Done,
    /// A previous pull failed; the stream stays dead.
    Failed,
}

impl StreamingTraceReader<BufReader<File>> {
    /// Opens a trace file for streaming replay.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] if the file cannot be opened and
    /// [`StreamError::Parse`] if it does not start with the trace header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StreamError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> StreamingTraceReader<R> {
    /// Starts streaming from any reader; the `{"requests":[` header is
    /// parsed immediately.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] on a read failure and
    /// [`StreamError::Parse`] if the header is malformed.
    pub fn new(input: R) -> Result<Self, StreamError> {
        let mut reader = Self {
            input,
            buf: vec![0; 8 * 1024],
            pos: 0,
            len: 0,
            offset: 0,
            state: ReaderState::FirstElement,
            last_arrival: f64::NEG_INFINITY,
            error: None,
        };
        reader.parse_header()?;
        Ok(reader)
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&StreamError> {
        self.error.as_ref()
    }

    /// Consumes the reader, distinguishing clean exhaustion from failure.
    ///
    /// # Errors
    ///
    /// Returns the held [`StreamError`] if the stream ended on a parse or
    /// I/O failure, or a truncation error if the file ended before the
    /// closing `]}` was seen.
    pub fn finish(mut self) -> Result<(), StreamError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.state {
            ReaderState::Done => Ok(()),
            _ => Err(StreamError::Parse {
                message: "trace stream ended before the closing \"]}\"".to_string(),
                offset: self.offset,
            }),
        }
    }

    fn parse_error(&self, message: &str) -> StreamError {
        StreamError::Parse {
            message: message.to_string(),
            offset: self.offset,
        }
    }

    /// Refills the buffer window if empty; `Ok(false)` means end of input.
    fn fill(&mut self) -> Result<bool, StreamError> {
        if self.pos < self.len {
            return Ok(true);
        }
        self.pos = 0;
        self.len = self.input.read(&mut self.buf)?;
        Ok(self.len > 0)
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, StreamError> {
        if self.fill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, StreamError> {
        let b = self.peek_byte()?;
        if b.is_some() {
            self.pos += 1;
            self.offset += 1;
        }
        Ok(b)
    }

    fn skip_ws(&mut self) -> Result<(), StreamError> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.pos += 1;
                self.offset += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn expect(&mut self, c: u8) -> Result<(), StreamError> {
        self.skip_ws()?;
        match self.peek_byte()? {
            Some(b) if b == c => {
                self.pos += 1;
                self.offset += 1;
                Ok(())
            }
            _ => Err(self.parse_error(&format!("expected '{}'", c as char))),
        }
    }

    /// Parses a `"key"` string (trace keys never contain escapes).
    fn parse_key(&mut self) -> Result<String, StreamError> {
        self.expect(b'"')?;
        let mut key = String::new();
        loop {
            match self.next_byte()? {
                Some(b'"') => return Ok(key),
                Some(b'\\') => {
                    return Err(self.parse_error("escape sequences are not used by trace files"))
                }
                Some(b) => {
                    if key.len() >= 64 {
                        return Err(self.parse_error("request field name is too long"));
                    }
                    key.push(b as char);
                }
                None => return Err(self.parse_error("unterminated string")),
            }
        }
    }

    /// Scans a numeric token into `token`.
    fn number_token(&mut self, token: &mut String) -> Result<(), StreamError> {
        self.skip_ws()?;
        token.clear();
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                token.push(b as char);
                self.pos += 1;
                self.offset += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_f64(&mut self, token: &mut String) -> Result<f64, StreamError> {
        self.number_token(token)?;
        match token.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(self.parse_error("expected a finite number")),
        }
    }

    fn parse_u64(&mut self, token: &mut String) -> Result<u64, StreamError> {
        self.number_token(token)?;
        token
            .parse::<u64>()
            .map_err(|_| self.parse_error("expected a non-negative integer"))
    }

    fn parse_u32(&mut self, token: &mut String) -> Result<u32, StreamError> {
        self.number_token(token)?;
        token
            .parse::<u32>()
            .map_err(|_| self.parse_error("expected a non-negative integer"))
    }

    fn parse_header(&mut self) -> Result<(), StreamError> {
        self.expect(b'{')?;
        let key = self.parse_key()?;
        if key != "requests" {
            return Err(self.parse_error("expected a \"requests\" field"));
        }
        self.expect(b':')?;
        self.expect(b'[')
    }

    /// Parses one request object (the leading `{` not yet consumed).
    fn parse_request(&mut self) -> Result<RequestSpec, StreamError> {
        self.expect(b'{')?;
        let mut spec = RequestSpec::new(0, 0.0, 0.0, 0.0);
        let mut token = String::new();
        // Same strictness as the batch parser: every field exactly once.
        let mut seen = [false; 5];
        loop {
            let key = self.parse_key()?;
            self.expect(b':')?;
            let slot = match key.as_str() {
                "id" => {
                    spec.id = self.parse_u64(&mut token)?;
                    0
                }
                "arrival" => {
                    spec.arrival = self.parse_f64(&mut token)?;
                    1
                }
                "compute_cycles" => {
                    spec.compute_cycles = self.parse_f64(&mut token)?;
                    2
                }
                "membound_time" => {
                    spec.membound_time = self.parse_f64(&mut token)?;
                    3
                }
                "class" => {
                    spec.class = self.parse_u32(&mut token)?;
                    4
                }
                _ => return Err(self.parse_error(&format!("unknown request field \"{key}\""))),
            };
            if seen[slot] {
                return Err(self.parse_error(&format!("duplicate request field \"{key}\"")));
            }
            seen[slot] = true;
            self.skip_ws()?;
            match self.next_byte()? {
                Some(b',') => {}
                Some(b'}') => {
                    if let Some(missing) = seen.iter().position(|&s| !s) {
                        const FIELDS: [&str; 5] =
                            ["id", "arrival", "compute_cycles", "membound_time", "class"];
                        return Err(self.parse_error(&format!(
                            "missing request field \"{}\"",
                            FIELDS[missing]
                        )));
                    }
                    return Ok(spec);
                }
                _ => return Err(self.parse_error("expected ',' or '}' in request object")),
            }
        }
    }

    /// Consumes the closing `}` and any trailing whitespace after `]`.
    fn parse_trailer(&mut self) -> Result<(), StreamError> {
        self.expect(b'}')?;
        self.skip_ws()?;
        if self.peek_byte()?.is_some() {
            return Err(self.parse_error("trailing data after trace"));
        }
        Ok(())
    }

    fn pull(&mut self) -> Result<Option<RequestSpec>, StreamError> {
        match self.state {
            ReaderState::Done | ReaderState::Failed => return Ok(None),
            ReaderState::FirstElement => {
                self.skip_ws()?;
                if self.peek_byte()? == Some(b']') {
                    self.pos += 1;
                    self.offset += 1;
                    self.parse_trailer()?;
                    self.state = ReaderState::Done;
                    return Ok(None);
                }
            }
            ReaderState::NextElement => {
                self.skip_ws()?;
                match self.next_byte()? {
                    Some(b',') => {}
                    Some(b']') => {
                        self.parse_trailer()?;
                        self.state = ReaderState::Done;
                        return Ok(None);
                    }
                    _ => return Err(self.parse_error("expected ',' or ']' in request array")),
                }
            }
        }
        let spec = self.parse_request()?;
        if spec.arrival < self.last_arrival {
            return Err(self.parse_error("arrivals are out of order"));
        }
        self.last_arrival = spec.arrival;
        self.state = ReaderState::NextElement;
        Ok(Some(spec))
    }
}

impl<R: Read> ArrivalSource for StreamingTraceReader<R> {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        match self.pull() {
            Ok(spec) => spec,
            Err(e) => {
                self.state = ReaderState::Failed;
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{drain_to_trace, PoissonSource};
    use rubik_workloads::{trace_io, AppProfile, WorkloadGenerator};

    fn sample_trace(n: usize) -> rubik_sim::Trace {
        WorkloadGenerator::new(AppProfile::masstree(), 5).steady_trace(0.4, n)
    }

    #[test]
    fn streamed_bytes_match_batch_writer() {
        let trace = sample_trace(100);
        let mut writer = StreamingTraceWriter::new(Vec::new()).unwrap();
        for r in trace.requests() {
            writer.write(r).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), trace_io::to_json(&trace));
    }

    #[test]
    fn empty_stream_matches_batch_writer() {
        let writer = StreamingTraceWriter::new(Vec::new()).unwrap();
        let bytes = writer.finish().unwrap();
        assert_eq!(bytes, b"{\"requests\":[]}");
    }

    #[test]
    fn reader_reproduces_batch_parser_bit_for_bit() {
        let trace = sample_trace(200);
        let json = trace_io::to_json(&trace);
        let mut reader = StreamingTraceReader::new(json.as_bytes()).unwrap();
        let batch = trace_io::from_json(&json).unwrap();
        for expected in batch.requests() {
            let got = reader.next_arrival().unwrap();
            assert_eq!(got.id, expected.id);
            assert_eq!(got.arrival.to_bits(), expected.arrival.to_bits());
            assert_eq!(
                got.compute_cycles.to_bits(),
                expected.compute_cycles.to_bits()
            );
            assert_eq!(
                got.membound_time.to_bits(),
                expected.membound_time.to_bits()
            );
            assert_eq!(got.class, expected.class);
        }
        assert_eq!(reader.next_arrival(), None);
        reader.finish().unwrap();
    }

    #[test]
    fn file_round_trip_streams_both_ways() {
        let path = std::env::temp_dir().join("rubik_stream_io_test.json");
        let source = PoissonSource::new(AppProfile::xapian(), 0.5, 150, 9);
        let written = StreamingTraceWriter::create(&path)
            .unwrap()
            .write_all_from(source)
            .unwrap();
        assert_eq!(written, 150);
        let reader = StreamingTraceReader::open(&path).unwrap();
        let replayed = drain_to_trace(reader, None);
        std::fs::remove_file(&path).ok();
        let direct = drain_to_trace(PoissonSource::new(AppProfile::xapian(), 0.5, 150, 9), None);
        assert_eq!(replayed.len(), 150);
        for (a, b) in replayed.requests().iter().zip(direct.requests()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
            assert_eq!(a.membound_time.to_bits(), b.membound_time.to_bits());
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn reader_tolerates_whitespace_and_field_order() {
        let json = r#" {
            "requests": [
                {"arrival": 1.5e-3, "id": 7, "class": 2,
                 "membound_time": 0.0, "compute_cycles": 1e6}
            ]
        } "#;
        let mut reader = StreamingTraceReader::new(json.as_bytes()).unwrap();
        let r = reader.next_arrival().unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.class, 2);
        assert_eq!(reader.next_arrival(), None);
        reader.finish().unwrap();
    }

    #[test]
    fn reader_rejects_malformed_streams() {
        for (json, needle) in [
            ("{\"requests\":", "expected '['"),
            ("{\"other\":[]}", "expected a \"requests\" field"),
            (
                "{\"requests\":[{\"id\":0,\"arrival\":0.0,\"compute_cycles\":1.0,\
                 \"membound_time\":0.0}]}",
                "missing request field \"class\"",
            ),
            (
                "{\"requests\":[{\"id\":0,\"id\":1,\"arrival\":0.0,\"compute_cycles\":1.0,\
                 \"membound_time\":0.0,\"class\":0}]}",
                "duplicate request field",
            ),
            (
                "{\"requests\":[{\"id\":0,\"arrival\":1e999,\"compute_cycles\":1.0,\
                 \"membound_time\":0.0,\"class\":0}]}",
                "expected a finite number",
            ),
            (
                "{\"requests\":[{\"id\":0,\"wat\":1,\"arrival\":0.0,\"compute_cycles\":1.0,\
                 \"membound_time\":0.0,\"class\":0}]}",
                "unknown request field",
            ),
        ] {
            match StreamingTraceReader::new(json.as_bytes()) {
                Err(e) => assert!(e.to_string().contains(needle), "{json}: {e}"),
                Ok(mut reader) => {
                    while reader.next_arrival().is_some() {}
                    let err = reader.finish().expect_err(json).to_string();
                    assert!(err.contains(needle), "{json}: {err}");
                }
            }
        }
    }

    #[test]
    fn reader_rejects_truncated_and_unordered_streams() {
        // Truncated: writer dropped before finish().
        let trace = sample_trace(3);
        let mut writer = StreamingTraceWriter::new(Vec::new()).unwrap();
        for r in trace.requests() {
            writer.write(r).unwrap();
        }
        let truncated = writer.out; // no finish(): missing "]}"
        let mut reader = StreamingTraceReader::new(&truncated[..]).unwrap();
        while reader.next_arrival().is_some() {}
        assert!(reader.finish().is_err(), "truncated file must be rejected");

        // Out of order: a pull-based reader cannot sort after the fact.
        let json = "{\"requests\":[\
            {\"id\":0,\"arrival\":2.0,\"compute_cycles\":1.0,\"membound_time\":0.0,\"class\":0},\
            {\"id\":1,\"arrival\":1.0,\"compute_cycles\":1.0,\"membound_time\":0.0,\"class\":0}]}";
        let mut reader = StreamingTraceReader::new(json.as_bytes()).unwrap();
        assert!(reader.next_arrival().is_some());
        assert_eq!(reader.next_arrival(), None);
        let err = reader.finish().expect_err("unordered").to_string();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn reader_memory_is_bounded_by_buffer_not_trace() {
        // The reader's buffer is fixed-size; a large trace streams through
        // it without growing allocations proportional to the trace.
        let trace = sample_trace(2_000);
        let json = trace_io::to_json(&trace);
        let reader = StreamingTraceReader::new(json.as_bytes()).unwrap();
        assert_eq!(reader.buf.len(), 8 * 1024);
        let replayed = drain_to_trace(reader, None);
        assert_eq!(replayed.len(), 2_000);
    }
}
