//! Full-system (server) power.
//!
//! Rubik only reduces active core power; uncore, DRAM, and "other" components
//! (power supply losses, disks, NICs) keep drawing power even when the
//! machine is idle. This is why the full-system savings in Fig. 12 are much
//! smaller than the core savings in Fig. 6, and why RubikColoc attacks idle
//! power through colocation (Sec. 6). [`ServerPowerModel`] layers those
//! components on top of [`CorePowerModel`].

use serde::{Deserialize, Serialize};

use rubik_sim::FreqResidency;

use crate::core_power::{CoreEnergy, CorePowerModel};

/// Energy consumed by a whole server over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerEnergy {
    /// Sum of all per-core energies (J).
    pub cores: f64,
    /// Uncore energy (LLC, ring, memory controller) (J).
    pub uncore: f64,
    /// DRAM energy (J).
    pub dram: f64,
    /// Everything else: PSU losses, disk, NIC, fans (J).
    pub other: f64,
}

impl ServerEnergy {
    /// Total server energy in joules.
    pub fn total(&self) -> f64 {
        self.cores + self.uncore + self.dram + self.other
    }
}

/// Power model for one server: N cores plus shared components.
///
/// Component magnitudes follow the breakdown the paper's power model reports
/// (cores, uncore, DRAM, other) for a single-socket Xeon E3 server, where
/// idle power is a large fraction of peak (Sec. 6, [1, 38, 41]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    core_model: CorePowerModel,
    cores: usize,
    /// Static uncore power (W), drawn whenever the server is on.
    uncore_static: f64,
    /// Additional uncore power (W) per active (non-sleeping) core.
    uncore_per_active_core: f64,
    /// Static DRAM power (W).
    dram_static: f64,
    /// Additional DRAM power (W) per core-equivalent of memory activity.
    dram_per_active_core: f64,
    /// Constant "other" platform power (W): PSU losses, disk, NIC, fans.
    other_static: f64,
}

impl ServerPowerModel {
    /// Creates a server power model.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or any component power is negative.
    pub fn new(
        core_model: CorePowerModel,
        cores: usize,
        uncore_static: f64,
        uncore_per_active_core: f64,
        dram_static: f64,
        dram_per_active_core: f64,
        other_static: f64,
    ) -> Self {
        assert!(cores > 0, "a server needs at least one core");
        assert!(
            uncore_static >= 0.0
                && uncore_per_active_core >= 0.0
                && dram_static >= 0.0
                && dram_per_active_core >= 0.0
                && other_static >= 0.0,
            "component powers must be non-negative"
        );
        Self {
            core_model,
            cores,
            uncore_static,
            uncore_per_active_core,
            dram_static,
            dram_per_active_core,
            other_static,
        }
    }

    /// The 6-core server of the paper's simulated experiments (Table 2).
    pub fn paper_simulated() -> Self {
        Self::new(CorePowerModel::haswell_like(), 6, 8.0, 1.0, 6.0, 1.5, 35.0)
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The per-core power model.
    pub fn core_model(&self) -> &CorePowerModel {
        &self.core_model
    }

    /// Idle server power (W): all cores idle at the minimum frequency, no
    /// activity anywhere.
    pub fn idle_power(&self) -> f64 {
        let f_min = rubik_sim::DvfsConfig::haswell_like().min();
        self.cores as f64 * self.core_model.idle_power(f_min)
            + self.uncore_static
            + self.dram_static
            + self.other_static
    }

    /// Peak server power (W): all cores active at the maximum frequency.
    pub fn peak_power(&self) -> f64 {
        let f_max = rubik_sim::DvfsConfig::haswell_like().max();
        self.cores as f64
            * (self.core_model.active_power(f_max)
                + self.uncore_per_active_core
                + self.dram_per_active_core)
            + self.uncore_static
            + self.dram_static
            + self.other_static
    }

    /// Server energy over an interval of `duration` seconds, given the
    /// residency of each occupied core. Cores not listed are charged idle
    /// power at the minimum frequency.
    ///
    /// # Panics
    ///
    /// Panics if more residencies are supplied than the server has cores, or
    /// `duration <= 0`.
    pub fn energy(&self, core_residencies: &[FreqResidency], duration: f64) -> ServerEnergy {
        assert!(
            core_residencies.len() <= self.cores,
            "more core residencies than cores"
        );
        assert!(duration > 0.0, "duration must be positive");

        let f_min = rubik_sim::DvfsConfig::haswell_like().min();
        let mut cores_energy = 0.0;
        let mut busy_core_seconds = 0.0;
        for res in core_residencies {
            let e: CoreEnergy = self.core_model.energy(res);
            cores_energy += e.total();
            // Charge idle power for any part of the interval the residency
            // does not cover (e.g. a short trace on a long interval).
            let uncovered = (duration - res.total_time()).max(0.0);
            cores_energy += self.core_model.idle_power(f_min) * uncovered;
            busy_core_seconds += res.busy_time();
        }
        // Unoccupied cores idle for the whole interval.
        let unoccupied = self.cores - core_residencies.len();
        cores_energy += unoccupied as f64 * self.core_model.idle_power(f_min) * duration;

        let uncore =
            self.uncore_static * duration + self.uncore_per_active_core * busy_core_seconds;
        let dram = self.dram_static * duration + self.dram_per_active_core * busy_core_seconds;
        let other = self.other_static * duration;

        ServerEnergy {
            cores: cores_energy,
            uncore,
            dram,
            other,
        }
    }

    /// Average server power (W) over an interval.
    pub fn average_power(&self, core_residencies: &[FreqResidency], duration: f64) -> f64 {
        self.energy(core_residencies, duration).total() / duration
    }
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        Self::paper_simulated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{CoreActivity, Freq, RunResult, Segment};

    fn busy_residency(busy_s: f64, total_s: f64, mhz: u32) -> FreqResidency {
        let segments = vec![
            Segment {
                start: 0.0,
                end: busy_s,
                freq: Freq::from_mhz(mhz),
                activity: CoreActivity::Busy,
            },
            Segment {
                start: busy_s,
                end: total_s,
                freq: Freq::from_mhz(mhz),
                activity: CoreActivity::Idle,
            },
        ];
        RunResult::new(vec![], segments, total_s).freq_residency()
    }

    #[test]
    fn idle_power_is_a_large_fraction_of_peak() {
        // The motivation for colocation: servers are not energy-proportional.
        let m = ServerPowerModel::paper_simulated();
        let ratio = m.idle_power() / m.peak_power();
        assert!(ratio > 0.3, "idle/peak = {ratio}");
        assert!(ratio < 0.8, "idle/peak = {ratio}");
    }

    #[test]
    fn energy_scales_with_activity() {
        let m = ServerPowerModel::paper_simulated();
        let idle = m.energy(&[], 10.0).total();
        let one_busy = m.energy(&[busy_residency(10.0, 10.0, 2400)], 10.0).total();
        let six_busy = m
            .energy(&vec![busy_residency(10.0, 10.0, 2400); 6], 10.0)
            .total();
        assert!(idle < one_busy);
        assert!(one_busy < six_busy);
        assert!((idle / 10.0 - m.idle_power()).abs() < 1e-9);
    }

    #[test]
    fn uncovered_time_is_charged_as_idle() {
        let m = ServerPowerModel::paper_simulated();
        // A residency covering only 2 s of a 10 s interval.
        let partial = m.energy(&[busy_residency(2.0, 2.0, 2400)], 10.0).total();
        let idle_only = m.energy(&[], 10.0).total();
        assert!(partial > idle_only);
        assert!(partial < idle_only + 200.0);
    }

    #[test]
    fn full_system_savings_are_smaller_than_core_savings() {
        // Fig. 6 vs Fig. 12: a 50% cut in active core time yields a much
        // smaller relative cut in total server power.
        let m = ServerPowerModel::paper_simulated();
        let high = m.average_power(&vec![busy_residency(10.0, 10.0, 2400); 6], 10.0);
        let low = m.average_power(&vec![busy_residency(10.0, 10.0, 1200); 6], 10.0);
        let core_high = m.core_model().active_power(Freq::from_mhz(2400));
        let core_low = m.core_model().active_power(Freq::from_mhz(1200));
        let core_savings = 1.0 - core_low / core_high;
        let system_savings = 1.0 - low / high;
        assert!(system_savings < core_savings);
        assert!(system_savings > 0.0);
    }

    #[test]
    #[should_panic(expected = "more core residencies than cores")]
    fn rejects_too_many_residencies() {
        let m = ServerPowerModel::paper_simulated();
        let _ = m.energy(&vec![FreqResidency::default(); 7], 1.0);
    }
}
