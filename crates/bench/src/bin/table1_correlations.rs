//! Table 1: Pearson correlation of end-to-end response latency with service
//! time, instantaneous QPS, and queue length, for each application.

use rubik::stats::pearson;
use rubik::{AppProfile, FixedFrequencyPolicy, Server};
use rubik_bench::{print_header, print_row, BenchArgs, Harness};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    println!("# Table 1: correlation of response latency with service time, QPS, queue length");
    print_header(&["app", "service_time", "instantaneous_qps", "queue_length"]);
    for (i, app) in AppProfile::all().iter().enumerate() {
        let trace = harness.trace(app, 0.5, i as u64);
        let mut policy = FixedFrequencyPolicy::new(harness.sim.dvfs.nominal());
        let result = Server::new(harness.sim.clone()).run(&trace, &mut policy);

        let latencies = result.latencies();
        let service = result.service_times();
        let queue = result.queue_lengths();
        // Instantaneous QPS seen by each request: arrivals in the surrounding
        // 5 ms window.
        let window = 0.005;
        let arrivals: Vec<f64> = trace.requests().iter().map(|r| r.arrival).collect();
        let qps: Vec<f64> = result
            .records()
            .iter()
            .map(|r| {
                arrivals
                    .iter()
                    .filter(|&&a| a >= r.arrival - window && a < r.arrival)
                    .count() as f64
                    / window
            })
            .collect();

        print_row(
            app.name(),
            &[
                pearson(&service, &latencies).unwrap_or(0.0),
                pearson(&qps, &latencies).unwrap_or(0.0),
                pearson(&queue, &latencies).unwrap_or(0.0),
            ],
        );
    }
}
