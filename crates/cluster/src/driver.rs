//! The cluster driver: N `ServerSim`s multiplexed through one event loop.
//!
//! Every server is an independent open-loop simulation
//! ([`rubik_sim::ServerSim`]); the driver owns a binary heap of
//! `(next event time, server)` entries and always advances the globally
//! earliest event, so thousands of servers run in one process with no
//! threads and no per-server clocks to reconcile. Arrivals from the global
//! request stream are routed by a [`Router`] and offered to the chosen
//! server, whose own engine then sequences the arrival against its pending
//! completions, transitions, and ticks.
//!
//! # Event ordering and determinism
//!
//! The heap orders events by `(time, server index)`, and every routing
//! decision observes the fleet *after* all server events strictly before
//! the arrival instant have been processed (events at exactly the arrival
//! instant are sequenced by the destination server's own round order, which
//! is what makes a 1-server cluster bitwise-identical to
//! [`rubik_sim::Server::run`]). Entries are stamped and lazily invalidated:
//! whenever a server is stepped or offered work, its stamp advances and a
//! fresh entry is pushed, so stale heap entries are skipped on pop. The
//! whole loop is sequential and deterministic — fleet-scale parallelism
//! comes from sweeping many cluster cells on `rubik-sweep`, not from
//! threading inside one cluster.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use rubik_load::{ArrivalSource, TraceSource};
use rubik_power::CorePowerModel;
use rubik_sim::{DvfsPolicy, RequestSpec, RunResult, ServerSim, SimConfig, SimEvent, Trace};

use crate::fault::{FaultLayer, FaultPlan, HedgeResolution, OpKind, RequestPolicy};
use crate::fleet::{EpochMeter, FleetCommand, FleetController, FleetSpec, ServerPowerView};
use crate::migrate::{Migration, Migrator};
use crate::outcome::ClusterOutcome;
use crate::router::{Router, ServerHealth, ServerView};
use rubik_telemetry::{
    EpochSample, RequestEvent, RequestEventKind, ServerEvent, ServerEventKind, ServerSample,
    Telemetry, TraceLog,
};

/// Why a [`Cluster`] could not be built or a streamed run could not finish.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The fleet has zero servers; a cluster needs at least one.
    EmptyFleet,
    /// The attached [`FaultPlan`] is inconsistent with the fleet (server
    /// out of range, non-finite time, empty straggle window, double crash,
    /// recovery of a healthy server, …). The message says which event.
    InvalidFaultPlan(String),
    /// The offered per-server load is not positive and finite, so no
    /// arrival process can be constructed from it.
    InvalidLoad,
    /// A streamed [`ArrivalSource`] violated its contract: arrival number
    /// `index` (0-based, in pull order) was yielded at time `at` after an
    /// arrival at the later (or non-finite) time `prev`. Requests already
    /// routed before the violation are abandoned — the run produces no
    /// outcome.
    OutOfOrderArrival {
        /// 0-based position of the offending arrival in pull order.
        index: usize,
        /// The offending arrival's time.
        at: f64,
        /// The previous arrival's time.
        prev: f64,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::EmptyFleet => write!(f, "a cluster needs at least one server"),
            ClusterError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            ClusterError::InvalidLoad => write!(f, "load must be positive and finite"),
            ClusterError::OutOfOrderArrival { index, at, prev } => write!(
                f,
                "arrival source must be time-ordered: arrival #{index} at {at} after {prev}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A heap entry: the next event of one server, stamped for lazy
/// invalidation.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    server: usize,
    stamp: u64,
}

impl HeapEntry {
    fn key(&self) -> (f64, usize, u64) {
        (self.time, self.server, self.stamp)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (t0, s0, v0) = self.key();
        let (t1, s1, v1) = other.key();
        t0.total_cmp(&t1).then(s0.cmp(&s1)).then(v0.cmp(&v1))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How a run is sharded across worker threads (see
/// [`Cluster::run_sharded`]).
///
/// The fleet is partitioned into `shards` contiguous server blocks, each
/// advancing on its own stamped heap between global boundaries. Shard
/// counts are clamped to the fleet size at run time, and
/// [`ShardSpec::single`] recovers the classic single-heap loop exactly.
/// Sharding never changes results — every `run_sharded*` output is
/// bit-identical to its unsharded twin — so the only tradeoff is
/// throughput: one worker thread per extra shard, paying off once
/// per-event work (e.g. a Rubik controller per server) dominates routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// Shards the fleet `shards` ways (1 = the classic serial loop).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        Self { shards }
    }

    /// One shard per available hardware thread (1 if unknown).
    pub fn auto() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// The single-shard spec: no worker threads, the classic event loop.
    pub fn single() -> Self {
        Self { shards: 1 }
    }

    /// The configured shard count (before clamping to the fleet size).
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Default for ShardSpec {
    /// Defaults to [`ShardSpec::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

/// A fleet of simulated servers behind a load balancer.
///
/// Built with one [`DvfsPolicy`] instance per server (Rubik per server, in
/// the paper's setting) and a [`Router`]; consumed by [`Cluster::run`],
/// which drives the global arrival stream through the fleet and aggregates
/// a [`ClusterOutcome`].
pub struct Cluster<P: DvfsPolicy = Box<dyn DvfsPolicy>> {
    servers: Vec<ServerSim<P>>,
    router: Box<dyn Router>,
    power: CorePowerModel,
    quantile: f64,
    /// Per-server capacity weight (1.0 everywhere for homogeneous fleets).
    capacities: Vec<f64>,
    /// Per-server core-class index (0 everywhere for homogeneous fleets).
    classes: Vec<u32>,
    /// Optional fleet-level power manager, run on its epoch.
    fleet: Option<Box<dyn FleetController>>,
    /// Optional queue rebalancer, run on its own interval.
    migrator: Option<Box<dyn Migrator>>,
    /// Optional scripted fault schedule (validated against the fleet size).
    faults: Option<FaultPlan>,
    /// Optional client-side request lifecycle: deadlines, timeouts, retries.
    request_policy: Option<RequestPolicy>,
    /// Instrumentation handle; disabled (and bitwise-invisible) by default.
    telemetry: Telemetry,
}

impl<P: DvfsPolicy> std::fmt::Debug for Cluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("router", &self.router.name())
            .field("quantile", &self.quantile)
            .field("fleet", &self.fleet.as_ref().map(|f| f.name()))
            .field("migrator", &self.migrator.as_ref().map(|m| m.name()))
            .field("telemetry", &self.telemetry.is_enabled())
            .finish()
    }
}

impl<P: DvfsPolicy> Cluster<P> {
    /// Creates a fleet of `servers` identical-hardware servers. `policy` is
    /// called once per server index to build that server's DVFS controller —
    /// per-server instances, never shared.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new<F>(config: SimConfig, servers: usize, router: Box<dyn Router>, mut policy: F) -> Self
    where
        F: FnMut(usize) -> P,
    {
        Self::from_spec(
            &FleetSpec::homogeneous(config, servers),
            router,
            |i, config| {
                let _ = config;
                policy(i)
            },
        )
    }

    /// Creates a possibly heterogeneous fleet from a [`FleetSpec`]: each
    /// server gets its class's [`SimConfig`], and the spec's capacity
    /// weights feed capacity-aware routing
    /// ([`PowerAware`](crate::PowerAware)) and fleet-budget apportioning
    /// ([`PegasusFleet`](crate::PegasusFleet)). `policy` is called once per
    /// server with its index and its class's configuration.
    ///
    /// # Panics
    ///
    /// Panics if the spec is empty.
    pub fn from_spec<F>(spec: &FleetSpec, router: Box<dyn Router>, mut policy: F) -> Self
    where
        F: FnMut(usize, &SimConfig) -> P,
    {
        assert!(!spec.is_empty(), "a cluster needs at least one server");
        let n = spec.len();
        let servers = (0..n)
            .map(|i| {
                let config = spec.config_of(i);
                ServerSim::new(config.clone(), policy(i, config))
            })
            .collect();
        Self {
            servers,
            router,
            power: CorePowerModel::haswell_like(),
            quantile: 0.95,
            capacities: (0..n).map(|i| spec.capacity_of(i)).collect(),
            classes: (0..n).map(|i| spec.class_index_of(i)).collect(),
            fleet: None,
            migrator: None,
            faults: None,
            request_policy: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Fallible [`Cluster::new`]: returns [`ClusterError::EmptyFleet`]
    /// instead of panicking on a zero-server fleet.
    pub fn try_new<F>(
        config: SimConfig,
        servers: usize,
        router: Box<dyn Router>,
        policy: F,
    ) -> Result<Self, ClusterError>
    where
        F: FnMut(usize) -> P,
    {
        if servers == 0 {
            return Err(ClusterError::EmptyFleet);
        }
        Ok(Self::new(config, servers, router, policy))
    }

    /// Fallible [`Cluster::from_spec`]: returns
    /// [`ClusterError::EmptyFleet`] instead of panicking on an empty spec.
    pub fn try_from_spec<F>(
        spec: &FleetSpec,
        router: Box<dyn Router>,
        policy: F,
    ) -> Result<Self, ClusterError>
    where
        F: FnMut(usize, &SimConfig) -> P,
    {
        if spec.is_empty() {
            return Err(ClusterError::EmptyFleet);
        }
        Ok(Self::from_spec(spec, router, policy))
    }

    /// Attaches a fleet-level power manager, run on its epoch (initially at
    /// `t = 0`, before any event). See
    /// [`PegasusFleet`](crate::PegasusFleet).
    pub fn with_fleet_controller(mut self, fleet: Box<dyn FleetController>) -> Self {
        assert!(fleet.epoch() > 0.0, "fleet epoch must be positive");
        self.fleet = Some(fleet);
        self
    }

    /// Attaches a queue rebalancer, run on its own periodic interval. See
    /// [`ThresholdMigrator`](crate::ThresholdMigrator).
    pub fn with_migrator(mut self, migrator: Box<dyn Migrator>) -> Self {
        assert!(
            migrator.interval() > 0.0,
            "migration interval must be positive"
        );
        self.migrator = Some(migrator);
        self
    }

    /// Attaches a scripted fault schedule, applied deterministically
    /// between simulation events. An empty plan is **bit-neutral**: the run
    /// produces exactly the bytes it would without the plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] against this fleet;
    /// use [`Cluster::try_with_fault_plan`] for the fallible form.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        match self.try_with_fault_plan(plan) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::with_fault_plan`].
    pub fn try_with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, ClusterError> {
        plan.validate(self.servers.len())?;
        self.faults = Some(plan);
        Ok(self)
    }

    /// Attaches the client-side request lifecycle: per-request deadlines,
    /// per-attempt timeouts, retries with capped exponential backoff and
    /// deterministic jitter, and crash salvage/drain behaviour. The default
    /// policy is inert and bit-neutral.
    pub fn with_request_policy(mut self, policy: RequestPolicy) -> Self {
        self.request_policy = Some(policy);
        self
    }

    /// Attaches instrumentation (see [`rubik_telemetry`]). The default,
    /// [`Telemetry::disabled`], is **bitwise-invisible**: the run produces
    /// exactly the bytes it would without telemetry and performs zero
    /// steady-state allocations. [`Telemetry::recording`] captures
    /// per-request lifecycle events, server fault windows, and a per-epoch
    /// fleet time series at the same deterministic boundary instants the
    /// driver already sequences — recording telemetry leaves the simulation
    /// outputs bit-identical too; it only *adds* the log, retrieved with
    /// [`Cluster::run_traced`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the core power model used for fleet energy accounting.
    ///
    /// This does **not** reach into the router: a
    /// [`PowerAware`](crate::PowerAware) router carries its own scoring
    /// model, so
    /// construct it from the same model passed here or its routing
    /// objective will diverge from the reported fleet energy.
    pub fn with_power(mut self, power: CorePowerModel) -> Self {
        self.power = power;
        self
    }

    /// Overrides the tail quantile (default 0.95).
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        self.quantile = quantile;
        self
    }

    /// Number of servers in the fleet.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true — see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The fleet's router.
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// Serves the global arrival stream `trace` through the fleet and
    /// returns the aggregated outcome.
    ///
    /// The trace is the *fleet's* arrival process (e.g. from
    /// [`crate::fleet_trace`]); each request is routed on arrival and
    /// offered to one server. Requests must be time-ordered, which
    /// [`Trace`] guarantees.
    pub fn run(self, trace: &Trace) -> ClusterOutcome {
        self.run_with_results(trace).0
    }

    /// Serves a pull-based arrival stream through the fleet and returns
    /// the aggregated outcome.
    ///
    /// Arrivals are pulled from `source` one at a time, as the event loop
    /// reaches them: the stream is never materialized, so resident memory
    /// scales with in-flight work (plus the per-request completion records
    /// every run keeps for outcome aggregation), not with the length of
    /// the arrival stream. `run_streamed(TraceSource::new(&trace))` is
    /// bitwise-identical to `run(&trace)` — the batch path is itself built
    /// on this one.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::OutOfOrderArrival`] if the source yields
    /// arrivals out of time order (a violation of the [`ArrivalSource`]
    /// contract).
    pub fn run_streamed<S: ArrivalSource>(self, source: S) -> Result<ClusterOutcome, ClusterError> {
        Ok(self.run_streamed_with_results(source)?.0)
    }

    /// Like [`Cluster::run_streamed`], but also returns each server's raw
    /// [`RunResult`], mirroring [`Cluster::run_with_results`].
    pub fn run_streamed_with_results<S: ArrivalSource>(
        self,
        mut source: S,
    ) -> Result<(ClusterOutcome, Vec<RunResult>), ClusterError> {
        let (outcome, results, _) = self.run_core(&mut source, 1, None)?;
        Ok((outcome, results))
    }

    /// Like [`Cluster::run_streamed_with_results`], but also returns the
    /// assembled [`TraceLog`], mirroring [`Cluster::run_traced`]: if no
    /// recording telemetry was attached, [`Telemetry::recording`] is
    /// enabled with its default sampling epoch.
    pub fn run_streamed_traced<S: ArrivalSource>(
        mut self,
        mut source: S,
    ) -> Result<(ClusterOutcome, Vec<RunResult>, TraceLog), ClusterError> {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::recording();
        }
        let (outcome, results, log) = self.run_core(&mut source, 1, None)?;
        Ok((outcome, results, log.expect("telemetry is enabled")))
    }

    /// Like [`Cluster::run`], but also returns each server's raw
    /// [`RunResult`] (used by the equivalence suites and for per-server
    /// timelines).
    ///
    /// # Hook ordering
    ///
    /// The attached [`Migrator`] and [`FleetController`] run on their own
    /// periodic clocks, interleaved with the event stream: at a boundary
    /// time `t`, every fleet event strictly before `t` has been processed,
    /// the migrator (if both fire at `t`) rebalances first, and the fleet
    /// controller then observes the post-rebalance queues. Telemetry
    /// sampling (when recording) is its own boundary and runs *last* at
    /// equal instants, observing the post-hook fleet. Boundaries keep
    /// firing through the post-arrival drain so a trailing backlog is still
    /// rebalanced and capped. A cluster without hooks takes the exact code
    /// path (and produces the exact bits) it did before hooks existed.
    pub fn run_with_results(self, trace: &Trace) -> (ClusterOutcome, Vec<RunResult>) {
        let (outcome, results, _) = self
            .run_core(&mut TraceSource::new(trace), 1, None)
            .expect("a Trace is time-ordered by construction");
        (outcome, results)
    }

    /// Like [`Cluster::run_with_results`], but also returns the assembled
    /// [`TraceLog`]. If no recording telemetry was attached with
    /// [`Cluster::with_telemetry`], this enables [`Telemetry::recording`]
    /// with its default sampling epoch — recording never changes the
    /// simulated outcome, only observes it.
    pub fn run_traced(mut self, trace: &Trace) -> (ClusterOutcome, Vec<RunResult>, TraceLog) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::recording();
        }
        let (outcome, results, log) = self
            .run_core(&mut TraceSource::new(trace), 1, None)
            .expect("a Trace is time-ordered by construction");
        (outcome, results, log.expect("telemetry is enabled"))
    }

    /// The one event loop every public run method funnels into.
    ///
    /// `shard_count` partitions the fleet (1 = the classic single-heap
    /// loop, bit-for-bit); when a [`ShardPool`] is supplied, event windows
    /// between boundaries are drained on its worker threads whenever that
    /// is provably equivalent to the serial order (see
    /// [`EventLoop::drain`]).
    fn run_core<S: ArrivalSource>(
        mut self,
        source: &mut S,
        shard_count: usize,
        pool: Option<&ShardPool<P>>,
    ) -> Result<(ClusterOutcome, Vec<RunResult>, Option<TraceLog>), ClusterError> {
        let n = self.servers.len();
        // One view per server, maintained incrementally: only a stepped or
        // offered server's view changes, so routing stays O(fleet) in reads
        // but O(events) — not O(arrivals × fleet) — in writes.
        let mut loop_state = EventLoop::new(
            std::mem::take(&mut self.servers),
            shard_count,
            std::mem::take(&mut self.capacities),
            std::mem::take(&mut self.classes),
        );
        // The fault/lifecycle layer exists only when something was attached;
        // without it every drain takes the pre-existing unwatched path. (An
        // *empty* plan builds a layer whose next boundary is infinite — the
        // same code path with a no-op observer, which is still bit-neutral.)
        let mut layer: Option<FaultLayer> =
            if self.faults.is_some() || self.request_policy.is_some() {
                Some(FaultLayer::new(
                    self.faults.as_ref(),
                    self.request_policy.unwrap_or_default(),
                    n,
                ))
            } else {
                None
            };

        let mut fleet = self.fleet.take();
        let mut migrator = self.migrator.take();
        let epoch = fleet
            .as_deref()
            .map_or(f64::INFINITY, FleetController::epoch);
        let rebalance = migrator
            .as_deref()
            .map_or(f64::INFINITY, Migrator::interval);
        let mut hooks = Hooks {
            meter: EpochMeter::new(n),
            power: self.power,
            powers: Vec::with_capacity(n),
            commands: Vec::new(),
            moves: Vec::new(),
            batch: Vec::new(),
            // The original per-policy latency objectives: `ScaleBound`
            // commands rescale relative to these, never compounding.
            base_bounds: loop_state
                .servers()
                .map(|s| s.policy().latency_bound())
                .collect(),
            migrated: 0,
        };

        // Initial apportioning before any event, so a finite budget is in
        // force from the very first request.
        if let Some(ctl) = fleet.as_deref_mut() {
            hooks.run_epoch(ctl, 0.0, 0.0, &mut loop_state);
        }
        let mut next_epoch = epoch;
        let mut next_rebalance = rebalance;

        // Telemetry sampling shares the boundary mechanism. Disabled
        // telemetry keeps `next_sample` infinite and allocates nothing —
        // every boundary below computes exactly as it did without the
        // `.min(next_sample)` term. Enabled sampling only *partitions* the
        // drains at sample instants (events are still processed in the same
        // order), so even a recording run leaves the simulation bit-exact.
        let mut tele = std::mem::take(&mut self.telemetry);
        let sample_epoch = tele.sample_epoch().unwrap_or(f64::INFINITY);
        let mut tele_meter = tele.is_enabled().then(|| EpochMeter::new(n));
        let mut tele_powers: Vec<f64> = Vec::new();
        let mut next_sample = sample_epoch;

        // Pull arrivals lazily: the stream is consumed one request at a
        // time, so the driver's resident memory tracks in-flight work, not
        // stream length. `offered` replaces the batch path's `trace.len()`
        // in fault-layer conservation accounting.
        let mut offered = 0usize;
        let mut last_arrival = f64::NEG_INFINITY;
        while let Some(request) = source.next_arrival() {
            if !matches!(
                request.arrival.partial_cmp(&last_arrival),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) {
                // A misbehaving user source is an input error, not a driver
                // bug: surface it through the result path (this also traps
                // NaN arrivals, which compare as incomparable). Typed here
                // instead of an assert so `run_streamed` callers can
                // handle it.
                return Err(ClusterError::OutOfOrderArrival {
                    index: offered,
                    at: request.arrival,
                    prev: last_arrival,
                });
            }
            last_arrival = request.arrival;
            // Run any hook boundaries at or before the arrival instant
            // (boundary actions happen *between* events; an arrival at
            // exactly the boundary is routed after the hooks ran). Fault
            // work — scripted ops, retry deliveries, attempt timeouts —
            // shares the boundary mechanism and runs first at equal
            // instants, so migration and capping observe the post-fault
            // fleet.
            loop {
                let fault_b = layer
                    .as_ref()
                    .map_or(f64::INFINITY, FaultLayer::next_boundary);
                let boundary = next_rebalance.min(next_epoch).min(fault_b).min(next_sample);
                if boundary > request.arrival {
                    break;
                }
                loop_state.drain(boundary, pool, layer.as_mut(), &mut tele);
                if fault_b <= boundary {
                    let l = layer.as_mut().expect("fault boundary implies layer");
                    run_faults(
                        l,
                        &mut tele,
                        boundary,
                        self.router.as_mut(),
                        &mut loop_state,
                    );
                }
                if next_rebalance == boundary {
                    let m = migrator.as_deref_mut().expect("rebalance implies migrator");
                    hooks.run_migration(m, &mut tele, boundary, &mut loop_state);
                    next_rebalance += rebalance;
                }
                if next_epoch == boundary {
                    let ctl = fleet.as_deref_mut().expect("epoch implies controller");
                    hooks.run_epoch(ctl, boundary, epoch, &mut loop_state);
                    next_epoch += epoch;
                }
                if next_sample == boundary {
                    let meter = tele_meter.as_mut().expect("sampling implies telemetry");
                    sample_fleet(
                        &mut tele,
                        meter,
                        &mut tele_powers,
                        boundary,
                        &loop_state,
                        layer.as_ref(),
                        &hooks.power,
                    );
                    next_sample += sample_epoch;
                }
            }

            // Process every fleet event strictly before the arrival; events
            // at exactly the arrival instant are left for the destination
            // server's engine to order against the arrival itself.
            loop_state.drain(request.arrival, pool, layer.as_mut(), &mut tele);

            let target = self.router.route(&request, &loop_state.views);
            assert!(
                target < n,
                "router {} chose server {target} of a {n}-server fleet",
                self.router.name()
            );
            loop_state.server_mut(target).offer(request);
            loop_state.schedule(target);
            if let Some(l) = layer.as_mut() {
                l.on_routed(request, target, 1, request.arrival);
            }
            tele.request_event(
                request.id,
                RequestEvent {
                    at: request.arrival,
                    kind: RequestEventKind::Routed {
                        server: target as u32,
                        attempt: 1,
                    },
                },
            );
            offered += 1;
        }

        // The stream is exhausted: no more work will ever be offered, so
        // close every server and let the remaining events drain — still
        // honouring hook boundaries while any event, retry, timeout, or
        // scripted op remains (a retried request may be delivered into a
        // closed server, and a late `Recover` must still be applied so
        // downtime closes out).
        for i in 0..n {
            loop_state.server_mut(i).close();
            loop_state.schedule(i);
        }
        loop {
            let fault_b = layer
                .as_ref()
                .map_or(f64::INFINITY, FaultLayer::next_boundary);
            let boundary = next_rebalance.min(next_epoch).min(fault_b).min(next_sample);
            loop_state.drain(boundary, pool, layer.as_mut(), &mut tele);
            if fault_b.is_infinite() && !loop_state.has_events() {
                break;
            }
            if fault_b <= boundary {
                let l = layer.as_mut().expect("fault boundary implies layer");
                run_faults(
                    l,
                    &mut tele,
                    boundary,
                    self.router.as_mut(),
                    &mut loop_state,
                );
            }
            if next_rebalance == boundary {
                let m = migrator.as_deref_mut().expect("rebalance implies migrator");
                hooks.run_migration(m, &mut tele, boundary, &mut loop_state);
                next_rebalance += rebalance;
            }
            if next_epoch == boundary {
                let ctl = fleet.as_deref_mut().expect("epoch implies controller");
                hooks.run_epoch(ctl, boundary, epoch, &mut loop_state);
                next_epoch += epoch;
            }
            if next_sample == boundary {
                let meter = tele_meter.as_mut().expect("sampling implies telemetry");
                sample_fleet(
                    &mut tele,
                    meter,
                    &mut tele_powers,
                    boundary,
                    &loop_state,
                    layer.as_ref(),
                    &hooks.power,
                );
                next_sample += sample_epoch;
            }
        }

        // Align every server's timeline with the fleet's end so idle/sleep
        // power is charged through the whole run: without this, a server
        // that drained early would be charged nothing while a backlogged
        // neighbour worked on, flattering imbalanced routings.
        let end = loop_state.servers().map(ServerSim::now).fold(0.0, f64::max);
        for shard in &mut loop_state.shards {
            for server in &mut shard.servers {
                server.coast_to(end);
            }
        }

        // Close out the telemetry time series with the final (possibly
        // partial) window, so the run's whole span is covered.
        if let Some(meter) = tele_meter.as_mut() {
            if end > meter.last_time() {
                sample_fleet(
                    &mut tele,
                    meter,
                    &mut tele_powers,
                    end,
                    &loop_state,
                    layer.as_ref(),
                    &hooks.power,
                );
            }
        }

        let downtimes: Vec<f64> = loop_state.servers().map(|s| s.downtime()).collect();
        let EventLoop {
            shards, classes, ..
        } = loop_state;
        // Shards are contiguous ascending blocks, so flattening them
        // restores global server order.
        let results: Vec<RunResult> = shards
            .into_iter()
            .flat_map(|shard| shard.servers)
            .map(ServerSim::finish)
            .collect();
        let mut outcome =
            ClusterOutcome::aggregate_classed(&results, Some(&classes), &self.power, self.quantile);
        outcome.migrated_requests = hooks.migrated;
        for (server, downtime) in outcome.per_server.iter_mut().zip(&downtimes) {
            server.downtime = *downtime;
        }
        if let Some(mut l) = layer {
            outcome.availability = l.finalize(offered, self.quantile, &results);
        }
        let log = tele.finalize(&results, end);
        Ok((outcome, results, log))
    }
}

impl<P: DvfsPolicy + Send> Cluster<P> {
    /// [`Cluster::run`], sharded: partitions the fleet per `shards` and
    /// drains event windows on worker threads, merging at every boundary
    /// in deterministic `(time, server)` order. **Bit-identical** to
    /// [`Cluster::run`] — outcome, per-server results, and telemetry all
    /// carry the same bytes at any shard count (pinned by the
    /// `shard_equivalence` suite).
    pub fn run_sharded(self, shards: ShardSpec, trace: &Trace) -> ClusterOutcome {
        self.run_sharded_with_results(shards, trace).0
    }

    /// [`Cluster::run_with_results`], sharded (see [`Cluster::run_sharded`]).
    pub fn run_sharded_with_results(
        self,
        shards: ShardSpec,
        trace: &Trace,
    ) -> (ClusterOutcome, Vec<RunResult>) {
        let (outcome, results, _) = self
            .run_sharded_core(&mut TraceSource::new(trace), shards.shards())
            .expect("a Trace is time-ordered by construction");
        (outcome, results)
    }

    /// [`Cluster::run_traced`], sharded (see [`Cluster::run_sharded`]).
    pub fn run_sharded_traced(
        mut self,
        shards: ShardSpec,
        trace: &Trace,
    ) -> (ClusterOutcome, Vec<RunResult>, TraceLog) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::recording();
        }
        let (outcome, results, log) = self
            .run_sharded_core(&mut TraceSource::new(trace), shards.shards())
            .expect("a Trace is time-ordered by construction");
        (outcome, results, log.expect("telemetry is enabled"))
    }

    /// [`Cluster::run_streamed`], sharded: pulls arrivals lazily from any
    /// [`ArrivalSource`] while draining event windows on worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::OutOfOrderArrival`] if the source yields
    /// arrivals out of time order.
    pub fn run_sharded_streamed<S: ArrivalSource>(
        self,
        shards: ShardSpec,
        source: S,
    ) -> Result<ClusterOutcome, ClusterError> {
        Ok(self.run_sharded_streamed_with_results(shards, source)?.0)
    }

    /// [`Cluster::run_streamed_with_results`], sharded (see
    /// [`Cluster::run_sharded_streamed`]).
    pub fn run_sharded_streamed_with_results<S: ArrivalSource>(
        self,
        shards: ShardSpec,
        mut source: S,
    ) -> Result<(ClusterOutcome, Vec<RunResult>), ClusterError> {
        let (outcome, results, _) = self.run_sharded_core(&mut source, shards.shards())?;
        Ok((outcome, results))
    }

    /// Spawns the worker pool (one thread per shard beyond the first, which
    /// the driver thread drains itself) and runs the shared core loop.
    /// Workers live for the whole run inside a [`std::thread::scope`], so
    /// non-`'static` policies work and a mid-run error still joins them.
    fn run_sharded_core<S: ArrivalSource>(
        self,
        source: &mut S,
        shard_count: usize,
    ) -> Result<(ClusterOutcome, Vec<RunResult>, Option<TraceLog>), ClusterError> {
        let k = shard_count.clamp(1, self.servers.len().max(1));
        if k <= 1 {
            return self.run_core(source, 1, None);
        }
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(k - 1);
            for _ in 1..k {
                let (task_tx, task_rx) = mpsc::channel::<Task<P>>();
                let (done_tx, done_rx) = mpsc::channel::<Shard<P>>();
                scope.spawn(move || worker_loop(task_rx, done_tx));
                workers.push(WorkerHandle {
                    tasks: task_tx,
                    done: done_rx,
                });
            }
            let pool = ShardPool { workers };
            self.run_core(source, k, Some(&pool))
        })
    }
}

/// A completion observed during an off-thread shard drain, replayed to the
/// fault layer at the barrier in global `(time, server)` order.
#[derive(Debug, Clone, Copy)]
struct CompletionNote {
    at: f64,
    server: usize,
    id: u64,
    latency: f64,
}

/// One shard of the fleet: a contiguous block of servers
/// `[base, base + servers.len())` with its own stamped heap. Between
/// global boundaries a shard's events are independent of every other
/// shard's, so shards drain concurrently; `dirty` and `notes` carry the
/// side effects (router-view refreshes, fault-layer completions) back to
/// the driver thread for deterministic barrier replay.
struct Shard<P: DvfsPolicy> {
    base: usize,
    servers: Vec<ServerSim<P>>,
    stamps: Vec<u64>,
    /// Heap entries carry *global* server indices, so merged serial drains
    /// order identically to the single-heap loop.
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Global indices of servers stepped during an off-thread drain, in
    /// step order (duplicates allowed; view refresh is idempotent).
    dirty: Vec<u32>,
    /// Completions observed during an off-thread drain, in step order —
    /// which within one shard is already `(time, server)` order.
    notes: Vec<CompletionNote>,
}

impl<P: DvfsPolicy> Default for Shard<P> {
    /// An empty placeholder, swapped in while the real shard is away on a
    /// worker thread.
    fn default() -> Self {
        Self {
            base: 0,
            servers: Vec::new(),
            stamps: Vec::new(),
            heap: BinaryHeap::new(),
            dirty: Vec::new(),
            notes: Vec::new(),
        }
    }
}

impl<P: DvfsPolicy> Shard<P> {
    /// The earliest still-valid event in this shard, as `(time, global
    /// server index)`. Pops stale entries on the way — safe, because a
    /// stale entry is never processed by any drain order.
    fn peek_due(&mut self) -> Option<(f64, usize)> {
        while let Some(&Reverse(entry)) = self.heap.peek() {
            if entry.stamp == self.stamps[entry.server - self.base] {
                return Some((entry.time, entry.server));
            }
            self.heap.pop();
        }
        None
    }

    /// Steps this shard's events in `(time, server)` order while they lie
    /// strictly before `limit`, recording stepped servers in `dirty` and
    /// (when `collect`) completions in `notes`. Runs on worker threads: no
    /// router views, no fault layer, no telemetry — those are driver-side
    /// and replayed at the barrier.
    fn drain(&mut self, limit: f64, collect: bool) {
        while let Some(&Reverse(entry)) = self.heap.peek() {
            if entry.time >= limit {
                break;
            }
            self.heap.pop();
            let local = entry.server - self.base;
            if entry.stamp != self.stamps[local] {
                continue; // stale: the server was stepped or offered work since
            }
            let stepped = self.servers[local].step();
            debug_assert!(stepped.is_some(), "a scheduled event must fire");
            if collect {
                if let Some(SimEvent::Completion(rec)) = &stepped {
                    self.notes.push(CompletionNote {
                        at: rec.completion,
                        server: entry.server,
                        id: rec.id,
                        latency: rec.latency(),
                    });
                }
            }
            self.dirty.push(entry.server as u32);
            self.stamps[local] += 1;
            if let Some(time) = self.servers[local].next_event_time() {
                self.heap.push(Reverse(HeapEntry {
                    time,
                    server: entry.server,
                    stamp: self.stamps[local],
                }));
            }
        }
    }
}

/// A drain assignment shipped to a worker: the shard travels by value and
/// comes back through the worker's `done` channel.
struct Task<P: DvfsPolicy> {
    shard: Shard<P>,
    limit: f64,
    collect: bool,
}

struct WorkerHandle<P: DvfsPolicy> {
    tasks: mpsc::Sender<Task<P>>,
    done: mpsc::Receiver<Shard<P>>,
}

impl<P: DvfsPolicy> WorkerHandle<P> {
    /// Collects a drained shard, spinning briefly before parking — the
    /// barrier round-trip is the per-arrival hot path.
    fn recv_done(&self) -> Shard<P> {
        for _ in 0..4096 {
            match self.done.try_recv() {
                Ok(shard) => return shard,
                Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
                Err(mpsc::TryRecvError::Disconnected) => panic!("shard worker exited mid-run"),
            }
        }
        self.done.recv().expect("shard worker exited mid-run")
    }
}

/// The per-run worker pool: worker `w` serves shard `w + 1` (the driver
/// thread drains shard 0 itself, overlapping with the workers).
struct ShardPool<P: DvfsPolicy> {
    workers: Vec<WorkerHandle<P>>,
}

/// A pool worker: receives drain tasks until the pool (and its sender) is
/// dropped at the end of the run. Spins briefly between tasks before
/// falling back to a blocking receive, so back-to-back barriers don't pay
/// an OS wakeup but an idle stretch doesn't burn a core.
fn worker_loop<P: DvfsPolicy>(tasks: mpsc::Receiver<Task<P>>, done: mpsc::Sender<Shard<P>>) {
    'serve: loop {
        let mut task = None;
        for spin in 0..4096 {
            match tasks.try_recv() {
                Ok(t) => {
                    task = Some(t);
                    break;
                }
                Err(mpsc::TryRecvError::Empty) if spin % 64 == 63 => std::thread::yield_now(),
                Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
                Err(mpsc::TryRecvError::Disconnected) => break 'serve,
            }
        }
        let mut task = match task {
            Some(t) => t,
            None => match tasks.recv() {
                Ok(t) => t,
                Err(_) => break 'serve,
            },
        };
        task.shard.drain(task.limit, task.collect);
        if done.send(task.shard).is_err() {
            break 'serve;
        }
    }
}

/// The driver's event-loop state: the fleet partitioned into shards (one
/// for the classic serial loop), the incrementally maintained router
/// views, and the static per-server labels the views carry.
struct EventLoop<P: DvfsPolicy> {
    shards: Vec<Shard<P>>,
    /// Global server index → owning shard.
    owner: Vec<u32>,
    views: Vec<ServerView>,
    capacities: Vec<f64>,
    classes: Vec<u32>,
    healths: Vec<ServerHealth>,
    /// Reused per-barrier scratch: which shards had due work this window.
    scratch_active: Vec<bool>,
    /// Reused per-barrier scratch: per-shard cursors for the notes merge.
    scratch_cursors: Vec<usize>,
}

impl<P: DvfsPolicy> EventLoop<P> {
    /// Partitions `servers` into `shard_count` contiguous balanced blocks
    /// (clamped to the fleet size) and seeds each shard's heap and every
    /// router view.
    fn new(
        servers: Vec<ServerSim<P>>,
        shard_count: usize,
        capacities: Vec<f64>,
        classes: Vec<u32>,
    ) -> Self {
        let n = servers.len();
        let k = shard_count.clamp(1, n.max(1));
        let mut owner = vec![0u32; n];
        let mut shards: Vec<Shard<P>> = Vec::with_capacity(k);
        let mut remaining = servers.into_iter();
        let mut base = 0usize;
        for s in 0..k {
            let size = n / k + usize::from(s < n % k);
            let block: Vec<ServerSim<P>> = remaining.by_ref().take(size).collect();
            for slot in &mut owner[base..base + size] {
                *slot = s as u32;
            }
            let mut shard = Shard {
                base,
                servers: block,
                stamps: vec![0; size],
                heap: BinaryHeap::with_capacity(2 * size),
                dirty: Vec::new(),
                notes: Vec::new(),
            };
            for local in 0..size {
                if let Some(time) = shard.servers[local].next_event_time() {
                    shard.heap.push(Reverse(HeapEntry {
                        time,
                        server: base + local,
                        stamp: 0,
                    }));
                }
            }
            base += size;
            shards.push(shard);
        }
        let mut state = Self {
            shards,
            owner,
            views: Vec::with_capacity(n),
            capacities,
            classes,
            healths: vec![ServerHealth::Up; n],
            scratch_active: Vec::new(),
            scratch_cursors: Vec::new(),
        };
        for i in 0..n {
            let view = state.view_of(i);
            state.views.push(view);
        }
        state
    }

    /// Number of servers in the fleet.
    fn len(&self) -> usize {
        self.owner.len()
    }

    fn server(&self, i: usize) -> &ServerSim<P> {
        let shard = &self.shards[self.owner[i] as usize];
        &shard.servers[i - shard.base]
    }

    fn server_mut(&mut self, i: usize) -> &mut ServerSim<P> {
        let shard = &mut self.shards[self.owner[i] as usize];
        &mut shard.servers[i - shard.base]
    }

    /// Every server, in global index order (shards are contiguous
    /// ascending blocks).
    fn servers(&self) -> impl Iterator<Item = &ServerSim<P>> {
        self.shards.iter().flat_map(|shard| shard.servers.iter())
    }

    /// Whether any server still has a pending event.
    fn has_events(&self) -> bool {
        self.servers().any(|s| s.next_event_time().is_some())
    }

    fn view_of(&self, i: usize) -> ServerView {
        let s = self.server(i);
        ServerView {
            index: i,
            in_flight: s.in_flight(),
            admitted: s.pending_requests(),
            queued: s.queued_len(),
            current_freq: s.current_freq(),
            target_freq: s.target_freq(),
            busy: !s.is_idle(),
            capacity: self.capacities[i],
            class: self.classes[i],
            health: self.healths[i],
        }
    }

    /// Re-registers server `i` after its state changed: refreshes its router
    /// view, advances its stamp (invalidating any entry already in its
    /// shard's heap), and pushes its current next-event time, if any.
    fn schedule(&mut self, i: usize) {
        let view = self.view_of(i);
        self.views[i] = view;
        let shard = &mut self.shards[self.owner[i] as usize];
        let local = i - shard.base;
        shard.stamps[local] += 1;
        if let Some(time) = shard.servers[local].next_event_time() {
            shard.heap.push(Reverse(HeapEntry {
                time,
                server: i,
                stamp: shard.stamps[local],
            }));
        }
    }

    /// Drains every fleet event strictly before `limit`, choosing between
    /// the merged serial order and the sharded parallel path.
    ///
    /// The parallel path is taken only when it is provably bit-identical
    /// to the serial one: server simulations are independent inside an
    /// event window, and with hedging disabled the fault layer's
    /// per-completion bookkeeping (retiring pending attempts) commutes —
    /// the barrier replay in global `(time, server)` order reproduces the
    /// serial layer state exactly. A hedged completion, by contrast,
    /// cancels the losing copy on *another* server mid-window, so hedged
    /// runs always use the merged serial drain.
    fn drain(
        &mut self,
        limit: f64,
        pool: Option<&ShardPool<P>>,
        layer: Option<&mut FaultLayer>,
        tele: &mut Telemetry,
    ) {
        match pool {
            Some(pool) if !layer.as_ref().is_some_and(|l| l.hedging_enabled()) => {
                self.drain_parallel(limit, pool, layer);
            }
            _ => self.drain_serial(limit, layer, tele),
        }
    }

    /// Steps fleet events in `(time, server)` order while they lie strictly
    /// before `limit`, merging across shard heaps (with one shard this is
    /// the classic single-heap loop). When a fault layer is attached,
    /// completions are reported to it so pending timeouts are retired — and
    /// a completion that resolves a hedged pair cancels the losing copy on
    /// the spot (first-completion-wins).
    fn drain_serial(
        &mut self,
        limit: f64,
        mut layer: Option<&mut FaultLayer>,
        tele: &mut Telemetry,
    ) {
        loop {
            // The earliest still-valid entry across shards, ordered by
            // (time, server) — exactly the single-heap pop order, since a
            // server lives in exactly one shard.
            let mut best: Option<(f64, usize, usize)> = None;
            for (s, shard) in self.shards.iter_mut().enumerate() {
                if let Some((time, server)) = shard.peek_due() {
                    if time < limit && best.is_none_or(|(bt, bs, _)| (time, server) < (bt, bs)) {
                        best = Some((time, server, s));
                    }
                }
            }
            let Some((_, server, s)) = best else { break };
            let stepped = {
                let shard = &mut self.shards[s];
                shard.heap.pop();
                shard.servers[server - shard.base].step()
            };
            debug_assert!(stepped.is_some(), "a scheduled event must fire");
            if let (Some(SimEvent::Completion(rec)), Some(l)) = (&stepped, layer.as_deref_mut()) {
                if let Some(res) = l.on_completion(rec.id, server, rec.latency()) {
                    resolve_hedge(self, tele, rec.id, rec.completion, server, res);
                }
            }
            self.schedule(server);
        }
    }

    /// Drains shards concurrently up to `limit`: dispatches every shard
    /// with due work to its worker (the driver thread takes the first
    /// active shard itself), then replays the side effects at the barrier —
    /// router-view refreshes, and fault-layer completions merged across
    /// shards in global `(time, server)` order.
    fn drain_parallel(&mut self, limit: f64, pool: &ShardPool<P>, layer: Option<&mut FaultLayer>) {
        let k = self.shards.len();
        self.scratch_active.clear();
        self.scratch_active.resize(k, false);
        let mut active = 0usize;
        let mut first = usize::MAX;
        for s in 0..k {
            if self.shards[s].peek_due().is_some_and(|(t, _)| t < limit) {
                self.scratch_active[s] = true;
                active += 1;
                first = first.min(s);
            }
        }
        if active == 0 {
            return;
        }
        let collect = layer.is_some();
        for s in (first + 1)..k {
            if self.scratch_active[s] {
                let shard = std::mem::take(&mut self.shards[s]);
                pool.workers[s - 1]
                    .tasks
                    .send(Task {
                        shard,
                        limit,
                        collect,
                    })
                    .expect("shard worker exited mid-run");
            }
        }
        self.shards[first].drain(limit, collect);
        for s in (first + 1)..k {
            if self.scratch_active[s] {
                self.shards[s] = pool.workers[s - 1].recv_done();
            }
        }

        // Barrier, part 1: refresh the router view of every server stepped
        // off-thread. Order doesn't matter (refresh is idempotent and views
        // are only read after the drain); the work is the same O(events)
        // view writes the serial path does inline.
        for s in first..k {
            if !self.scratch_active[s] {
                continue;
            }
            let dirty = std::mem::take(&mut self.shards[s].dirty);
            for &i in &dirty {
                let view = self.view_of(i as usize);
                self.views[i as usize] = view;
            }
            let mut dirty = dirty;
            dirty.clear();
            self.shards[s].dirty = dirty;
        }

        // Barrier, part 2: replay completions to the fault layer in global
        // (time, server) order — a k-way merge over the shards' note lists,
        // each already sorted by its own drain order. With hedging disabled
        // (guaranteed on this path) no completion resolves a hedge, so
        // replay leaves the layer in exactly the serial drain's state.
        if let Some(l) = layer {
            self.scratch_cursors.clear();
            self.scratch_cursors.resize(k, 0);
            loop {
                let mut best: Option<(f64, usize, usize)> = None;
                for s in first..k {
                    if let Some(note) = self.shards[s].notes.get(self.scratch_cursors[s]) {
                        if best.is_none_or(|(bt, bs, _)| (note.at, note.server) < (bt, bs)) {
                            best = Some((note.at, note.server, s));
                        }
                    }
                }
                let Some((_, _, s)) = best else { break };
                let note = self.shards[s].notes[self.scratch_cursors[s]];
                self.scratch_cursors[s] += 1;
                let resolved = l.on_completion(note.id, note.server, note.latency);
                debug_assert!(resolved.is_none(), "hedged runs must drain serially");
            }
            for shard in &mut self.shards {
                shard.notes.clear();
            }
        }
    }
}

/// Cancels the losing copy of a resolved hedged pair after the other copy
/// completed at `at` on `winner`. The layer's `loser` server is a hint — a
/// migrator may have moved the copy since it was tracked — so a miss falls
/// back to a fleet-wide search. Cancellation is safe here because every
/// fleet event strictly before `at` has already been processed: the losing
/// copy's next event (if any) cannot lie in the cancelled past.
fn resolve_hedge<P: DvfsPolicy>(
    state: &mut EventLoop<P>,
    tele: &mut Telemetry,
    id: u64,
    at: f64,
    winner: usize,
    res: HedgeResolution,
) {
    if res.hedge_won {
        tele.request_event(
            id,
            RequestEvent {
                at,
                kind: RequestEventKind::HedgeWon {
                    server: winner as u32,
                },
            },
        );
    }
    // A server that coasted past `at` (e.g. under an earlier fault
    // alignment at this same boundary) cancels at its own clock instead.
    let cancel = |state: &mut EventLoop<P>, j: usize| {
        let t = at.max(state.server(j).now());
        state.server_mut(j).cancel(t, id).is_some()
    };
    let found = if cancel(state, res.loser) {
        Some(res.loser)
    } else {
        (0..state.len()).find(|&j| j != res.loser && cancel(state, j))
    };
    if let Some(j) = found {
        state.schedule(j);
        tele.request_event(
            id,
            RequestEvent {
                at,
                kind: RequestEventKind::HedgeCancelled { server: j as u32 },
            },
        );
    }
}

/// Steps one server's events up to and including `t` (reporting completions
/// to the fault layer, resolving hedged pairs), then aligns its clock to
/// exactly `t` so a fault op applies at its scripted instant — the
/// straggler factor, stuck frequency, or failure takes effect at `t`, not
/// at the server's last event.
fn align_server_to<P: DvfsPolicy>(
    state: &mut EventLoop<P>,
    i: usize,
    t: f64,
    layer: &mut FaultLayer,
    tele: &mut Telemetry,
) {
    while state.server(i).next_event_time().is_some_and(|te| te <= t) {
        if let Some(SimEvent::Completion(rec)) = state.server_mut(i).step() {
            if let Some(res) = layer.on_completion(rec.id, i, rec.latency()) {
                resolve_hedge(state, tele, rec.id, rec.completion, i, res);
            }
        }
    }
    state.server_mut(i).coast_to(t);
}

/// Applies every scripted op, retry delivery, hedge launch, and attempt
/// timeout due at `now`, in that order (ops change health, which retry and
/// hedge routing observe; hedges precede timeouts so a launch due at `now`
/// supersedes a timeout due at the same instant; timeouts run last so a
/// retry delivered at `now` cannot time out at `now`). All server mutation
/// happens here, against the same views and scheduling discipline as
/// routing — one deterministic sequence regardless of sweep threading.
fn run_faults<P: DvfsPolicy>(
    layer: &mut FaultLayer,
    tele: &mut Telemetry,
    now: f64,
    router: &mut dyn Router,
    state: &mut EventLoop<P>,
) {
    while let Some(op) = layer.pop_due_op(now) {
        align_server_to(state, op.server, now, layer, tele);
        let effective = layer.track_op(&op);
        match op.kind {
            OpKind::Crash => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::Down,
                });
                let in_flight = state.server_mut(op.server).fail(now);
                state.healths[op.server] = layer.health_of(op.server);
                if let Some(spec) = in_flight {
                    if layer.copy_lost(spec.id, op.server) {
                        // One copy of a hedged pair died with the server;
                        // the twin is still live, so there is nothing to
                        // salvage or drop.
                    } else if layer.policy().salvage_in_flight {
                        layer.salvage(spec, now);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Salvaged {
                                    server: op.server as u32,
                                },
                            },
                        );
                    } else {
                        layer.drop_in_flight(spec.id);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Dropped {
                                    server: op.server as u32,
                                },
                            },
                        );
                    }
                }
                state.schedule(op.server);
                if layer.policy().drain_on_crash {
                    let mut stranded = Vec::new();
                    while let Some(spec) = state.server_mut(op.server).steal_queued() {
                        stranded.push(spec);
                    }
                    state.schedule(op.server);
                    // Stealing pops the FIFO back-to-front; re-routing in
                    // reverse preserves arrival order across the receivers.
                    for spec in stranded.into_iter().rev() {
                        let target = router.route(&spec, &state.views);
                        state.server_mut(target).inject(now, spec);
                        layer.requeued(spec.id, op.server, target);
                        tele.request_event(
                            spec.id,
                            RequestEvent {
                                at: now,
                                kind: RequestEventKind::Requeued {
                                    from: op.server as u32,
                                    to: target as u32,
                                },
                            },
                        );
                        state.schedule(target);
                    }
                }
            }
            OpKind::Recover => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::Up,
                });
                if state.server(op.server).is_down() {
                    state.server_mut(op.server).recover(now);
                }
                if state.server(op.server).stuck_freq().is_some() {
                    state.server_mut(op.server).stick_freq(None);
                }
                state.healths[op.server] = layer.health_of(op.server);
                state.schedule(op.server);
            }
            OpKind::StraggleStart { slowdown, .. } => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::StraggleStart { slowdown },
                });
                state.server_mut(op.server).set_slowdown(slowdown);
                state.healths[op.server] = layer.health_of(op.server);
                state.schedule(op.server);
            }
            OpKind::StraggleEnd => {
                if effective {
                    state.server_mut(op.server).set_slowdown(1.0);
                    tele.server_event(ServerEvent {
                        at: now,
                        server: op.server as u32,
                        kind: ServerEventKind::StraggleEnd,
                    });
                }
                state.healths[op.server] = layer.health_of(op.server);
                state.schedule(op.server);
            }
            OpKind::Stick { level } => {
                tele.server_event(ServerEvent {
                    at: now,
                    server: op.server as u32,
                    kind: ServerEventKind::FreqStuck {
                        mhz: level.map(|f| f.mhz()),
                    },
                });
                state.server_mut(op.server).stick_freq(level);
                state.schedule(op.server);
            }
        }
    }
    // Retry deliveries due now, including work salvaged from a crash at
    // this very instant. The router sees live (post-fault) views; wrap it
    // in `HealthAware` to keep retries off down or straggling servers.
    while let Some((spec, attempt)) = layer.pop_due_retry(now) {
        let target = router.route(&spec, &state.views);
        state.server_mut(target).inject(now, spec);
        layer.on_routed(spec, target, attempt, now);
        tele.request_event(
            spec.id,
            RequestEvent {
                at: now,
                kind: RequestEventKind::Routed {
                    server: target as u32,
                    attempt,
                },
            },
        );
        state.schedule(target);
    }
    // Hedge launches due now: inject a duplicate of the still-pending
    // attempt on the shortest-queue routable server other than the one
    // already holding it (the same `(in_flight, index)` key JSQ uses).
    // With no second routable candidate the launch is skipped — hedging
    // never stacks both copies on one server or feeds a down one.
    while let Some((spec, attempt, primary)) = layer.pop_due_hedge(now) {
        let target = state
            .views
            .iter()
            .filter(|v| v.index != primary && v.health.routable())
            .min_by_key(|v| (v.in_flight, v.index))
            .map(|v| v.index);
        let Some(target) = target else {
            continue;
        };
        state.server_mut(target).inject(now, spec);
        layer.hedge_launched(spec.id, target);
        tele.request_event(
            spec.id,
            RequestEvent {
                at: now,
                kind: RequestEventKind::Hedged {
                    server: target as u32,
                    attempt,
                },
            },
        );
        state.schedule(target);
    }
    // Attempt timeouts: pull timed-out requests off their queues and hand
    // them to the retry schedule. Work already in service is never
    // interrupted — the timeout is recorded and the attempt runs out.
    while let Some((id, attempt, server)) = layer.pop_due_timeout(now) {
        if let Some(spec) = state.server_mut(server).remove_queued(id) {
            tele.request_event(
                id,
                RequestEvent {
                    at: now,
                    kind: RequestEventKind::TimedOut {
                        server: server as u32,
                        attempt,
                    },
                },
            );
            match layer.retry_or_drop(spec, attempt, now) {
                Some(due) => tele.request_event(
                    id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Backoff { until: due },
                    },
                ),
                None => tele.request_event(
                    id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Dropped {
                            server: server as u32,
                        },
                    },
                ),
            }
            state.schedule(server);
        }
    }
}

/// Takes one telemetry sample window ending at `now`: per-server mean power
/// over the window (via a dedicated [`EpochMeter`], independent of the
/// fleet controller's), queue/in-flight/DVFS snapshots from the live router
/// views, and cumulative retry/timeout counters from the fault layer.
#[allow(clippy::too_many_arguments)]
fn sample_fleet<P: DvfsPolicy>(
    tele: &mut Telemetry,
    meter: &mut EpochMeter,
    powers: &mut Vec<f64>,
    now: f64,
    state: &EventLoop<P>,
    layer: Option<&FaultLayer>,
    power: &CorePowerModel,
) {
    let start = meter.last_time();
    meter.measure(state.servers(), power, now, powers);
    let per_server: Vec<ServerSample> = state
        .views
        .iter()
        .zip(powers.iter())
        .map(|(view, &watts)| ServerSample {
            queued: view.queued as u32,
            in_flight: view.in_flight as u32,
            freq_mhz: view.current_freq.mhz(),
            power: watts,
            down: view.health == ServerHealth::Down,
        })
        .collect();
    let (retries, timeouts) = layer.map_or((0, 0), |l| {
        (l.stats().retries as u64, l.stats().timeouts as u64)
    });
    tele.epoch_sample(EpochSample {
        start,
        end: now,
        power: powers.iter().sum(),
        queued: per_server.iter().map(|s| s.queued).sum(),
        in_flight: per_server.iter().map(|s| s.in_flight).sum(),
        completions: 0, // filled at finalize by bucketing records
        retries,
        timeouts,
        per_server,
    });
}

/// Scratch state for the migration and power-capping hooks.
struct Hooks {
    meter: EpochMeter,
    power: CorePowerModel,
    powers: Vec<f64>,
    commands: Vec<FleetCommand>,
    moves: Vec<Migration>,
    batch: Vec<RequestSpec>,
    base_bounds: Vec<Option<f64>>,
    migrated: usize,
}

impl Hooks {
    /// Runs one migration boundary: plan against the live views, then move
    /// each planned batch donor-tail → receiver, preserving arrival order
    /// within the batch.
    fn run_migration<P: DvfsPolicy>(
        &mut self,
        migrator: &mut dyn Migrator,
        tele: &mut Telemetry,
        now: f64,
        state: &mut EventLoop<P>,
    ) {
        self.moves.clear();
        migrator.plan(now, &state.views, &mut self.moves);
        for k in 0..self.moves.len() {
            let m = self.moves[k];
            assert!(
                m.from < state.len() && m.to < state.len() && m.from != m.to,
                "migrator {} planned an invalid move {m:?}",
                migrator.name()
            );
            self.batch.clear();
            for _ in 0..m.count {
                match state.server_mut(m.from).steal_queued() {
                    Some(spec) => self.batch.push(spec),
                    None => break, // queue shorter than planned: move less
                }
            }
            if self.batch.is_empty() {
                continue;
            }
            self.migrated += self.batch.len();
            // Stealing pops the donor's FIFO tail back-to-front; injecting
            // in reverse restores arrival order on the receiver. Injection
            // happens at the boundary instant, advancing the receiver's
            // clock to `now` first.
            for spec in self.batch.drain(..).rev() {
                state.server_mut(m.to).inject(now, spec);
                tele.request_event(
                    spec.id,
                    RequestEvent {
                        at: now,
                        kind: RequestEventKind::Migrated {
                            from: m.from as u32,
                            to: m.to as u32,
                        },
                    },
                );
            }
            state.schedule(m.from);
            state.schedule(m.to);
        }
    }

    /// Runs one fleet-controller epoch: measure per-server power over the
    /// closing window, let the controller command, and apply the commands.
    fn run_epoch<P: DvfsPolicy>(
        &mut self,
        ctl: &mut dyn FleetController,
        now: f64,
        elapsed: f64,
        state: &mut EventLoop<P>,
    ) {
        if elapsed > 0.0 {
            self.meter
                .measure(state.servers(), &self.power, now, &mut self.powers);
        } else {
            self.powers.clear();
            self.powers.resize(state.len(), 0.0);
        }
        let power_views: Vec<ServerPowerView<'_>> = state
            .views
            .iter()
            .zip(state.servers())
            .zip(&self.powers)
            .map(|((&view, server), &measured_power)| ServerPowerView {
                view,
                dvfs: &server.config().dvfs,
                measured_power,
            })
            .collect();
        self.commands.clear();
        ctl.on_epoch(now, elapsed, &power_views, &mut self.commands);
        drop(power_views);
        for k in 0..self.commands.len() {
            match self.commands[k] {
                FleetCommand::SetCeiling { server, ceiling } => {
                    assert!(server < state.len(), "ceiling for unknown server");
                    state.server_mut(server).retarget(ceiling);
                    // A retarget can start a V/F transition, changing the
                    // server's next event time.
                    state.schedule(server);
                }
                FleetCommand::ScaleBound { server, scale } => {
                    assert!(server < state.len(), "bound scale for unknown server");
                    assert!(
                        scale > 0.0 && scale.is_finite(),
                        "bound scale must be positive and finite"
                    );
                    if let Some(base) = self.base_bounds[server] {
                        state
                            .server_mut(server)
                            .policy_mut()
                            .set_latency_bound(base * scale);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{JoinShortestQueue, Passthrough, RoundRobin};
    use rubik_sim::{FixedFrequencyPolicy, RequestSpec};

    fn config() -> SimConfig {
        SimConfig::paper_simulated()
    }

    fn fixed(config: &SimConfig) -> impl FnMut(usize) -> FixedFrequencyPolicy + '_ {
        move |_| FixedFrequencyPolicy::new(config.dvfs.nominal())
    }

    fn burst(n: usize, gap: f64) -> Trace {
        (0..n as u64)
            .map(|i| RequestSpec::new(i, i as f64 * gap, 1.2e6, 0.0))
            .collect()
    }

    #[test]
    fn all_requests_complete_across_the_fleet() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 4, Box::new(RoundRobin::new()), fixed(&cfg));
        let outcome = cluster.run(&burst(200, 1e-4));
        assert_eq!(outcome.requests, 200);
        assert_eq!(outcome.servers(), 4);
        // Round-robin spreads a uniform stream evenly.
        for s in &outcome.per_server {
            assert_eq!(s.requests, 50);
        }
        assert!(outcome.tail_latency > 0.0);
        assert!(outcome.fleet_energy > 0.0);
    }

    #[test]
    fn jsq_beats_round_robin_on_tail_under_bursts() {
        // Requests arrive in simultaneous pairs; with 2 servers, round-robin
        // sends each pair to both servers (fine), but a skewed stream shows
        // the difference. Use simultaneous triples on 2 servers: JSQ never
        // stacks 3 on one server, round-robin does every other round.
        let cfg = config();
        let trace: Trace = (0..60u64)
            .map(|i| RequestSpec::new(i, (i / 3) as f64 * 2e-3, 2.4e6, 0.0))
            .collect();
        let rr = Cluster::new(cfg.clone(), 2, Box::new(RoundRobin::new()), fixed(&cfg));
        let jsq = Cluster::new(
            cfg.clone(),
            2,
            Box::new(JoinShortestQueue::new()),
            fixed(&cfg),
        );
        let rr_out = rr.run(&trace);
        let jsq_out = jsq.run(&trace);
        assert_eq!(rr_out.requests, 60);
        assert_eq!(jsq_out.requests, 60);
        assert!(
            jsq_out.tail_latency <= rr_out.tail_latency + 1e-12,
            "JSQ tail {} vs RR tail {}",
            jsq_out.tail_latency,
            rr_out.tail_latency
        );
    }

    #[test]
    fn empty_trace_produces_empty_outcome() {
        let cfg = config();
        let cluster = Cluster::new(cfg.clone(), 3, Box::new(Passthrough), fixed(&cfg));
        let (outcome, results) = cluster.run_with_results(&Trace::default());
        assert_eq!(outcome.requests, 0);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.records().is_empty());
        }
    }

    #[test]
    fn run_is_deterministic_for_a_fixed_input() {
        let cfg = config();
        let trace = burst(120, 3e-4);
        let run =
            |router: Box<dyn Router>| Cluster::new(cfg.clone(), 3, router, fixed(&cfg)).run(&trace);
        let a = run(Box::new(JoinShortestQueue::new()));
        let b = run(Box::new(JoinShortestQueue::new()));
        assert_eq!(a, b);
    }

    #[test]
    fn boxed_policies_allow_heterogeneous_fleets() {
        let cfg = config();
        let slow = cfg.dvfs.min();
        let fast = cfg.dvfs.nominal();
        let cluster = Cluster::new(
            cfg.clone(),
            2,
            Box::new(RoundRobin::new()),
            |i| -> Box<dyn DvfsPolicy> {
                Box::new(FixedFrequencyPolicy::new(if i == 0 { slow } else { fast }))
            },
        );
        let outcome = cluster.run(&burst(40, 2e-3));
        // The slow server burns less power but is slower per request.
        assert!(outcome.per_server[0].tail_latency > outcome.per_server[1].tail_latency);
        assert!(outcome.per_server[0].busy_time > outcome.per_server[1].busy_time);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_cluster_panics() {
        let cfg = config();
        let _ = Cluster::new(cfg.clone(), 0, Box::new(Passthrough), fixed(&cfg));
    }
}
