//! `rubik-cluster`: multi-server serving behind a load balancer.
//!
//! The paper evaluates Rubik one core at a time; a datacenter runs *fleets*.
//! This crate models a cluster of N simulated servers — each an independent
//! open-loop [`rubik_sim::ServerSim`] with its **own** DVFS controller
//! (Rubik per server) — behind a pluggable [`Router`]. A single
//! deterministic binary-heap event loop multiplexes every server, so
//! thousands of servers fit in one process with no threads per server;
//! fleet-scale parallelism comes from sweeping many cluster configurations
//! on `rubik-sweep`.
//!
//! The pieces:
//!
//! * [`Cluster`] — the driver: routes each arrival of a global request
//!   stream, advances the globally earliest server event, aggregates a
//!   [`ClusterOutcome`] (fleet power, global tail latency, per-server
//!   residency),
//! * [`Router`] — the load-balancing policy, with [`RoundRobin`],
//!   [`JoinShortestQueue`], and [`PowerAware`] (routes on each server's
//!   live occupancy and DVFS operating point) implementations, plus the
//!   [`Passthrough`] identity router,
//! * [`fleet_trace`] — scales an application's arrival process to a fleet.
//!
//! A 1-server cluster behind [`Passthrough`] reproduces the standalone
//! simulator **bitwise** (pinned in `tests/cluster_equivalence.rs`), so
//! cluster results compose with every single-server number in this
//! repository.
//!
//! # Example: a small Rubik fleet behind JSQ
//!
//! ```
//! use rubik_cluster::{fleet_trace, Cluster, JoinShortestQueue};
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let profile = AppProfile::masstree();
//!
//! // 8 servers at 40% load each; 800 requests arriving fleet-wide.
//! let trace = fleet_trace(&profile, 0.4, 8, 800, 42);
//! let cluster = Cluster::new(
//!     config.clone(),
//!     8,
//!     Box::new(JoinShortestQueue::new()),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! );
//! let outcome = cluster.run(&trace);
//!
//! assert_eq!(outcome.requests, 800);
//! assert_eq!(outcome.servers(), 8);
//! assert!(outcome.tail_latency > 0.0);
//! assert!(outcome.fleet_power > 0.0);
//! let per_server: usize = outcome.per_server.iter().map(|s| s.requests).sum();
//! assert_eq!(per_server, 800);
//! ```
//!
//! Swapping `FixedFrequencyPolicy` for `rubik_core::RubikController` (one
//! instance per server, seeded from the head of the trace) gives each
//! server the paper's controller; the cluster driver never looks inside a
//! policy, so every scheme in `rubik-core` works unchanged.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod outcome;
mod router;

pub use driver::Cluster;
pub use outcome::{ClusterOutcome, ServerOutcome};
pub use router::{JoinShortestQueue, Passthrough, PowerAware, RoundRobin, Router, ServerView};

use rubik_sim::Trace;
use rubik_workloads::{AppProfile, WorkloadGenerator};

/// Generates the arrival stream of a whole fleet: `servers` servers each at
/// `per_server_load` (fraction of one core's nominal capacity) produce a
/// pooled Poisson stream at `per_server_load × servers` times one core's
/// capacity.
///
/// # Panics
///
/// Panics if `servers == 0` or the load is not positive.
pub fn fleet_trace(
    profile: &AppProfile,
    per_server_load: f64,
    servers: usize,
    requests: usize,
    seed: u64,
) -> Trace {
    assert!(servers > 0, "a fleet needs at least one server");
    WorkloadGenerator::new(profile.clone(), seed)
        .steady_trace(per_server_load * servers as f64, requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::Freq;

    #[test]
    fn fleet_trace_scales_rate_with_servers() {
        let profile = AppProfile::masstree();
        let one = fleet_trace(&profile, 0.4, 1, 4000, 7);
        let four = fleet_trace(&profile, 0.4, 4, 4000, 7);
        // Same request count, ~4x the arrival rate => ~1/4 the duration.
        let ratio = one.duration() / four.duration();
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
        // Offered load relative to one core scales accordingly.
        let nominal = Freq::from_mhz(2400);
        assert!(four.offered_load(nominal) > 3.0 * one.offered_load(nominal) / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn fleet_trace_rejects_zero_servers() {
        let _ = fleet_trace(&AppProfile::masstree(), 0.4, 0, 100, 1);
    }
}
