//! AdrenalineOracle: idealized Adrenaline (Hsu et al., HPCA 2015).
//!
//! Adrenaline boosts queries that are likely to be long, using
//! application-level hints. The paper compares against *AdrenalineOracle*
//! (Sec. 5.2): an idealized version that classifies long requests perfectly,
//! with the long/short threshold and the boosted/unboosted frequency pair
//! chosen by an offline sweep, separately for each application and load.
//!
//! [`AdrenalineOracle::train`] performs that sweep on a training trace;
//! the resulting [`AdrenalinePolicy`] is a [`DvfsPolicy`] that runs the core
//! at the boosted frequency whenever the request *in service* is long and at
//! the base frequency otherwise.

use rubik_sim::{DvfsConfig, DvfsPolicy, Freq, PolicyDecision, RequestRecord, ServerState, Trace};
use serde::{Deserialize, Serialize};

use crate::replay::{replay, replay_energy, replay_tail};

/// Trainer for the idealized Adrenaline scheme.
#[derive(Debug, Clone)]
pub struct AdrenalineOracle {
    dvfs: DvfsConfig,
    quantile: f64,
    /// Candidate thresholds, as quantiles of the compute-cycle distribution.
    threshold_quantiles: Vec<f64>,
}

/// The tuned two-frequency policy produced by [`AdrenalineOracle::train`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdrenalinePolicy {
    /// Frequency for short (unboosted) requests.
    pub base_freq: Freq,
    /// Frequency for long (boosted) requests.
    pub boost_freq: Freq,
    /// Requests with more compute cycles than this are considered long.
    pub threshold_cycles: f64,
}

impl AdrenalineOracle {
    /// Creates a trainer over the given DVFS domain and tail quantile, with
    /// the default threshold sweep (50th/75th/90th percentiles of request
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if the quantile is not in `(0, 1)`.
    pub fn new(dvfs: DvfsConfig, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        Self {
            dvfs,
            quantile,
            threshold_quantiles: vec![0.5, 0.75, 0.9],
        }
    }

    /// Sweeps thresholds and frequency pairs on `trace`, returning the
    /// configuration with the lowest active energy whose tail latency meets
    /// `latency_bound`. If no configuration meets the bound, returns the one
    /// with the lowest tail latency (both frequencies at maximum is always a
    /// candidate).
    pub fn train<P>(&self, trace: &Trace, latency_bound: f64, active_power: P) -> AdrenalinePolicy
    where
        P: Fn(Freq) -> f64,
    {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        let levels = self.dvfs.levels();

        // Candidate thresholds from the trace's own compute-cycle distribution
        // (the oracle knows request lengths perfectly).
        let mut cycles: Vec<f64> = trace.requests().iter().map(|r| r.compute_cycles).collect();
        cycles.sort_by(|a, b| a.partial_cmp(b).expect("finite cycles"));
        let thresholds: Vec<f64> = if cycles.is_empty() {
            vec![f64::INFINITY]
        } else {
            self.threshold_quantiles
                .iter()
                .map(|&q| cycles[((cycles.len() - 1) as f64 * q) as usize])
                .collect()
        };

        let mut best: Option<(AdrenalinePolicy, f64)> = None;
        let mut best_infeasible: Option<(AdrenalinePolicy, f64)> = None;

        for &threshold in &thresholds {
            for (bi, &base) in levels.iter().enumerate() {
                for &boost in &levels[bi..] {
                    let freqs: Vec<Freq> = trace
                        .requests()
                        .iter()
                        .map(|r| {
                            if r.compute_cycles > threshold {
                                boost
                            } else {
                                base
                            }
                        })
                        .collect();
                    let records = replay(trace, &freqs);
                    let tail = replay_tail(&records, self.quantile).unwrap_or(0.0);
                    let energy = replay_energy(trace, &freqs, &active_power);
                    let policy = AdrenalinePolicy {
                        base_freq: base,
                        boost_freq: boost,
                        threshold_cycles: threshold,
                    };
                    if tail <= latency_bound {
                        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
                            best = Some((policy, energy));
                        }
                    } else if best_infeasible.as_ref().is_none_or(|(_, t)| tail < *t) {
                        best_infeasible = Some((policy, tail));
                    }
                }
            }
        }

        best.or(best_infeasible)
            .map(|(p, _)| p)
            .unwrap_or(AdrenalinePolicy {
                base_freq: self.dvfs.max(),
                boost_freq: self.dvfs.max(),
                threshold_cycles: 0.0,
            })
    }
}

impl AdrenalinePolicy {
    /// Whether a request with the given compute demand is boosted.
    pub fn is_long(&self, compute_cycles: f64) -> bool {
        compute_cycles > self.threshold_cycles
    }

    /// The per-request frequency assignment this policy induces on a trace
    /// (used by the replay-based experiments).
    pub fn assign(&self, trace: &Trace) -> Vec<Freq> {
        trace
            .requests()
            .iter()
            .map(|r| {
                if self.is_long(r.compute_cycles) {
                    self.boost_freq
                } else {
                    self.base_freq
                }
            })
            .collect()
    }
}

impl DvfsPolicy for AdrenalinePolicy {
    fn name(&self) -> &str {
        "adrenaline-oracle"
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        PolicyDecision::SetFrequency(self.frequency_for(state))
    }

    fn on_completion(&mut self, state: &ServerState, _record: &RequestRecord) -> PolicyDecision {
        PolicyDecision::SetFrequency(self.frequency_for(state))
    }

    fn idle_frequency(&self) -> Option<Freq> {
        Some(self.base_freq)
    }
}

impl AdrenalinePolicy {
    fn frequency_for(&self, state: &ServerState) -> Freq {
        match &state.in_service {
            Some(r) if self.is_long(r.oracle_compute_cycles) => self.boost_freq,
            Some(_) => self.base_freq,
            None => self.base_freq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_oracle::StaticOracle;
    use rubik_workloads::{AppProfile, ServiceShape, WorkloadGenerator};

    fn power(f: Freq) -> f64 {
        let v = 0.65 + (f.ghz() - 0.8) / 2.6 * 0.4;
        2.6 * v * v * f.ghz() + 1.1 * v
    }

    #[test]
    fn trained_policy_meets_the_bound_on_the_training_trace() {
        let dvfs = DvfsConfig::haswell_like();
        let mut g = WorkloadGenerator::new(AppProfile::xapian(), 1);
        let trace = g.steady_trace(0.4, 600);
        let bound = StaticOracle::new(dvfs.clone(), 0.95)
            .tail_at(&trace, Freq::from_mhz(2400))
            .unwrap();
        let policy = AdrenalineOracle::new(dvfs, 0.95).train(&trace, bound, power);
        let freqs = policy.assign(&trace);
        let tail = replay_tail(&replay(&trace, &freqs), 0.95).unwrap();
        assert!(tail <= bound * 1.001, "tail {tail} vs bound {bound}");
        assert!(policy.boost_freq >= policy.base_freq);
    }

    #[test]
    fn adrenaline_saves_no_more_energy_than_per_request_freedom_allows() {
        // Sanity: Adrenaline's two-frequency schedule cannot beat assigning
        // every request the base frequency if the base alone meets the bound.
        let dvfs = DvfsConfig::haswell_like();
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 2);
        let trace = g.steady_trace(0.3, 600);
        let so = StaticOracle::new(dvfs.clone(), 0.95);
        let bound = so.tail_at(&trace, Freq::from_mhz(2400)).unwrap();
        let static_freq = so.lowest_feasible_freq(&trace, bound);
        let static_energy = replay_energy(&trace, &vec![static_freq; trace.len()], power);

        let policy = AdrenalineOracle::new(dvfs, 0.95).train(&trace, bound, power);
        let energy = replay_energy(&trace, &policy.assign(&trace), power);
        assert!(energy <= static_energy * 1.001);
    }

    #[test]
    fn bimodal_workload_boosts_long_requests_above_base() {
        // With clearly separated short/long classes, the tuned policy should
        // end up with a boost frequency above the base frequency.
        let dvfs = DvfsConfig::haswell_like();
        let profile = AppProfile::custom("bimodal", 500e-6, 1.0, ServiceShape::Bimodal, 0.1);
        let mut g = WorkloadGenerator::new(profile, 3);
        let trace = g.steady_trace(0.45, 800);
        let bound = StaticOracle::new(dvfs.clone(), 0.95)
            .tail_at(&trace, Freq::from_mhz(2400))
            .unwrap();
        let policy = AdrenalineOracle::new(dvfs, 0.95).train(&trace, bound, power);
        assert!(policy.boost_freq > policy.base_freq);
    }

    #[test]
    fn impossible_bound_falls_back_to_fastest_configuration() {
        let dvfs = DvfsConfig::haswell_like();
        let mut g = WorkloadGenerator::new(AppProfile::shore(), 4);
        let trace = g.steady_trace(0.5, 300);
        let policy = AdrenalineOracle::new(dvfs.clone(), 0.95).train(&trace, 1e-9, power);
        // Infeasible: the best-effort policy should be pushing frequencies up.
        assert!(policy.boost_freq == dvfs.max());
    }

    #[test]
    fn policy_boosts_only_while_a_long_request_is_in_service() {
        let dvfs = DvfsConfig::haswell_like();
        let mut policy = AdrenalinePolicy {
            base_freq: Freq::from_mhz(1200),
            boost_freq: Freq::from_mhz(3000),
            threshold_cycles: 1e6,
        };
        let long_state = ServerState {
            now: 0.0,
            current_freq: Freq::from_mhz(1200),
            target_freq: Freq::from_mhz(1200),
            in_service: Some(rubik_sim::InServiceView {
                id: 0,
                arrival: 0.0,
                elapsed_compute_cycles: 0.0,
                elapsed_membound_time: 0.0,
                oracle_compute_cycles: 5e6,
                oracle_membound_time: 0.0,
                class: 0,
            }),
            queued: vec![],
        };
        assert_eq!(
            policy.on_arrival(&long_state),
            PolicyDecision::SetFrequency(Freq::from_mhz(3000))
        );
        let mut short_state = long_state.clone();
        short_state
            .in_service
            .as_mut()
            .unwrap()
            .oracle_compute_cycles = 1e5;
        assert_eq!(
            policy.on_arrival(&short_state),
            PolicyDecision::SetFrequency(Freq::from_mhz(1200))
        );
        let _ = dvfs;
    }
}
