//! Per-decision latency of the Rubik controller (paper Sec. 4.2, "Cost"):
//! the controller runs on *every* arrival and completion, so one decision
//! must cost far less than a request's service time.
//!
//! Exercises the allocation-free decision path: the precomputed Gaussian
//! tail and progress-row cursor mean a decision over a queue of N requests
//! is N table lookups plus one division each — no erf/inverse-normal
//! evaluations and no heap allocation.
//!
//! Results are appended to `BENCH_controller.json` at the repo root so the
//! perf trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use rubik::core::TargetTailTables;
use rubik::stats::DeterministicRng;
use rubik::{DvfsConfig, DvfsPolicy, Histogram, RubikConfig, RubikController};
use rubik_sim::{InServiceView, QueuedView, ServerState};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");

fn state_with_queue(dvfs: &DvfsConfig, depth: usize) -> ServerState {
    ServerState {
        now: 1e-4,
        current_freq: dvfs.min(),
        target_freq: dvfs.min(),
        in_service: Some(InServiceView {
            id: 0,
            arrival: 0.0,
            elapsed_compute_cycles: 3e5,
            elapsed_membound_time: 40e-6,
            oracle_compute_cycles: 6e5,
            oracle_membound_time: 80e-6,
            class: 0,
        }),
        queued: (1..=depth as u64)
            .map(|i| QueuedView {
                id: i,
                arrival: 5e-5,
                oracle_compute_cycles: 6e5,
                oracle_membound_time: 80e-6,
                class: 0,
            })
            .collect(),
    }
}

fn bench_decision_latency(c: &mut Criterion) {
    let dvfs = DvfsConfig::haswell_like();
    let mut rubik = RubikController::new(RubikConfig::new(1e-3), dvfs.clone());
    let mut rng = DeterministicRng::new(2);
    rubik.seed_profile((0..2048).map(|_| (rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3))));

    let mut group = c.benchmark_group("decision_latency");
    // Depths straddle the Gaussian cutoff (16): shallow queues hit the
    // explicit table, deep queues the Gaussian extension.
    for &depth in &[1usize, 6, 16, 64] {
        let state = state_with_queue(&dvfs, depth);
        group.bench_with_input(
            BenchmarkId::new("on_arrival_queue", depth),
            &state,
            |b, state| {
                b.iter_batched(
                    || state.clone(),
                    |s| rubik.on_arrival(&s),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_tail_lookup(c: &mut Criterion) {
    let mut rng = DeterministicRng::new(3);
    let samples: Vec<f64> = (0..4096).map(|_| rng.lognormal(6e5, 0.3)).collect();
    let compute = Histogram::from_samples(&samples, 128);
    let mem_samples: Vec<f64> = (0..4096).map(|_| rng.lognormal(80e-6, 0.3)).collect();
    let memory = Histogram::from_samples(&mem_samples, 128);
    let tables = TargetTailTables::build(&compute, &memory, 0.95);

    let mut group = c.benchmark_group("tail_lookup");
    group.bench_function("tails_at_cursor_16_positions", |b| {
        b.iter(|| {
            let cursor = tables.tails_at(3e5, 40e-6);
            let mut acc = 0.0;
            for pos in 0..16 {
                let (cc, mm) = cursor.tails(pos);
                acc += cc + mm;
            }
            acc
        })
    });
    group.bench_function("tails_legacy_16_positions", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for pos in 0..16 {
                let (cc, mm) = tables.tails(3e5, 40e-6, pos);
                acc += cc + mm;
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).output_json(BENCH_JSON);
    targets = bench_decision_latency, bench_tail_lookup
}
criterion_main!(benches);
