//! Fig. 2: short-term variability in latency-critical workloads.
//!
//! * Fig. 2a — CDF of instantaneous QPS (5 ms windows) normalized to the mean,
//! * Fig. 2b — a masstree execution trace (QPS, service time, queue length,
//!   response time over time),
//! * Fig. 2c — normalized tail latency vs load for all five applications.

use rubik::{AppProfile, FixedFrequencyPolicy, Server};
use rubik_bench::{print_header, print_row, BenchArgs, Harness, TAIL_QUANTILE};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    let apps = AppProfile::all();

    println!("# Fig. 2a: CDF of instantaneous QPS (5 ms windows), normalized to mean");
    print_header(&["app", "p10", "p25", "p50", "p75", "p90", "p99", "max"]);
    for (i, app) in apps.iter().enumerate() {
        let trace = harness.trace(app, 0.5, i as u64);
        let qps = trace.qps_series(0.005);
        let mean = qps.iter().sum::<f64>() / qps.len() as f64;
        let norm: Vec<f64> = qps.iter().map(|q| q / mean).collect();
        let p = |q: f64| rubik::stats::percentile(&norm, q).unwrap();
        print_row(
            app.name(),
            &[
                p(0.1),
                p(0.25),
                p(0.5),
                p(0.75),
                p(0.9),
                p(0.99),
                norm.iter().cloned().fold(0.0, f64::max),
            ],
        );
    }

    println!();
    println!("# Fig. 2b: masstree execution trace at 50% load (100 ms buckets)");
    print_header(&[
        "t_s",
        "qps",
        "mean_service_us",
        "mean_queue_len",
        "mean_response_us",
    ]);
    let masstree = AppProfile::masstree();
    let trace = harness.trace(&masstree, 0.5, 50);
    let mut policy = FixedFrequencyPolicy::new(harness.sim.dvfs.nominal());
    let result = Server::new(harness.sim.clone()).run(&trace, &mut policy);
    let bucket = 0.1;
    let buckets = (result.end_time() / bucket).ceil() as usize;
    for b in 0..buckets.min(40) {
        let lo = b as f64 * bucket;
        let hi = lo + bucket;
        let recs: Vec<_> = result
            .records()
            .iter()
            .filter(|r| r.arrival >= lo && r.arrival < hi)
            .collect();
        if recs.is_empty() {
            continue;
        }
        let n = recs.len() as f64;
        println!(
            "{:.1}\t{:.0}\t{:.1}\t{:.2}\t{:.1}",
            lo,
            n / bucket,
            recs.iter().map(|r| r.service_time()).sum::<f64>() / n * 1e6,
            recs.iter()
                .map(|r| r.queue_len_at_arrival as f64)
                .sum::<f64>()
                / n,
            recs.iter().map(|r| r.latency()).sum::<f64>() / n * 1e6,
        );
    }

    println!();
    println!("# Fig. 2c: tail latency vs load, normalized to the 95th-percentile service time");
    print_header(&["app", "20%", "30%", "40%", "50%", "60%", "70%", "80%"]);
    for (i, app) in apps.iter().enumerate() {
        let mut row = Vec::new();
        for (j, load) in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8].into_iter().enumerate() {
            let trace = harness.trace(app, load, 100 + (i * 10 + j) as u64);
            let mut policy = FixedFrequencyPolicy::new(harness.sim.dvfs.nominal());
            let result = Server::new(harness.sim.clone()).run(&trace, &mut policy);
            let tail = result.tail_latency(TAIL_QUANTILE).unwrap();
            let service_tail =
                rubik::stats::percentile(&result.service_times(), TAIL_QUANTILE).unwrap();
            row.push(tail / service_tail);
        }
        print_row(app.name(), &row);
    }
}
