//! Thread-scaling of the sharded cluster engine: wall time of one
//! `Cluster::run_sharded` at 100 / 1000 / 10000 servers for 1, 2, and 4
//! shards, with a Rubik controller per server behind the power-aware
//! router — the same shape as `cluster_throughput`, which this bench
//! exists to beat at large fleets.
//!
//! The single-heap loop serializes the whole fleet through one binary
//! heap; sharding drains per-shard heaps on worker threads between
//! boundaries, so on a multicore host the 1000-server cell should show
//! throughput climbing with the shard count while staying bit-identical
//! (pinned in `rubik-cluster/tests/shard_equivalence.rs`). The recorded
//! section includes the host's available parallelism so single-core CI
//! runners don't read as regressions.
//!
//! Results merge into `BENCH_controller.json` like the other benches, and
//! a summary (per fleet × shard-count median wall time and requests/s) is
//! merged into the `"fleet_shard"` section of `BENCH_cluster.json`.
//!
//! Env knobs: `RUBIK_FLEET_SHARD_REQUESTS` (default 20) sets requests per
//! server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::cluster::{fleet_trace, PowerAware};
use rubik::{AppProfile, Cluster, RubikConfig, RubikController, ShardSpec, SimConfig, Trace};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

const FLEETS: [usize; 3] = [100, 1000, 10000];
const SHARDS: [usize; 3] = [1, 2, 4];
const LOAD: f64 = 0.3;

fn requests_per_server() -> usize {
    std::env::var("RUBIK_FLEET_SHARD_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn run_fleet(config: &SimConfig, trace: &Trace, fleet: usize, shards: usize, bound: f64) -> f64 {
    let cluster = Cluster::new(
        config.clone(),
        fleet,
        Box::new(PowerAware::default()),
        |_| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                trace,
                256,
            )
        },
    );
    let outcome = cluster.run_sharded(ShardSpec::new(shards), trace);
    assert_eq!(outcome.requests, trace.len());
    outcome.fleet_energy // checksum so the run cannot be optimized away
}

fn bench_fleet_shard(c: &mut Criterion) {
    let config = SimConfig::paper_simulated();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let per_server = requests_per_server();

    let mut group = c.benchmark_group("fleet_shard");
    for fleet in FLEETS {
        let trace = fleet_trace(&profile, LOAD, fleet, per_server * fleet, 2015);
        for shards in SHARDS {
            let id = BenchmarkId::new(format!("servers_{fleet}/shards"), shards);
            group.bench_with_input(id, &shards, |b, &shards| {
                b.iter(|| run_fleet(&config, &trace, fleet, shards, bound))
            });
        }
    }
    group.finish();

    write_shard_summary(c, per_server);
}

/// Distills the group's results into the `"fleet_shard"` section of
/// `BENCH_cluster.json`: per fleet × shard-count median wall time and
/// request throughput, stamped with the host parallelism the numbers
/// were measured under.
fn write_shard_summary(c: &Criterion, per_server: usize) {
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut entries = Vec::new();
    for fleet in FLEETS {
        for shards in SHARDS {
            let id = format!("fleet_shard/servers_{fleet}/shards/{shards}");
            if let Some(r) = c.results().iter().find(|r| r.id == id) {
                let requests = per_server * fleet;
                let rps = requests as f64 / (r.median_ns * 1e-9);
                entries.push(format!(
                    "      {{\"servers\": {fleet}, \"shards\": {shards}, \
                     \"requests\": {requests}, \"median_ns\": {:.1}, \
                     \"requests_per_sec\": {rps:.1}}}",
                    r.median_ns
                ));
            }
        }
    }
    if entries.is_empty() {
        return;
    }
    let section = format!(
        "{{\n    \"load_per_server\": {LOAD},\n    \"requests_per_server\": {per_server},\n    \
         \"router\": \"power-aware\",\n    \"policy\": \"rubik-per-server\",\n    \
         \"host_parallelism\": {host_threads},\n    \"cells\": [\n{}\n    ]\n  }}",
        entries.join(",\n")
    );
    if let Err(e) = rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_shard", &section) {
        eprintln!("fleet_shard: could not write {CLUSTER_JSON}: {e}");
    } else {
        println!("fleet_shard: merged into {CLUSTER_JSON}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_shard
}
criterion_main!(benches);
