//! Core-private-state interference.
//!
//! When batch work runs on a core during the latency-critical application's
//! idle gaps, it evicts core-private microarchitectural state: L1/L2 caches,
//! branch predictors, TLBs. The paper's key observation (Sec. 6) is that this
//! state has *low inertia* — with a warm LLC partition it refills in
//! microseconds — so fine-grain DVFS can compensate for it, unlike LLC or
//! DRAM interference. [`CoreInterferenceModel`] charges the first request of
//! each busy period a warm-up penalty whose size grows (up to a cap) with how
//! long batch work occupied the core.

use serde::{Deserialize, Serialize};

use rubik_sim::{RequestSpec, Trace};

/// Model of the warm-up penalty after batch work ran on the core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreInterferenceModel {
    /// Maximum warm-up penalty, in seconds of extra memory-bound time
    /// (refilling L1/L2 from the warm LLC partition).
    pub max_penalty: f64,
    /// Idle-gap duration (seconds) at which the penalty saturates: longer
    /// batch occupancy cannot evict more than the whole private state.
    pub saturation_gap: f64,
    /// Minimum idle gap before batch work is scheduled at all; shorter gaps
    /// incur no penalty.
    pub min_gap: f64,
}

impl CoreInterferenceModel {
    /// The model used in the colocation experiments: up to 40 µs of extra
    /// memory-bound time (256 KB L2 refilled from the warm LLC at a few
    /// GB/s), saturating after 200 µs of batch occupancy, with batch work
    /// only scheduled into gaps longer than 20 µs.
    pub fn paper_default() -> Self {
        Self {
            max_penalty: 40e-6,
            saturation_gap: 200e-6,
            min_gap: 20e-6,
        }
    }

    /// No interference at all (used to model perfect isolation, or a server
    /// that does not colocate).
    pub fn none() -> Self {
        Self {
            max_penalty: 0.0,
            saturation_gap: 1.0,
            min_gap: 0.0,
        }
    }

    /// The warm-up penalty for a busy period that begins after the core was
    /// available to batch work for `idle_gap` seconds.
    pub fn penalty_for_gap(&self, idle_gap: f64) -> f64 {
        if idle_gap <= self.min_gap || self.max_penalty <= 0.0 {
            return 0.0;
        }
        let frac = ((idle_gap - self.min_gap) / self.saturation_gap).min(1.0);
        self.max_penalty * frac
    }

    /// Applies the interference model to a latency-critical trace: the first
    /// request of each (approximate) busy period gains extra memory-bound
    /// time according to the idle gap before it. The busy-period boundaries
    /// are estimated from arrival gaps versus the mean service time, which
    /// makes the transformation independent of the DVFS policy under test
    /// (every scheme is charged the same interference).
    ///
    /// Also multiplies every request's memory-bound time by
    /// `membound_inflation` (≥ 1), the unpartitioned-memory penalty.
    pub fn apply(&self, trace: &Trace, mean_service_time: f64, membound_inflation: f64) -> Trace {
        assert!(
            membound_inflation >= 1.0,
            "inflation cannot shrink memory time"
        );
        let mut out: Vec<RequestSpec> = Vec::with_capacity(trace.len());
        let mut prev_arrival: Option<f64> = None;
        for spec in trace.requests() {
            let mut new_spec = *spec;
            new_spec.membound_time *= membound_inflation;
            let gap = match prev_arrival {
                // Idle gap estimate: time since the previous arrival minus
                // one mean service time (the work the previous request left).
                Some(prev) => (spec.arrival - prev - mean_service_time).max(0.0),
                None => f64::INFINITY,
            };
            new_spec.membound_time += self.penalty_for_gap(gap.min(1.0));
            prev_arrival = Some(spec.arrival);
            out.push(new_spec);
        }
        Trace::new(out)
    }
}

impl Default for CoreInterferenceModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_with_gap_and_saturates() {
        let m = CoreInterferenceModel::paper_default();
        assert_eq!(m.penalty_for_gap(0.0), 0.0);
        assert_eq!(m.penalty_for_gap(10e-6), 0.0); // below min gap
        let small = m.penalty_for_gap(50e-6);
        let large = m.penalty_for_gap(150e-6);
        assert!(small > 0.0 && large > small);
        assert!((m.penalty_for_gap(10.0) - m.max_penalty).abs() < 1e-12);
    }

    #[test]
    fn none_model_is_a_no_op() {
        let m = CoreInterferenceModel::none();
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 1e6, 10e-6),
            RequestSpec::new(1, 1.0, 1e6, 10e-6),
        ]);
        let out = m.apply(&trace, 100e-6, 1.0);
        assert_eq!(out, trace);
    }

    #[test]
    fn first_request_after_a_long_gap_pays_the_penalty() {
        let m = CoreInterferenceModel::paper_default();
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 1e6, 10e-6),
            RequestSpec::new(1, 0.00005, 1e6, 10e-6), // 50 µs later: still busy-ish
            RequestSpec::new(2, 0.1, 1e6, 10e-6),     // long idle gap before it
        ]);
        let out = m.apply(&trace, 100e-6, 1.0);
        let r1 = out.requests()[1].membound_time;
        let r2 = out.requests()[2].membound_time;
        assert!(
            r2 > r1,
            "request after a long gap should pay the warm-up cost"
        );
        assert!((r2 - (10e-6 + m.max_penalty)).abs() < 1e-9);
    }

    #[test]
    fn membound_inflation_multiplies_all_requests() {
        let m = CoreInterferenceModel::none();
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 1e6, 10e-6)]);
        let out = m.apply(&trace, 100e-6, 1.5);
        assert!((out.requests()[0].membound_time - 15e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn rejects_shrinking_inflation() {
        let m = CoreInterferenceModel::none();
        let _ = m.apply(&Trace::default(), 1e-4, 0.5);
    }
}
