//! Spectral-vs-direct equivalence: the FFT-ladder table builder
//! (`TargetTailTables::build_with`) must reproduce the reference per-row
//! convolution builder (`TargetTailTables::build_direct_with`) within 1e-9
//! across workload shapes — lognormal, bimodal, heavy-tailed, and the
//! degenerate all-zero memory distribution — and across table shapes on both
//! sides of the FFT crossover.
//!
//! Quantiles are bucket-quantized, so "within 1e-9" effectively means the
//! two builders pick the same bucket everywhere; the relative tolerance only
//! absorbs float noise in the shared bucket-value arithmetic.

use rubik_core::{TableBuilder, TargetTailTables};
use rubik_stats::{DeterministicRng, Histogram};

const REL_TOL: f64 = 1e-9;

fn assert_tables_equivalent(
    label: &str,
    a: &TargetTailTables,
    b: &TargetTailTables,
    probes: &[f64],
) {
    assert_eq!(a.quantile(), b.quantile());
    assert_eq!(a.gaussian_cutoff(), b.gaussian_cutoff());
    // Probe every (elapsed band, position) cell, explicit and Gaussian.
    for &elapsed_frac in probes {
        for pos in 0..a.gaussian_cutoff() + 8 {
            let (sc, sm) = a.tails(elapsed_frac, elapsed_frac * 1e-10, pos);
            let (dc, dm) = b.tails(elapsed_frac, elapsed_frac * 1e-10, pos);
            assert!(
                (sc - dc).abs() <= REL_TOL * dc.abs().max(1.0),
                "{label}: compute tail mismatch at elapsed {elapsed_frac}, pos {pos}: \
                 spectral {sc} vs direct {dc}"
            );
            assert!(
                (sm - dm).abs() <= REL_TOL * dm.abs().max(1.0),
                "{label}: memory tail mismatch at elapsed {elapsed_frac}, pos {pos}: \
                 spectral {sm} vs direct {dm}"
            );
        }
    }
}

fn probes_for(hist: &Histogram) -> Vec<f64> {
    // Elapsed-work probes spanning all progress bands plus beyond-support.
    (0..=10)
        .map(|i| hist.quantile((i as f64 / 10.0).min(0.999)) * 1.01)
        .chain([0.0, hist.quantile(0.999) * 3.0])
        .collect()
}

fn lognormal_hist(rng: &mut DeterministicRng, mean: f64, cov: f64, n: usize) -> Histogram {
    let samples: Vec<f64> = (0..n).map(|_| rng.lognormal(mean, cov)).collect();
    Histogram::from_samples(&samples, 128)
}

fn zero_hist() -> Histogram {
    Histogram::from_samples(&[0.0, 0.0, 0.0], 4)
}

#[test]
fn lognormal_profiles_match() {
    let mut rng = DeterministicRng::new(0xE1);
    for (mean, cov) in [(1e6, 0.1), (1e6, 0.3), (5e5, 0.8), (2e6, 1.5)] {
        let c = lognormal_hist(&mut rng, mean, cov, 4000);
        let m = lognormal_hist(&mut rng, 80e-6, cov, 4000);
        let spectral = TargetTailTables::build(&c, &m, 0.95);
        let direct = TargetTailTables::build_direct(&c, &m, 0.95);
        assert_tables_equivalent(
            &format!("lognormal mean {mean} cov {cov}"),
            &spectral,
            &direct,
            &probes_for(&c),
        );
    }
}

#[test]
fn bimodal_profiles_match() {
    // Sharply bimodal work (the Adrenaline scenario): mass concentrated in
    // two spikes stresses CDF-crossing alignment between the builders.
    let mut rng = DeterministicRng::new(0xE2);
    let samples: Vec<f64> = (0..4000)
        .map(|_| {
            if rng.bernoulli(0.2) {
                rng.lognormal(5e6, 0.05)
            } else {
                rng.lognormal(4e5, 0.05)
            }
        })
        .collect();
    let c = Histogram::from_samples(&samples, 128);
    let spectral = TargetTailTables::build(&c, &zero_hist(), 0.95);
    let direct = TargetTailTables::build_direct(&c, &zero_hist(), 0.95);
    assert_tables_equivalent("bimodal", &spectral, &direct, &probes_for(&c));
}

#[test]
fn degenerate_all_zero_memory_matches() {
    // The all-zero memory histogram takes the zero-table path in both
    // builders; the compute side still exercises the full ladder.
    let mut rng = DeterministicRng::new(0xE3);
    let c = lognormal_hist(&mut rng, 1e6, 0.4, 3000);
    let spectral = TargetTailTables::build(&c, &zero_hist(), 0.95);
    let direct = TargetTailTables::build_direct(&c, &zero_hist(), 0.95);
    for pos in 0..32 {
        assert_eq!(spectral.tail_membound_time(0.0, pos), 0.0);
        assert_eq!(direct.tail_membound_time(0.0, pos), 0.0);
    }
    assert_tables_equivalent("zero-memory", &spectral, &direct, &probes_for(&c));
}

#[test]
fn constant_service_demand_matches() {
    // A single-spike histogram: the ladder degenerates to shifted deltas.
    let c = Histogram::from_samples(&vec![7.5e5; 100], 128);
    let spectral = TargetTailTables::build(&c, &zero_hist(), 0.95);
    let direct = TargetTailTables::build_direct(&c, &zero_hist(), 0.95);
    assert_tables_equivalent("constant", &spectral, &direct, &probes_for(&c));
}

#[test]
fn table_shapes_match_across_the_fft_crossover() {
    // Small shapes keep every per-row convolution under FFT_CROSSOVER (the
    // direct builder takes its O(n·m) path); large cutoffs push it far over
    // (FFT path). The spectral builder must agree with both.
    let mut rng = DeterministicRng::new(0xE4);
    let c = lognormal_hist(&mut rng, 1e6, 0.5, 4000);
    let m = lognormal_hist(&mut rng, 60e-6, 0.5, 4000);
    for (rows, cutoff) in [(1, 2), (2, 4), (4, 8), (8, 16), (3, 33), (8, 64)] {
        let spectral = TargetTailTables::build_with(&c, &m, 0.95, rows, cutoff);
        let direct = TargetTailTables::build_direct_with(&c, &m, 0.95, rows, cutoff);
        assert_tables_equivalent(
            &format!("shape {rows}x{cutoff}"),
            &spectral,
            &direct,
            &probes_for(&c),
        );
    }
}

#[test]
fn quantile_sweep_matches() {
    let mut rng = DeterministicRng::new(0xE5);
    let c = lognormal_hist(&mut rng, 1e6, 0.6, 3000);
    for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
        let spectral = TargetTailTables::build(&c, &zero_hist(), q);
        let direct = TargetTailTables::build_direct(&c, &zero_hist(), q);
        assert_tables_equivalent(&format!("q={q}"), &spectral, &direct, &probes_for(&c));
    }
}

/// A persistent [`TableBuilder`] reused across many different profiles —
/// warm rebuilds into the same target, shifting histogram shapes, shrinking
/// and growing supports, even changing table shapes — must produce tables
/// `==` (exact `PartialEq`, i.e. every stored f64 equal) to a throwaway
/// builder's fresh output each time. This pins the warm-path contract: the
/// controller's in-place rebuilds are indistinguishable from cold builds.
#[test]
fn persistent_builder_warm_rebuilds_match_fresh_builds_exactly() {
    let mut rng = DeterministicRng::new(0xE6);
    let mut builder = TableBuilder::new();

    // Start from an arbitrary profile; rebuild the same target in place for
    // every subsequent profile.
    let c0 = lognormal_hist(&mut rng, 1e6, 0.3, 2000);
    let m0 = lognormal_hist(&mut rng, 80e-6, 0.3, 2000);
    let mut warm = builder.build_with(&c0, &m0, 0.95, 8, 16);

    let profiles: Vec<(Histogram, Histogram, f64, usize, usize)> = vec![
        // Same shape, new data.
        (
            lognormal_hist(&mut rng, 2e6, 0.8, 3000),
            lognormal_hist(&mut rng, 40e-6, 0.8, 3000),
            0.95,
            8,
            16,
        ),
        // Tighter distribution (smaller trimmed support), other quantile.
        (
            lognormal_hist(&mut rng, 5e5, 0.1, 1000),
            lognormal_hist(&mut rng, 10e-6, 0.1, 1000),
            0.99,
            8,
            16,
        ),
        // Zero memory path + different table shape.
        (
            lognormal_hist(&mut rng, 1e6, 1.2, 4000),
            zero_hist(),
            0.9,
            4,
            8,
        ),
        // Larger shape again (row storage must regrow cleanly).
        (
            lognormal_hist(&mut rng, 3e6, 0.5, 2000),
            lognormal_hist(&mut rng, 120e-6, 0.5, 2000),
            0.95,
            8,
            32,
        ),
    ];

    for (step, (c, m, q, rows, cutoff)) in profiles.iter().enumerate() {
        builder.build_with_into(c, m, *q, *rows, *cutoff, &mut warm);
        let fresh = TargetTailTables::build_with(c, m, *q, *rows, *cutoff);
        assert_eq!(warm, fresh, "warm rebuild diverged at step {step}");
    }
}
