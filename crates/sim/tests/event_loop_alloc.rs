//! The simulator's event loop performs zero steady-state allocations per
//! event once its buffers reach their high-water marks.
//!
//! A counting global allocator measures the loop directly (complementing the
//! pointer-stability test in `src/server.rs`): after a warm-up run of the
//! same trace shape has sized the scratch snapshot, the records vector, and
//! the segment timeline, a second identical run may only allocate the fresh
//! per-run containers — bounded up-front costs — while the per-event path
//! (snapshot refresh, queue push/pop, progress accounting) stays
//! allocation-free. The test pins that by checking the allocation count of
//! a long run does not grow with the event count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rubik_sim::{FixedFrequencyPolicy, RequestSpec, Server, SimConfig, Trace};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn trace(requests: usize) -> Trace {
    // A burst to set the queue high-water mark, then steady arrivals.
    (0..requests as u64)
        .map(|i| {
            let arrival = if i < 8 { 0.0 } else { i as f64 * 5e-4 };
            RequestSpec::new(i, arrival, 1.2e6, 1e-5)
        })
        .collect()
}

fn allocations_for_run(requests: usize) -> u64 {
    let server = Server::new(SimConfig::default());
    let t = trace(requests);
    let mut policy = FixedFrequencyPolicy::new(server.config().dvfs.nominal());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = server.run(&t, &mut policy);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(result.records().len(), requests);
    after - before
}

#[test]
fn event_loop_allocations_do_not_scale_with_event_count() {
    // Warm-up run (fills allocator pools, faults in code paths).
    let _ = allocations_for_run(512);

    let small = allocations_for_run(512);
    let large = allocations_for_run(4096);

    // 8x the events (arrivals + completions + ticks) must not cost 8x the
    // allocations: everything per-event reuses the scratch snapshot and the
    // retained queue. Only run-scoped containers (records with known
    // capacity, the amortized-doubling segment timeline) may grow, and those
    // amortize to O(log n) reallocations plus one records reservation.
    assert!(
        large < small + 64,
        "event-loop allocations grew with event count: {small} -> {large}"
    );
}
