//! Statistical primitives used throughout the Rubik reproduction.
//!
//! The Rubik controller ([MICRO-48, 2015]) models per-request work as random
//! variables and needs, online and cheaply:
//!
//! * discrete, fixed-bucket **histograms** of per-request compute cycles and
//!   memory-bound time ([`Histogram`]),
//! * **convolution** of those histograms to obtain the completion distribution
//!   of queued requests ([`convolve`], [`fft`]),
//! * **quantiles** ("target tails") of the convolved distributions,
//! * a **Gaussian (CLT) approximation** for deep queues ([`gaussian`]),
//! * **conditional** distributions given work already performed
//!   ([`Histogram::conditional_on_elapsed`]),
//! * measurement helpers: exact percentiles, rolling-window tail tracking,
//!   Pearson correlation, online mean/variance.
//!
//! All of these are provided here with no dependency on the simulator, so the
//! same code backs both the controller (`rubik-core`) and the evaluation
//! harness (`rubik-bench`).
//!
//! # Example
//!
//! ```
//! use rubik_stats::Histogram;
//!
//! // Build a service-cycle distribution from observed samples.
//! let samples = [1_000.0, 1_200.0, 900.0, 1_500.0, 1_100.0, 950.0];
//! let hist = Histogram::from_samples(&samples, 128);
//! assert!(hist.quantile(0.95) >= hist.quantile(0.5));
//!
//! // Distribution of the total work of two back-to-back requests.
//! let two = hist.convolve(&hist);
//! assert!((two.mean() - 2.0 * hist.mean()).abs() < 1e-6 * hist.mean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod correlation;
pub mod fft;
pub mod gaussian;
pub mod histogram;
pub mod percentile;
pub mod rolling;
pub mod sampling;
pub mod summary;

pub use correlation::pearson;
pub use gaussian::{gaussian_quantile, standard_normal_cdf, GaussianTail};
pub use histogram::Histogram;
pub use percentile::{percentile, percentile_of_sorted};
pub use rolling::{RollingQuantileWindow, RollingTailTracker};
pub use sampling::{DeterministicRng, ServiceSampler};
pub use summary::OnlineStats;

/// Convolve two probability mass functions given as slices.
///
/// The result has length `a.len() + b.len() - 1`. Uses the FFT for large
/// inputs and the direct O(n·m) algorithm for small ones.
///
/// This is re-exported at the crate root because it is the single most
/// important operation for building Rubik's target tail tables.
///
/// ```
/// let a = [0.5, 0.5];
/// let b = [0.25, 0.75];
/// let c = rubik_stats::convolve(&a, &b);
/// assert_eq!(c.len(), 3);
/// assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    fft::convolve(a, b)
}
