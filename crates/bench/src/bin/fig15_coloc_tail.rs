//! Fig. 15: distribution of tail latency (relative to the bound) across
//! LC-application x batch-mix combinations at 60% load, for the four
//! colocation schemes.

use rubik::{AppProfile, BatchMix, ColocScheme, ColocatedCore};
use rubik_bench::print_header;

fn main() {
    // The paper uses 5 apps x 20 mixes = 100 combinations; a reduced grid of
    // 5 x 4 = 20 keeps the harness fast while preserving the distributions.
    let mixes_per_app = 4;
    let requests = 1500;
    let load = 0.6;

    let core = ColocatedCore::new();
    let apps = AppProfile::all();
    let mixes = BatchMix::paper_mixes(2015);

    println!(
        "# Fig. 15: normalized tail latency across workload mixes at 60% load (sorted, descending)"
    );
    let mut per_scheme: Vec<(String, Vec<f64>)> = Vec::new();
    for scheme in ColocScheme::all() {
        let mut tails = Vec::new();
        for (i, app) in apps.iter().enumerate() {
            let bound = core.latency_bound(app, requests, 10 + i as u64);
            for m in 0..mixes_per_app {
                let mix = &mixes[(i * mixes_per_app + m) % mixes.len()];
                let outcome = core.run(
                    scheme,
                    app,
                    load,
                    mix,
                    bound,
                    requests,
                    (100 + i * 10 + m) as u64,
                );
                tails.push(outcome.normalized_tail);
            }
        }
        tails.sort_by(|a, b| b.partial_cmp(a).unwrap());
        per_scheme.push((scheme.name().to_string(), tails));
    }

    print_header(&["mix_rank", "StaticColoc", "RubikColoc", "HW-T", "HW-TPW"]);
    let n = per_scheme[0].1.len();
    let col = |name: &str| {
        per_scheme
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let static_c = col("StaticColoc");
    let rubik_c = col("RubikColoc");
    let hwt = col("HW-T");
    let hwtpw = col("HW-TPW");
    for i in 0..n {
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            i, static_c[i], rubik_c[i], hwt[i], hwtpw[i]
        );
    }
    println!();
    println!(
        "# max normalized tails: StaticColoc {:.2}, RubikColoc {:.2}, HW-T {:.2}, HW-TPW {:.2}",
        static_c[0], rubik_c[0], hwt[0], hwtpw[0]
    );
}
