//! Discrete-event simulation of a latency-critical server with fine-grain
//! per-core DVFS.
//!
//! This crate is the substrate the Rubik reproduction is evaluated on. The
//! paper evaluates Rubik with zsim, a microarchitectural simulator; here we
//! substitute a request-level discrete-event model (see `DESIGN.md` for why
//! the substitution preserves the relevant behaviour): every request carries
//! a compute demand in core cycles and a memory-bound time that core DVFS
//! cannot accelerate, and a server core executes requests from a FIFO queue
//! at a frequency chosen by a pluggable [`DvfsPolicy`].
//!
//! The key types are:
//!
//! * [`Freq`] / [`DvfsConfig`] — the DVFS domain (0.8–3.4 GHz in 200 MHz
//!   steps, 4 µs transitions for the paper's simulated CMP, Table 2),
//! * [`RequestSpec`] / [`Trace`] — a request trace (arrival time, compute
//!   cycles, memory-bound time),
//! * [`DvfsPolicy`] / [`ServerState`] — the controller interface invoked on
//!   every arrival, completion, and periodic tick,
//! * [`ServerSim`] / [`SimEvent`] — the resumable open-loop engine: offer
//!   arrivals as they happen, advance one event at a time (this is what
//!   `rubik-cluster` multiplexes to simulate whole fleets in one process),
//! * [`Server`] — the closed-loop wrapper that replays a complete trace,
//! * [`RunResult`] — per-request records plus the frequency/activity
//!   timeline, from which tail latency and (via `rubik-power`) energy are
//!   derived.
//!
//! # Example
//!
//! ```
//! use rubik_sim::{DvfsConfig, FixedFrequencyPolicy, RequestSpec, Server, SimConfig, Trace};
//!
//! // Two requests, each needing 1.2 M cycles of compute and no memory time.
//! let trace = Trace::new(vec![
//!     RequestSpec::new(0, 0.000, 1.2e6, 0.0),
//!     RequestSpec::new(1, 0.001, 1.2e6, 0.0),
//! ]);
//! let server = Server::new(SimConfig::default());
//! let mut policy = FixedFrequencyPolicy::new(DvfsConfig::haswell_like().nominal());
//! let result = server.run(&trace, &mut policy);
//! assert_eq!(result.records().len(), 2);
//! // At 2.4 GHz, 1.2 M cycles take 0.5 ms.
//! assert!((result.records()[0].latency() - 0.0005).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod freq;
pub mod policy;
pub mod request;
pub mod result;
pub mod server;

pub use config::{IdleMode, SimConfig};
pub use freq::{DvfsConfig, Freq};
pub use policy::{
    DvfsPolicy, FixedFrequencyPolicy, InServiceView, PolicyDecision, QueuedView, ServerState,
};
pub use request::{RequestRecord, RequestSpec, Trace};
pub use result::{CoreActivity, FreqResidency, RunResult, Segment};
pub use server::{Server, ServerSim, SimEvent};
