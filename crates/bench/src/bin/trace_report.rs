//! `trace_report` — tail-latency attribution from a telemetry trace.
//!
//! Two modes:
//!
//! * **File mode** — `trace_report [--quantile Q] FILE` parses a
//!   `rubik-trace-v1` JSON trace (written by any figure binary's
//!   `--trace-out` flag) and prints the tail-attribution table: the
//!   p95/p99 cohort's latency decomposed into queueing, service, backoff,
//!   and downtime.
//! * **Scenario mode** — `trace_report --scenario fleet_faults` re-runs
//!   the shared fleet-faults experiment (`rubik_bench::faults`) with
//!   telemetry recording and prints the table for both the failure-blind
//!   and the health-aware stack, so the two rescue philosophies can be
//!   compared component by component. `--fleet`, `--crashed`,
//!   `--requests`, and `--seed` resize the run; `--trace-out PATH` also
//!   writes the health-aware run's trace (Chrome `trace_event` JSON if
//!   PATH ends in `.trace.json`, `rubik-trace-v1` otherwise).
//!
//! Everything is deterministic: the same flags print the same bytes, which
//! the golden fixture `tests/golden/trace_report_fleet_faults.txt` pins.

use rubik::telemetry::{from_json, to_chrome_json, to_json};
use rubik::TraceLog;
use rubik_bench::faults::FaultsScenario;

#[derive(Debug, Default)]
struct Args {
    quantile: Option<f64>,
    scenario: Option<String>,
    fleet: Option<usize>,
    crashed: Option<usize>,
    requests: Option<usize>,
    seed: Option<u64>,
    trace_out: Option<String>,
    file: Option<String>,
}

const USAGE: &str = "usage: trace_report [--quantile Q] FILE\n\
       trace_report --scenario fleet_faults [--fleet N] [--crashed N] [--requests N]\n\
       \x20                                   [--seed N] [--quantile Q] [--trace-out PATH]\n\
\n\
  FILE             a rubik-trace-v1 JSON trace (from any binary's --trace-out)\n\
  --quantile Q     tail quantile for the cohort (default: 0.95)\n\
  --scenario NAME  re-run a named experiment with telemetry; the only name is\n\
  \x20               fleet_faults (the crash-wave acceptance experiment), printing\n\
  \x20               the attribution table for the blind and health-aware stacks\n\
  --fleet N        scenario fleet size (default: 100)\n\
  --crashed N      servers lost to the crash wave (default: 10)\n\
  --requests N     scenario requests per server (default: 60)\n\
  --seed N         scenario trace seed (default: 2015)\n\
  --trace-out PATH also write the health-aware run's trace (Chrome trace_event\n\
  \x20               JSON if PATH ends in .trace.json, rubik-trace-v1 otherwise)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--quantile" => {
                let v = value("--quantile")?;
                let q: f64 = v
                    .parse()
                    .map_err(|_| format!("--quantile: invalid number {v:?}"))?;
                if !(q > 0.0 && q < 1.0) {
                    return Err(format!("--quantile must be in (0, 1), got {q}"));
                }
                args.quantile = Some(q);
            }
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--fleet" => {
                args.fleet = Some(parse_count("--fleet", &value("--fleet")?)?);
            }
            "--crashed" => {
                args.crashed = Some(parse_count("--crashed", &value("--crashed")?)?);
            }
            "--requests" => {
                args.requests = Some(parse_count("--requests", &value("--requests")?)?);
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: invalid number {v:?}"))?,
                );
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            other if !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse_count(name: &str, v: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("{name}: invalid number {v:?}"))?;
    if n == 0 {
        return Err(format!("{name} must be at least 1"));
    }
    Ok(n)
}

fn print_attribution(log: &TraceLog, quantile: f64) {
    match log.attribute(quantile) {
        Some(report) => print!("{}", report.table()),
        None => println!("no completed requests — nothing to attribute"),
    }
}

fn emit_trace(path: &str, log: &TraceLog) {
    let body = if path.ends_with(".trace.json") {
        to_chrome_json(log)
    } else {
        to_json(log)
    };
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("trace: wrote {path}"),
        Err(e) => eprintln!("trace: could not write {path}: {e}"),
    }
}

fn run_scenario(args: &Args, quantile: f64) -> Result<(), String> {
    let name = args.scenario.as_deref().expect("scenario mode");
    if name != "fleet_faults" {
        return Err(format!(
            "unknown scenario {name:?}; the only scenario is \"fleet_faults\""
        ));
    }
    let mut scenario = FaultsScenario::default();
    if let Some(fleet) = args.fleet {
        scenario.fleet = fleet;
    }
    if let Some(crashed) = args.crashed {
        scenario.crashed = crashed;
    }
    if scenario.crashed > scenario.fleet {
        return Err(format!(
            "--crashed {} exceeds --fleet {}",
            scenario.crashed, scenario.fleet
        ));
    }
    if let Some(requests) = args.requests {
        scenario.requests_per_server = requests;
    }
    if let Some(seed) = args.seed {
        scenario.seed = seed;
    }

    println!(
        "# fleet_faults: {} servers ({} crashed), load {:.2}/server, {} requests/server, \
         seed {}, budget {:.0} W, deadline {:.3} ms",
        scenario.fleet,
        scenario.crashed,
        scenario.load,
        scenario.requests_per_server,
        scenario.seed,
        scenario.budget(),
        scenario.deadline() * 1e3,
    );
    let trace = scenario.trace();
    for (label, aware) in [
        ("blind: jsq, deadline only", false),
        ("health-aware: health-aware(jsq) + timeouts + retries", true),
    ] {
        let (outcome, _results, log) = scenario.run_traced(&trace, aware);
        let a = &outcome.availability;
        println!("\n## {label}");
        println!(
            "completed {}/{}, goodput {:.4}, deadline_exceeded {}, lost {}",
            a.completed,
            a.offered,
            a.goodput_fraction(),
            a.deadline_exceeded,
            a.lost,
        );
        print_attribution(&log, quantile);
        if aware {
            if let Some(path) = &args.trace_out {
                emit_trace(path, &log);
            }
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let quantile = args.quantile.unwrap_or(0.95);
    if args.scenario.is_some() {
        if args.file.is_some() {
            return Err("pass either a FILE or --scenario, not both".to_string());
        }
        return run_scenario(args, quantile);
    }
    let Some(file) = &args.file else {
        return Err("pass a trace FILE or --scenario fleet_faults".to_string());
    };
    let text = std::fs::read_to_string(file).map_err(|e| format!("could not read {file}: {e}"))?;
    let log = from_json(&text).map_err(|e| format!("{file}: {e}"))?;
    println!(
        "# {file}: {} servers, {} requests ({} lost), {} epochs, end {:.4} s",
        log.servers,
        log.requests.len(),
        log.lost(),
        log.epochs.len(),
        log.end,
    );
    print_attribution(&log, quantile);
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
