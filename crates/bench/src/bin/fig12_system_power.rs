//! Fig. 12: full-system power savings of Rubik at 30% load. Core savings are
//! large (Fig. 6) but idle platform power (uncore, DRAM, PSU, disks) dilutes
//! them at the server level — the motivation for RubikColoc.

use rubik::{AppProfile, ServerPowerModel};
use rubik_bench::{print_header, BenchArgs, Harness};

fn main() {
    let args = BenchArgs::parse();
    let harness = args.apply(Harness::new());
    let server = ServerPowerModel::paper_simulated();
    let apps = AppProfile::all();

    // One self-contained cell per application, fanned across the pool.
    let rows = args.executor().map_indexed(&apps, |i, app| {
        let bound = harness.latency_bound(app);
        let trace = harness.trace(app, 0.3, i as u64);

        let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
        let (rubik_summary, rubik_result) = harness.run_rubik(&trace, bound, true);

        // Server power: 6 identical cores each running one copy of the app.
        let mut fixed_policy = rubik::FixedFrequencyPolicy::new(harness.sim.dvfs.nominal());
        let fixed_result = rubik::Server::new(harness.sim.clone()).run(&trace, &mut fixed_policy);
        let duration = fixed_result.end_time().max(rubik_result.end_time());
        let fixed_power = server.average_power(
            &vec![fixed_result.freq_residency(); server.cores()],
            duration,
        );
        let rubik_power = server.average_power(
            &vec![rubik_result.freq_residency(); server.cores()],
            duration,
        );
        (
            Harness::savings_percent(&fixed, &rubik_summary),
            (1.0 - rubik_power / fixed_power) * 100.0,
        )
    });

    println!("# Fig. 12: full-system power savings (%) at 30% load");
    print_header(&["app", "core_savings_%", "system_savings_%"]);
    for (app, (core_savings, system_savings)) in apps.iter().zip(&rows) {
        println!("{}\t{core_savings:.1}\t{system_savings:.1}", app.name());
    }
}
