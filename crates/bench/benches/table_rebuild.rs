//! Target-tail-table rebuild cost (paper Sec. 4.2: the tables are rebuilt
//! every 100 ms, so the build must be far cheaper than the interval).
//!
//! Compares the spectral builder (one forward transform of the base PMF, the
//! `base^⊛i` ladder built in the frequency domain and shared across all
//! progress rows) against the reference per-row convolution builder it
//! replaced. The acceptance bar for the spectral path is ≥ 5× on the default
//! 8×16 table shape with 128-bucket histograms.
//!
//! Results are appended to `BENCH_controller.json` at the repo root so the
//! perf trajectory is tracked across PRs (see the vendored criterion's JSON
//! emitter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::core::{OnlineProfiler, TargetTailTables};
use rubik::stats::DeterministicRng;

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");

fn profiled_histograms(buckets_hint: usize) -> (rubik::Histogram, rubik::Histogram) {
    let mut profiler = OnlineProfiler::new(buckets_hint.max(4096));
    let mut rng = DeterministicRng::new(1);
    for _ in 0..4096 {
        profiler.record(rng.lognormal(6e5, 0.3), rng.lognormal(80e-6, 0.3));
    }
    (
        profiler.compute_histogram().unwrap(),
        profiler.membound_histogram().unwrap(),
    )
}

fn bench_table_rebuild(c: &mut Criterion) {
    let (compute, memory) = profiled_histograms(4096);
    let mut group = c.benchmark_group("table_rebuild");

    // The default paper shape: 8 progress rows, Gaussian beyond depth 16.
    group.bench_function("spectral_8x16_128_buckets", |b| {
        b.iter(|| TargetTailTables::build(&compute, &memory, 0.95))
    });
    group.bench_function("direct_8x16_128_buckets", |b| {
        b.iter(|| TargetTailTables::build_direct(&compute, &memory, 0.95))
    });

    // Scaling with the explicit-position cutoff: the spectral ladder grows
    // O(cutoff) while the direct path grows O(rows × cutoff) convolutions.
    for &cutoff in &[8usize, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("spectral_cutoff", cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| TargetTailTables::build_with(&compute, &memory, 0.95, 8, cutoff))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_cutoff", cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| TargetTailTables::build_direct_with(&compute, &memory, 0.95, 8, cutoff))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).output_json(BENCH_JSON);
    targets = bench_table_rebuild
}
criterion_main!(benches);
