//! Single-core colocation simulation.
//!
//! [`ColocatedCore`] evaluates one colocated core: one latency-critical (LC)
//! application instance sharing the core with a batch mix. LC requests
//! preempt batch work; batch work fills every idle gap (achieving the 100%
//! core utilization of Sec. 6). The LC side runs through the full
//! event-driven simulator with the scheme's DVFS policy, on a trace that has
//! been transformed by the interference model; the batch side is accounted
//! for analytically from the core's idle time.

use rubik_core::{RubikConfig, RubikController, StaticOracle};
use rubik_power::CorePowerModel;
use rubik_sim::{FixedFrequencyPolicy, Freq, Server, SimConfig, Trace};
use rubik_workloads::{AppProfile, BatchMix, WorkloadGenerator};
use serde::{Deserialize, Serialize};

use crate::interference::CoreInterferenceModel;
use crate::partition::MemorySystemConfig;
use crate::schemes::{batch_tpw_freq, hw_t_lc_freq, hw_tpw_lc_freq, ColocScheme};

/// Result of simulating one colocated core under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocOutcome {
    /// Tail (95th percentile) latency of the LC application.
    pub tail_latency: f64,
    /// Tail latency divided by the latency bound (1.0 = exactly at bound).
    pub normalized_tail: f64,
    /// Core energy spent serving LC requests (J).
    pub lc_energy: f64,
    /// Core energy spent running batch work in the idle gaps (J).
    pub batch_energy: f64,
    /// Batch work units completed in the idle gaps.
    pub batch_work: f64,
    /// Fraction of wall-clock time the core served LC requests.
    pub lc_utilization: f64,
    /// Wall-clock duration of the run (seconds).
    pub duration: f64,
}

impl ColocOutcome {
    /// Total core energy (LC + batch) in joules.
    pub fn total_energy(&self) -> f64 {
        self.lc_energy + self.batch_energy
    }

    /// Average core power over the run, in watts.
    pub fn average_power(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.total_energy() / self.duration
        }
    }
}

/// Declarative specification of one colocated-core run: which scheme serves
/// which LC application at which load, next to which batch mix, under which
/// tail-latency bound.
///
/// Built with [`ColocRunSpec::new`] plus `with_*` setters (load defaults to
/// 0.5, requests to 1000, seed to 0), and executed by
/// [`ColocatedCore::run`]. This replaces the old seven-positional-argument
/// `run` signature, whose call sites were unreadable and fragile to
/// reordering.
///
/// ```
/// use rubik_coloc::{ColocRunSpec, ColocScheme, ColocatedCore};
/// use rubik_workloads::{AppProfile, BatchMix};
///
/// let core = ColocatedCore::new();
/// let profile = AppProfile::masstree();
/// let mix = BatchMix::paper_mixes(1)[0].clone();
/// let bound = core.latency_bound(&profile, 800, 11);
///
/// let spec = ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, bound)
///     .with_load(0.4)
///     .with_requests(800)
///     .with_seed(1);
/// let outcome = core.run(&spec);
/// assert!(outcome.tail_latency > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ColocRunSpec<'a> {
    scheme: ColocScheme,
    profile: &'a AppProfile,
    mix: &'a BatchMix,
    latency_bound: f64,
    load: f64,
    requests: usize,
    seed: u64,
}

impl<'a> ColocRunSpec<'a> {
    /// Creates a spec with the required ingredients: the scheme, the LC
    /// application, the colocated batch mix, and the LC tail-latency bound.
    /// Load (0.5), request count (1000), and seed (0) start at defaults.
    ///
    /// # Panics
    ///
    /// Panics if `latency_bound <= 0`.
    pub fn new(
        scheme: ColocScheme,
        profile: &'a AppProfile,
        mix: &'a BatchMix,
        latency_bound: f64,
    ) -> Self {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        Self {
            scheme,
            profile,
            mix,
            latency_bound,
            load: 0.5,
            requests: 1000,
            seed: 0,
        }
    }

    /// Sets the LC load (fraction of one core's nominal capacity).
    ///
    /// # Panics
    ///
    /// Panics if `load <= 0`.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!(load > 0.0, "load must be positive");
        self.load = load;
        self
    }

    /// Sets the number of LC requests to simulate.
    ///
    /// # Panics
    ///
    /// Panics if `requests == 0`.
    pub fn with_requests(mut self, requests: usize) -> Self {
        assert!(requests > 0, "request count must be positive");
        self.requests = requests;
        self
    }

    /// Sets the RNG seed for the trace generator.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The colocation scheme under test.
    pub fn scheme(&self) -> ColocScheme {
        self.scheme
    }

    /// The latency-critical application profile.
    pub fn profile(&self) -> &'a AppProfile {
        self.profile
    }

    /// The colocated batch mix.
    pub fn mix(&self) -> &'a BatchMix {
        self.mix
    }

    /// The LC tail-latency bound.
    pub fn latency_bound(&self) -> f64 {
        self.latency_bound
    }

    /// The LC load.
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Requests per run.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Simulator for one colocated core.
#[derive(Debug, Clone)]
pub struct ColocatedCore {
    sim_config: SimConfig,
    power: CorePowerModel,
    memory: MemorySystemConfig,
    interference: CoreInterferenceModel,
    quantile: f64,
    force_rubik_rebuilds: bool,
}

impl ColocatedCore {
    /// Creates a colocated-core simulator with the paper's configuration.
    pub fn new() -> Self {
        Self {
            sim_config: SimConfig::paper_simulated(),
            power: CorePowerModel::haswell_like(),
            memory: MemorySystemConfig::partitioned(),
            interference: CoreInterferenceModel::paper_default(),
            quantile: 0.95,
            force_rubik_rebuilds: false,
        }
    }

    /// Forces the RubikColoc controller to rebuild its tables on every tick
    /// instead of skipping version-gated no-op rebuilds. Outcomes are
    /// bit-identical either way (property-tested in
    /// `tests/parallel_determinism.rs`); this hook exists for those tests
    /// and for benchmarking the gating win.
    pub fn with_forced_rubik_rebuilds(mut self, forced: bool) -> Self {
        self.force_rubik_rebuilds = forced;
        self
    }

    /// Overrides the memory-system configuration.
    pub fn with_memory(mut self, memory: MemorySystemConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Overrides the interference model.
    pub fn with_interference(mut self, interference: CoreInterferenceModel) -> Self {
        self.interference = interference;
        self
    }

    /// The latency bound used for an LC application: the tail latency of the
    /// fixed-frequency scheme at 50% load without colocation (the same
    /// definition as the standalone Rubik evaluation, Sec. 5.2).
    pub fn latency_bound(&self, profile: &AppProfile, requests: usize, seed: u64) -> f64 {
        let mut generator = WorkloadGenerator::new(profile.clone(), seed);
        let trace = generator.steady_trace(0.5, requests);
        StaticOracle::new(self.sim_config.dvfs.clone(), self.quantile)
            .tail_at(&trace, self.sim_config.dvfs.nominal())
            .unwrap_or(profile.mean_service_time() * 3.0)
    }

    /// Runs one colocated core as described by `spec`: the LC application at
    /// its load sharing the core with the batch mix, under the scheme, with
    /// the LC tail bound.
    pub fn run(&self, spec: &ColocRunSpec<'_>) -> ColocOutcome {
        let &ColocRunSpec {
            scheme,
            profile,
            mix,
            latency_bound,
            load,
            requests,
            seed,
        } = spec;
        let dvfs = &self.sim_config.dvfs;
        let mut generator = WorkloadGenerator::new(profile.clone(), seed);
        let base_trace = generator.steady_trace(load, requests);

        // Interference: warm-up penalties in idle gaps plus (if the memory
        // system were unpartitioned) inflated memory-bound time.
        let inflation = self.memory.lc_membound_inflation(mix);
        let trace = self
            .interference
            .apply(&base_trace, profile.mean_service_time(), inflation);

        // Batch frequency: TPW-optimal for the software schemes, the
        // scheme's own preference for the hardware schemes.
        let batch_share = self.memory.batch_llc_share();
        let mean_batch_tpw_freq = self.mean_batch_freq(mix, batch_share);

        let (result, batch_freq) = match scheme {
            ColocScheme::RubikColoc => {
                let mut config = RubikConfig::new(latency_bound).with_profiling_window(2048);
                if self.force_rubik_rebuilds {
                    config = config.without_rebuild_gating();
                }
                let mut rubik = RubikController::new(config, dvfs.clone());
                rubik.seed_profile(
                    trace
                        .requests()
                        .iter()
                        .take(512)
                        .map(|r| (r.compute_cycles, r.membound_time)),
                );
                (
                    Server::new(self.sim_config.clone()).run(&trace, &mut rubik),
                    mean_batch_tpw_freq,
                )
            }
            ColocScheme::StaticColoc => {
                // StaticOracle frequency chosen on the *interference-free*
                // trace: the scheme does not anticipate colocation effects.
                let freq = StaticOracle::new(dvfs.clone(), self.quantile)
                    .lowest_feasible_freq(&base_trace, latency_bound);
                let mut policy = FixedFrequencyPolicy::new(freq);
                (
                    Server::new(self.sim_config.clone()).run(&trace, &mut policy),
                    mean_batch_tpw_freq,
                )
            }
            ColocScheme::HwThroughput => {
                let freq = hw_t_lc_freq(
                    profile,
                    mix,
                    6,
                    dvfs,
                    &self.power,
                    &rubik_power::Tdp::paper(),
                );
                let mut policy = FixedFrequencyPolicy::new(freq);
                let batch = dvfs.nominal(); // IPC-maximizing batch frequency under TDP
                (
                    Server::new(self.sim_config.clone()).run(&trace, &mut policy),
                    batch,
                )
            }
            ColocScheme::HwThroughputPerWatt => {
                let freq = hw_tpw_lc_freq(profile, dvfs, &self.power);
                let mut policy = FixedFrequencyPolicy::new(freq);
                (
                    Server::new(self.sim_config.clone()).run(&trace, &mut policy),
                    mean_batch_tpw_freq,
                )
            }
        };

        let tail = result.tail_latency(self.quantile).unwrap_or(0.0);
        let residency = result.freq_residency();
        let duration = residency.total_time().max(result.end_time());
        let lc_energy = self.power.energy(&residency).active;
        // Batch work fills all non-busy time on the colocated core.
        let idle_time = duration - residency.busy_time();
        let batch_energy = self.power.active_power(batch_freq) * idle_time;
        let batch_work = idle_time * self.mean_batch_throughput(mix, batch_freq, batch_share);

        ColocOutcome {
            tail_latency: tail,
            normalized_tail: tail / latency_bound,
            lc_energy,
            batch_energy,
            batch_work,
            lc_utilization: residency.busy_time() / duration.max(1e-12),
            duration,
        }
    }

    /// Positional-argument shim for the pre-[`ColocRunSpec`] API.
    ///
    /// Equivalent to building a spec and calling [`ColocatedCore::run`]; it
    /// exists only so external callers written against the old signature
    /// keep compiling while they migrate.
    #[deprecated(note = "build a `ColocRunSpec` and call `ColocatedCore::run`")]
    #[allow(clippy::too_many_arguments)]
    pub fn run_positional(
        &self,
        scheme: ColocScheme,
        profile: &AppProfile,
        load: f64,
        mix: &BatchMix,
        latency_bound: f64,
        requests: usize,
        seed: u64,
    ) -> ColocOutcome {
        self.run(
            &ColocRunSpec::new(scheme, profile, mix, latency_bound)
                .with_load(load)
                .with_requests(requests)
                .with_seed(seed),
        )
    }

    /// Mean TPW-optimal batch frequency over the mix.
    fn mean_batch_freq(&self, mix: &BatchMix, llc_share: f64) -> Freq {
        let dvfs = &self.sim_config.dvfs;
        if mix.apps.is_empty() {
            return dvfs.nominal();
        }
        let mean_mhz: f64 = mix
            .apps
            .iter()
            .map(|a| batch_tpw_freq(a, llc_share, dvfs, &self.power).mhz() as f64)
            .sum::<f64>()
            / mix.apps.len() as f64;
        dvfs.floor_level(mean_mhz * 1e6)
    }

    /// Mean batch throughput (work units per second) over the mix at the
    /// given frequency and LLC share.
    pub fn mean_batch_throughput(&self, mix: &BatchMix, freq: Freq, llc_share: f64) -> f64 {
        if mix.apps.is_empty() {
            return 0.0;
        }
        let nominal = self.sim_config.dvfs.nominal();
        mix.apps
            .iter()
            .map(|a| a.throughput(freq, nominal, llc_share))
            .sum::<f64>()
            / mix.apps.len() as f64
    }

    /// The core power model used by this simulator.
    pub fn power_model(&self) -> &CorePowerModel {
        &self.power
    }

    /// The simulator configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim_config
    }

    /// Applies this runner's interference and memory-system model to a trace
    /// (exposed for the colocation benches and tests).
    pub fn transform_trace(&self, trace: &Trace, profile: &AppProfile, mix: &BatchMix) -> Trace {
        let inflation = self.memory.lc_membound_inflation(mix);
        self.interference
            .apply(trace, profile.mean_service_time(), inflation)
    }
}

impl Default for ColocatedCore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ColocatedCore, AppProfile, BatchMix, f64) {
        let core = ColocatedCore::new();
        let profile = AppProfile::masstree();
        let mix = BatchMix::paper_mixes(1)[0].clone();
        let bound = core.latency_bound(&profile, 2000, 11);
        (core, profile, mix, bound)
    }

    #[test]
    fn rubikcoloc_maintains_the_tail_bound() {
        let (core, profile, mix, bound) = setup();
        let outcome = core.run(
            &ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, bound)
                .with_load(0.5)
                .with_requests(2000)
                .with_seed(1),
        );
        assert!(
            outcome.normalized_tail <= 1.15,
            "RubikColoc normalized tail = {}",
            outcome.normalized_tail
        );
        assert!(outcome.batch_work > 0.0);
        assert!(outcome.lc_utilization > 0.2 && outcome.lc_utilization < 0.9);
    }

    #[test]
    fn hardware_schemes_degrade_the_tail_more_than_rubikcoloc() {
        let (core, profile, mix, bound) = setup();
        let at_load = |scheme| {
            ColocRunSpec::new(scheme, &profile, &mix, bound)
                .with_load(0.6)
                .with_requests(1500)
                .with_seed(2)
        };
        let rubik = core.run(&at_load(ColocScheme::RubikColoc));
        let hw_tpw = core.run(&at_load(ColocScheme::HwThroughputPerWatt));
        let hw_t = core.run(&at_load(ColocScheme::HwThroughput));
        assert!(hw_tpw.normalized_tail > rubik.normalized_tail);
        assert!(hw_t.normalized_tail > rubik.normalized_tail);
    }

    #[test]
    fn batch_work_decreases_as_lc_load_increases() {
        let (core, profile, mix, bound) = setup();
        let at_load = |load| {
            ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, bound)
                .with_load(load)
                .with_requests(1500)
                .with_seed(3)
        };
        let low = core.run(&at_load(0.2));
        let high = core.run(&at_load(0.6));
        // Batch throughput is per unit time; compare rates.
        let low_rate = low.batch_work / low.duration;
        let high_rate = high.batch_work / high.duration;
        assert!(low_rate > high_rate);
        assert!(low.lc_utilization < high.lc_utilization);
    }

    #[test]
    fn outcome_energy_accounting_is_consistent() {
        let (core, profile, mix, bound) = setup();
        let o = core.run(
            &ColocRunSpec::new(ColocScheme::StaticColoc, &profile, &mix, bound)
                .with_load(0.4)
                .with_seed(4),
        );
        assert!(o.lc_energy > 0.0);
        assert!(o.batch_energy > 0.0);
        assert!((o.total_energy() - (o.lc_energy + o.batch_energy)).abs() < 1e-12);
        assert!(o.average_power() > 0.0);
    }

    #[test]
    fn interference_free_isolation_matches_standalone_latency() {
        // With no interference and the Rubik scheme, the colocated tail
        // should stay at or under the bound just like the standalone case.
        let core = ColocatedCore::new().with_interference(CoreInterferenceModel::none());
        let profile = AppProfile::moses();
        let mix = BatchMix::paper_mixes(5)[0].clone();
        let bound = core.latency_bound(&profile, 900, 5);
        let o = core.run(
            &ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, bound)
                .with_load(0.4)
                .with_requests(900)
                .with_seed(5),
        );
        assert!(
            o.normalized_tail <= 1.1,
            "normalized tail {}",
            o.normalized_tail
        );
    }

    #[test]
    #[should_panic(expected = "latency bound")]
    fn rejects_nonpositive_bound() {
        let (_, profile, mix, _) = setup();
        let _ = ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn positional_shim_matches_spec_api() {
        let (core, profile, mix, bound) = setup();
        let via_spec = core.run(
            &ColocRunSpec::new(ColocScheme::StaticColoc, &profile, &mix, bound)
                .with_load(0.3)
                .with_requests(600)
                .with_seed(9),
        );
        let via_shim =
            core.run_positional(ColocScheme::StaticColoc, &profile, 0.3, &mix, bound, 600, 9);
        assert_eq!(via_spec, via_shim);
    }
}
