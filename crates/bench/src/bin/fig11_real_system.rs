//! Fig. 11: real-system evaluation — core power savings of StaticOracle and
//! Rubik on masstree and moses with the observed 130 µs DVFS transition
//! latency (Sec. 5.5). The "real system" is modelled as the same simulator
//! with the slow-transition DVFS configuration and a less memory-bound,
//! more variable application profile (larger per-core LLC).

use rubik::AppProfile;
use rubik_bench::{print_header, Harness};

fn main() {
    let harness = Harness::real_system();
    println!("# Fig. 11: real-system core power savings (%) with 130 us DVFS transitions");
    print_header(&["app", "load", "static_oracle", "rubik"]);
    let apps = [
        // Larger LLC: less memory-bound, more variable service times (Sec. 5.5).
        AppProfile::masstree().with_mem_fraction(0.2),
        AppProfile::moses().with_mem_fraction(0.15).with_cov(0.35),
    ];
    for (i, app) in apps.iter().enumerate() {
        let bound = harness.latency_bound(app);
        for (j, load) in [0.3, 0.4, 0.5].into_iter().enumerate() {
            // See fig06: the 50% point is evaluated on the bound-defining
            // trace so measurement noise cannot force StaticOracle above
            // nominal.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 10 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bound);
            let (rubik, _) = harness.run_rubik(&trace, bound, true);
            println!(
                "{}\t{:.0}%\t{:.1}\t{:.1}",
                app.name(),
                load * 100.0,
                Harness::savings_percent(&fixed, &static_oracle),
                Harness::savings_percent(&fixed, &rubik)
            );
        }
    }
}
