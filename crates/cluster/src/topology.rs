//! Failure topology and stochastic fault generation.
//!
//! A [`FailureTopology`] places a fleet's servers into racks and rows —
//! the blast-radius structure real outages follow: a ToR switch or rack
//! PDU failure takes its whole rack down at once. [`CorrelatedFaults`]
//! scripts such rack-level events (all members crash together, each
//! recovering with its own deterministic jitter), and [`StochasticFaults`]
//! draws whole failure histories from seeded MTBF/MTTR renewal processes.
//!
//! Everything **compiles down to an ordinary [`FaultPlan`]**: the random
//! draws happen once, at plan-construction time, from
//! [`DeterministicRng`] streams keyed only on the seed and the
//! server/rack index — never on wall-clock, iteration order, or thread
//! count. The same seed therefore produces a byte-identical plan (and the
//! driver replays any plan bit-exactly at any sweep thread count), so a
//! "random" failure scenario is exactly as reproducible as a scripted
//! one, and the existing validation and bit-neutrality contracts of
//! [`FaultPlan`] apply for free.

use rubik_stats::DeterministicRng;

use crate::fault::FaultPlan;

/// Mixes an index into a seed so each server/rack gets an independent,
/// order-free RNG stream (same idiom as the retry jitter).
fn mix(seed: u64, lane: u64, index: usize) -> u64 {
    seed ^ lane ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Physical placement of a fleet: servers grouped into racks, racks into
/// rows. Failure generators use it to scope correlated events.
///
/// ```
/// use rubik_cluster::FailureTopology;
///
/// // 12 servers, 4 per rack, 2 racks per row: racks {0,1,2}, rows {0,1}.
/// let topo = FailureTopology::grid(12, 4, 2);
/// assert_eq!(topo.racks(), 3);
/// assert_eq!(topo.rows(), 2);
/// assert_eq!(topo.rack_of(5), 1);
/// assert_eq!(topo.rack_members(2), &[8, 9, 10, 11]);
/// assert_eq!(topo.row_of_rack(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureTopology {
    servers: usize,
    per_rack: usize,
    racks_per_row: usize,
}

impl FailureTopology {
    /// Places `servers` servers into racks of `per_rack` (the last rack may
    /// be partial) and rows of `racks_per_row` racks.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn grid(servers: usize, per_rack: usize, racks_per_row: usize) -> Self {
        assert!(servers > 0, "a topology needs at least one server");
        assert!(per_rack > 0, "racks hold at least one server");
        assert!(racks_per_row > 0, "rows hold at least one rack");
        Self {
            servers,
            per_rack,
            racks_per_row,
        }
    }

    /// Number of servers placed.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of racks (the last may be partially filled).
    pub fn racks(&self) -> usize {
        self.servers.div_ceil(self.per_rack)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.racks().div_ceil(self.racks_per_row)
    }

    /// The rack holding `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn rack_of(&self, server: usize) -> usize {
        assert!(server < self.servers, "server {server} not in the topology");
        server / self.per_rack
    }

    /// The row holding `rack`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn row_of_rack(&self, rack: usize) -> usize {
        assert!(rack < self.racks(), "rack {rack} not in the topology");
        rack / self.racks_per_row
    }

    /// The servers in `rack`, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn rack_members(&self, rack: usize) -> Vec<usize> {
        assert!(rack < self.racks(), "rack {rack} not in the topology");
        let start = rack * self.per_rack;
        let end = (start + self.per_rack).min(self.servers);
        (start..end).collect()
    }
}

/// Scripts correlated rack-level outages against a [`FailureTopology`]:
/// one event crashes every member of the rack at the same instant, and
/// each member recovers after the outage's base repair time plus its own
/// deterministic jitter (staggered power-on, fsck, cache warm-up — rack
/// power comes back at once, servers do not).
///
/// ```
/// use rubik_cluster::{CorrelatedFaults, FailureTopology};
///
/// let topo = FailureTopology::grid(8, 4, 2);
/// let plan = CorrelatedFaults::new(&topo, 42)
///     .rack_outage(1, 0.050, 0.020, 0.010)
///     .into_plan();
/// // Rack 1 = servers 4..8: four crashes at t = 50 ms, four jittered
/// // recoveries in [70 ms, 80 ms).
/// assert_eq!(plan.events().len(), 8);
/// assert!(plan.validate(8).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedFaults {
    topology: FailureTopology,
    seed: u64,
    outages: u64,
    plan: FaultPlan,
}

impl CorrelatedFaults {
    /// A generator over `topology`, with `seed` driving the per-member
    /// recovery jitter.
    pub fn new(topology: &FailureTopology, seed: u64) -> Self {
        Self {
            topology: topology.clone(),
            seed,
            outages: 0,
            plan: FaultPlan::new(),
        }
    }

    /// Scripts a whole-rack outage at `at`: every member of `rack` crashes
    /// together and recovers at `at + mttr` plus a per-member uniform
    /// jitter in `[0, jitter)` seconds. Deterministic in `(seed, rack,
    /// outage index, member)`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range, or `at`/`mttr`/`jitter` are not
    /// finite and non-negative with `mttr > 0`.
    pub fn rack_outage(mut self, rack: usize, at: f64, mttr: f64, jitter: f64) -> Self {
        assert!(at.is_finite() && at >= 0.0, "outage time must be finite");
        assert!(mttr.is_finite() && mttr > 0.0, "mttr must be positive");
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative"
        );
        self.outages += 1;
        let event = self.outages;
        for member in self.topology.rack_members(rack) {
            let mut rng = DeterministicRng::new(mix(self.seed, event, member));
            let recover_at = at + mttr + jitter * rng.uniform();
            self.plan = self.plan.crash(member, at).recover(member, recover_at);
        }
        self
    }

    /// The accumulated plan (validate it against the fleet on attach, as
    /// with any hand-written plan).
    pub fn into_plan(self) -> FaultPlan {
        self.plan
    }
}

/// Draws whole failure histories from seeded MTBF/MTTR renewal processes —
/// per-server independent failures, rack-correlated failures, or both —
/// and compiles them into a validated [`FaultPlan`].
///
/// Per source (each server, each rack) the generator runs a renewal
/// process: exponential time-to-failure with the configured MTBF, then an
/// exponential repair with the configured MTTR, repeating until the
/// horizon. Rack events take every member down together, with per-member
/// recovery jitter. Overlapping downtime from different sources (a rack
/// dies while one member is already down) is merged into a single
/// crash/recover pair per server — the server stays down until the last
/// repair finishes — so the compiled plan always satisfies
/// [`FaultPlan::validate`]'s no-double-crash rule.
///
/// ```
/// use rubik_cluster::{FailureTopology, StochasticFaults};
///
/// let topo = FailureTopology::grid(16, 4, 2);
/// let gen = StochasticFaults::new()
///     .with_server_failures(0.8, 0.05)
///     .with_rack_failures(2.0, 0.1)
///     .with_recovery_jitter(0.02);
/// let plan = gen.compile(&topo, 10.0, 7);
/// assert!(plan.validate(16).is_ok());
/// // Same seed, same bytes; the scenario replays exactly.
/// assert_eq!(plan, gen.compile(&topo, 10.0, 7));
/// assert_ne!(plan, gen.compile(&topo, 10.0, 8));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StochasticFaults {
    /// `(mtbf, mttr)` of the per-server independent failure process.
    server_failures: Option<(f64, f64)>,
    /// `(mtbf, mttr)` of the per-rack correlated failure process.
    rack_failures: Option<(f64, f64)>,
    /// Upper bound on the per-member uniform recovery jitter, seconds.
    recovery_jitter: f64,
}

impl StochasticFaults {
    /// A generator with no failure processes (compiles to an empty,
    /// bit-neutral plan).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an independent per-server failure process: exponential
    /// time-between-failures with mean `mtbf`, exponential repair with
    /// mean `mttr`, both in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless both means are finite and positive.
    pub fn with_server_failures(mut self, mtbf: f64, mttr: f64) -> Self {
        assert!(mtbf.is_finite() && mtbf > 0.0, "mtbf must be positive");
        assert!(mttr.is_finite() && mttr > 0.0, "mttr must be positive");
        self.server_failures = Some((mtbf, mttr));
        self
    }

    /// Adds a correlated per-rack failure process (same renewal shape);
    /// each event crashes the whole rack at once.
    ///
    /// # Panics
    ///
    /// Panics unless both means are finite and positive.
    pub fn with_rack_failures(mut self, mtbf: f64, mttr: f64) -> Self {
        assert!(mtbf.is_finite() && mtbf > 0.0, "mtbf must be positive");
        assert!(mttr.is_finite() && mttr > 0.0, "mttr must be positive");
        self.rack_failures = Some((mtbf, mttr));
        self
    }

    /// Sets the per-member uniform recovery jitter bound for rack events,
    /// in seconds (default 0: the whole rack recovers at one instant).
    ///
    /// # Panics
    ///
    /// Panics unless `jitter` is finite and non-negative.
    pub fn with_recovery_jitter(mut self, jitter: f64) -> Self {
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative"
        );
        self.recovery_jitter = jitter;
        self
    }

    /// Compiles a failure history over `[0, horizon)` into a validated
    /// [`FaultPlan`]. Failures drawn at or beyond the horizon are
    /// discarded (a repair may finish past it — downtime then runs to the
    /// end of the run). Deterministic in `(self, topology, horizon,
    /// seed)`: same inputs, byte-identical plan.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is finite and positive.
    pub fn compile(&self, topology: &FailureTopology, horizon: f64, seed: u64) -> FaultPlan {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be finite and positive"
        );
        let n = topology.servers();
        // Candidate downtime intervals per server, from every source.
        let mut intervals: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
        if let Some((mtbf, mttr)) = self.server_failures {
            for (server, windows) in intervals.iter_mut().enumerate() {
                let mut rng = DeterministicRng::new(mix(seed, 0x5EFE_1234_0000_0001, server));
                let mut t = rng.exponential(mtbf);
                while t < horizon {
                    let repair = rng.exponential(mttr);
                    windows.push((t, t + repair));
                    t += repair + rng.exponential(mtbf);
                }
            }
        }
        if let Some((mtbf, mttr)) = self.rack_failures {
            for rack in 0..topology.racks() {
                let mut rng = DeterministicRng::new(mix(seed, 0x5EFE_1234_0000_0002, rack));
                let mut t = rng.exponential(mtbf);
                while t < horizon {
                    let repair = rng.exponential(mttr);
                    for member in topology.rack_members(rack) {
                        let mut jrng = DeterministicRng::new(mix(seed, t.to_bits(), member));
                        let end = t + repair + self.recovery_jitter * jrng.uniform();
                        intervals[member].push((t, end));
                    }
                    t += repair + rng.exponential(mtbf);
                }
            }
        }
        // Merge each server's overlapping intervals into disjoint
        // crash/recover pairs, then emit fleet-wide in (time, server)
        // order so the plan reads chronologically.
        let mut merged: Vec<(f64, usize, f64)> = Vec::new();
        for (server, windows) in intervals.iter_mut().enumerate() {
            windows.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
            let mut open: Option<(f64, f64)> = None;
            for &(start, end) in windows.iter() {
                match open {
                    Some((s, e)) if start <= e => open = Some((s, e.max(end))),
                    Some((s, e)) => {
                        merged.push((s, server, e));
                        open = Some((start, end));
                    }
                    None => open = Some((start, end)),
                }
            }
            if let Some((s, e)) = open {
                merged.push((s, server, e));
            }
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut plan = FaultPlan::new();
        for (start, server, end) in merged {
            plan = plan.crash(server, start).recover(server, end);
        }
        debug_assert!(plan.validate(n).is_ok(), "compiled plan must validate");
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    #[test]
    fn grid_topology_places_servers_in_racks_and_rows() {
        let topo = FailureTopology::grid(10, 4, 2);
        assert_eq!(topo.servers(), 10);
        assert_eq!(topo.racks(), 3, "last rack partial");
        assert_eq!(topo.rows(), 2);
        assert_eq!(topo.rack_of(0), 0);
        assert_eq!(topo.rack_of(9), 2);
        assert_eq!(topo.rack_members(2), vec![8, 9]);
        assert_eq!(topo.row_of_rack(0), 0);
        assert_eq!(topo.row_of_rack(2), 1);
    }

    #[test]
    #[should_panic(expected = "not in the topology")]
    fn out_of_range_server_is_rejected() {
        FailureTopology::grid(4, 2, 1).rack_of(4);
    }

    #[test]
    fn rack_outage_crashes_the_whole_rack_together() {
        let topo = FailureTopology::grid(8, 4, 2);
        let plan = CorrelatedFaults::new(&topo, 42)
            .rack_outage(1, 0.050, 0.020, 0.010)
            .into_plan();
        assert!(plan.validate(8).is_ok());
        let crashes: Vec<usize> = plan
            .events()
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { server, at } => {
                    assert_eq!(at, 0.050, "members crash at one instant");
                    Some(server)
                }
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![4, 5, 6, 7]);
        for e in plan.events() {
            if let FaultEvent::Recover { at, .. } = *e {
                assert!(
                    (0.070..0.080).contains(&at),
                    "recovery {at} outside the jitter window"
                );
            }
        }
        // Jitter staggers the members: not all recoveries coincide.
        let recoveries: Vec<u64> = plan
            .events()
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Recover { at, .. } => Some(at.to_bits()),
                _ => None,
            })
            .collect();
        assert_eq!(recoveries.len(), 4);
        assert!(
            recoveries.windows(2).any(|w| w[0] != w[1]),
            "per-member jitter must stagger recoveries"
        );
    }

    #[test]
    fn correlated_outages_are_seed_deterministic() {
        let topo = FailureTopology::grid(8, 4, 2);
        let build = |seed| {
            CorrelatedFaults::new(&topo, seed)
                .rack_outage(0, 0.010, 0.030, 0.005)
                .rack_outage(1, 0.100, 0.020, 0.005)
                .into_plan()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn stochastic_compile_is_seed_deterministic_and_valid() {
        let topo = FailureTopology::grid(16, 4, 2);
        let gen = StochasticFaults::new()
            .with_server_failures(0.5, 0.05)
            .with_rack_failures(1.0, 0.08)
            .with_recovery_jitter(0.02);
        let a = gen.compile(&topo, 20.0, 99);
        let b = gen.compile(&topo, 20.0, 99);
        assert_eq!(a, b, "same seed, same bytes");
        assert_ne!(a, gen.compile(&topo, 20.0, 100));
        assert!(a.validate(16).is_ok());
        assert!(!a.is_empty(), "20 s at these rates must draw failures");
        for e in a.events() {
            if let FaultEvent::Crash { at, .. } = *e {
                assert!(at < 20.0, "crash {at} beyond the horizon");
            }
        }
    }

    #[test]
    fn overlapping_sources_merge_into_single_downtime_windows() {
        // Aggressive rates force rack and server downtime to overlap; the
        // merge must still satisfy validate's no-double-crash rule (also
        // exercised by the debug_assert inside compile).
        let topo = FailureTopology::grid(8, 4, 1);
        let gen = StochasticFaults::new()
            .with_server_failures(0.05, 0.1)
            .with_rack_failures(0.05, 0.1)
            .with_recovery_jitter(0.05);
        for seed in 0..20 {
            let plan = gen.compile(&topo, 5.0, seed);
            assert!(plan.validate(8).is_ok(), "seed {seed}");
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn no_processes_compile_to_the_empty_bit_neutral_plan() {
        let topo = FailureTopology::grid(4, 2, 1);
        let plan = StochasticFaults::new().compile(&topo, 1.0, 3);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::new());
    }
}
