//! Fig. 15: distribution of tail latency (relative to the bound) across
//! LC-application x batch-mix combinations at 60% load, for the four
//! colocation schemes.
//!
//! The scheme × app × mix grid runs on `rubik-sweep`; pass `--threads N`
//! to control the worker pool.

use rubik::coloc::ColocRunSpec;
use rubik::{AppProfile, BatchMix, ColocScheme, ColocatedCore, SweepSpec};
use rubik_bench::{print_header, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    // The paper uses 5 apps x 20 mixes = 100 combinations; a reduced grid of
    // 5 x 4 = 20 keeps the harness fast while preserving the distributions.
    let mixes_per_app = 4;
    let requests = args.requests.unwrap_or(1500);
    let load = 0.6;

    let core = ColocatedCore::new();
    let apps = AppProfile::all();
    let mixes = BatchMix::paper_mixes(args.seed.unwrap_or(2015));
    let schemes = ColocScheme::all();
    let executor = args.executor();

    // The latency bound is per app, shared by all schemes and mixes; fan the
    // calibration runs out first.
    let bounds = executor.map_indexed(&apps, |i, app| {
        core.latency_bound(app, requests, 10 + i as u64)
    });

    let spec = SweepSpec::new()
        .axis("scheme", schemes.len())
        .axis("app", apps.len())
        .axis("mix", mixes_per_app);
    let tails = executor
        .run(&spec, |cell| {
            let (s, i, m) = (cell.get("scheme"), cell.get("app"), cell.get("mix"));
            let mix = &mixes[(i * mixes_per_app + m) % mixes.len()];
            core.run(
                &ColocRunSpec::new(schemes[s], &apps[i], mix, bounds[i])
                    .with_load(load)
                    .with_requests(requests)
                    .with_seed((100 + i * 10 + m) as u64),
            )
            .normalized_tail
        })
        .into_results();

    println!(
        "# Fig. 15: normalized tail latency across workload mixes at 60% load (sorted, descending)"
    );
    let mut per_scheme: Vec<(String, Vec<f64>)> = Vec::new();
    for (s, scheme) in schemes.iter().enumerate() {
        let mut scheme_tails: Vec<f64> = (0..apps.len())
            .flat_map(|i| (0..mixes_per_app).map(move |m| (i, m)))
            .map(|(i, m)| tails[spec.index_of(&[s, i, m])])
            .collect();
        scheme_tails.sort_by(|a, b| b.partial_cmp(a).unwrap());
        per_scheme.push((scheme.name().to_string(), scheme_tails));
    }

    print_header(&["mix_rank", "StaticColoc", "RubikColoc", "HW-T", "HW-TPW"]);
    let n = per_scheme[0].1.len();
    let col = |name: &str| {
        per_scheme
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let static_c = col("StaticColoc");
    let rubik_c = col("RubikColoc");
    let hwt = col("HW-T");
    let hwtpw = col("HW-TPW");
    for i in 0..n {
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            i, static_c[i], rubik_c[i], hwt[i], hwtpw[i]
        );
    }
    println!();
    println!(
        "# max normalized tails: StaticColoc {:.2}, RubikColoc {:.2}, HW-T {:.2}, HW-TPW {:.2}",
        static_c[0], rubik_c[0], hwt[0], hwtpw[0]
    );
}
