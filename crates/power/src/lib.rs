//! Core and full-system power models for the Rubik reproduction.
//!
//! The paper trains a full-system power model on a Haswell server using RAPL
//! and wall-plug measurements, then uses it to report core power savings
//! (Fig. 6, Fig. 11), core energy per request (Fig. 1a, Fig. 9b), full-system
//! savings (Fig. 12), and datacenter power (Fig. 16). We substitute an
//! analytic CMOS model with a Haswell-like voltage/frequency curve (see
//! `DESIGN.md`), and additionally reproduce the paper's *fitting methodology*
//! in [`regression`]: synthetic counter samples, least-squares fit, and
//! k-fold cross-validation of the model error.
//!
//! Key types:
//!
//! * [`VfCurve`] — voltage as a function of frequency,
//! * [`CorePowerModel`] — active/idle/sleep core power and energy from a
//!   simulation's [`FreqResidency`],
//! * [`ServerPowerModel`] — uncore, DRAM, and "other" components on top of
//!   the cores (Fig. 12, Fig. 16),
//! * [`regression::PowerRegression`] — the RAPL-style model fit,
//! * [`Tdp`] — thermal design power checks for coordinated DVFS schemes.
//!
//! # Example
//!
//! ```
//! use rubik_power::CorePowerModel;
//! use rubik_sim::Freq;
//!
//! let model = CorePowerModel::haswell_like();
//! let p_low = model.active_power(Freq::from_mhz(800));
//! let p_nom = model.active_power(Freq::from_mhz(2400));
//! assert!(p_low < p_nom / 2.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core_power;
pub mod regression;
pub mod server;
pub mod tdp;
pub mod vf;

pub use core_power::{CoreEnergy, CorePowerModel};
pub use regression::{CounterSample, PowerRegression, RegressionReport};
pub use server::{ServerEnergy, ServerPowerModel};
pub use tdp::Tdp;
pub use vf::VfCurve;
