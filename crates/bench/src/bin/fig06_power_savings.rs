//! Fig. 6: core power savings of StaticOracle, AdrenalineOracle and Rubik
//! over the fixed-frequency baseline, for each application at 30/40/50% load.
//!
//! The (app × load) grid runs on `rubik-sweep`; pass `--threads N` to
//! control the worker pool (results are identical for any thread count).
//! `--trace-out PATH` additionally writes a telemetry trace of the
//! representative run (Rubik on masstree at 50% load).

use rubik::{AppProfile, SweepSpec, TraceLog};
use rubik_bench::{print_header, BenchArgs, Harness};

fn main() {
    let args = BenchArgs::parse();
    let harness = args.apply(Harness::new());
    let apps = AppProfile::all();
    let loads = [0.3, 0.4, 0.5];
    let executor = args.executor();

    // Each latency bound is an independent calibration run; fan them out
    // before the grid so every cell only reads.
    let bounds = executor.map(&apps, |app| harness.latency_bound(app));

    let spec = SweepSpec::new()
        .axis("app", apps.len())
        .axis("load", loads.len());
    let cells = executor
        .run(&spec, |cell| {
            let (i, j) = (cell.get("app"), cell.get("load"));
            let (app, load) = (&apps[i], loads[j]);
            // At 50% load, evaluate on the same trace that defined the bound
            // (the paper's target is literally the fixed-frequency tail of
            // this run), so statistical noise cannot push StaticOracle above
            // the nominal frequency.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 10 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bounds[i]);
            let adrenaline = harness.run_adrenaline(&trace, bounds[i]);
            let (rubik, _) = harness.run_rubik(&trace, bounds[i], true);
            [
                Harness::savings_percent(&fixed, &static_oracle),
                Harness::savings_percent(&fixed, &adrenaline),
                Harness::savings_percent(&fixed, &rubik),
            ]
        })
        .into_results();

    println!("# Fig. 6: core power savings (%) over fixed 2.4 GHz");
    print_header(&["app", "load", "static_oracle", "adrenaline_oracle", "rubik"]);
    let mut totals = [0.0f64; 3];
    for (cell, [s, a, r]) in spec.cells().zip(&cells) {
        println!(
            "{}\t{:.0}%\t{:.1}\t{:.1}\t{:.1}",
            apps[cell.get("app")].name(),
            loads[cell.get("load")] * 100.0,
            s,
            a,
            r
        );
        totals[0] += s;
        totals[1] += a;
        totals[2] += r;
    }
    let count = cells.len() as f64;
    println!(
        "mean\tall\t{:.1}\t{:.1}\t{:.1}",
        totals[0] / count,
        totals[1] / count,
        totals[2] / count
    );

    if args.tracing() {
        // The representative run: Rubik on masstree at 50% load, the
        // paper's headline cell. Single-server runs have no fault or
        // migration events; the log carries the request lifecycle.
        let app = AppProfile::masstree();
        let bound = harness.latency_bound(&app);
        let trace = harness.trace(&app, 0.5, 777);
        let (_, result) = harness.run_rubik(&trace, bound, true);
        args.emit_trace(&TraceLog::from_results(&[result]));
    }
}
