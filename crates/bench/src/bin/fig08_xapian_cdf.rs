//! Fig. 8: xapian at 50% load — response-latency CDF and Rubik's frequency
//! histogram (the higher service-time variability makes Rubik more
//! conservative than on masstree).

use rubik::core::replay;
use rubik::{AdrenalineOracle, AppProfile, StaticOracle};
use rubik_bench::{print_header, BenchArgs, Harness, TAIL_QUANTILE};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    let profile = AppProfile::xapian();
    let bound = harness.latency_bound(&profile);
    let trace = harness.trace(&profile, 0.5, 8);

    let oracle = StaticOracle::new(harness.sim.dvfs.clone(), TAIL_QUANTILE);
    let static_freq = oracle.lowest_feasible_freq(&trace, bound);
    let static_lat: Vec<f64> = replay(&trace, &vec![static_freq; trace.len()])
        .iter()
        .map(|r| r.latency())
        .collect();

    let adrenaline = AdrenalineOracle::new(harness.sim.dvfs.clone(), TAIL_QUANTILE).train(
        &trace,
        bound,
        harness.active_power(),
    );
    let adren_lat: Vec<f64> = replay(&trace, &adrenaline.assign(&trace))
        .iter()
        .map(|r| r.latency())
        .collect();

    let (_, rubik_result) = harness.run_rubik(&trace, bound, true);
    let rubik_lat = rubik_result.latencies();

    println!(
        "# Fig. 8: xapian @ 50% load, tail bound {:.0} us",
        bound * 1e6
    );
    println!("## Response-latency CDF (us)");
    print_header(&["percentile", "static_oracle", "adrenaline_oracle", "rubik"]);
    for pct in [5, 10, 25, 50, 75, 90, 95, 99] {
        let q = pct as f64 / 100.0;
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}",
            pct,
            rubik::stats::percentile(&static_lat, q).unwrap() * 1e6,
            rubik::stats::percentile(&adren_lat, q).unwrap() * 1e6,
            rubik::stats::percentile(&rubik_lat, q).unwrap() * 1e6
        );
    }

    println!("## Rubik busy-frequency histogram (fraction of busy time)");
    print_header(&["freq_ghz", "fraction"]);
    for (freq, frac) in rubik_result.freq_residency().busy_fraction_per_freq() {
        println!("{:.1}\t{:.3}", freq.ghz(), frac);
    }
}
