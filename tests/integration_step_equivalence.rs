//! Step-vs-run equivalence with the real controllers: `Server::run` and the
//! open-loop `ServerSim` stepping surface must be bitwise-identical for
//! every policy in the repository — including Rubik itself, whose spectral
//! table rebuilds and feedback controller fire on the periodic tick and
//! would drift immediately if the stepping surface reordered or dropped a
//! single callback.
//!
//! Policies × idle modes × seeds; arrivals offered both up front and
//! incrementally (each request only when simulated time reaches it — the
//! cluster driver's pattern).

use rubik::core::PegasusConfig;
use rubik::sim::IdleMode;
use rubik::{
    AppProfile, DvfsPolicy, FixedFrequencyPolicy, PegasusPolicy, RubikConfig, RubikController,
    RunResult, Server, ServerSim, SimConfig, Trace, WorkloadGenerator,
};

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.compute_cycles.to_bits(),
            rec.membound_time.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

/// Builds every controller under test. Rubik is seeded from the head of the
/// trace exactly as the experiment harness does.
fn policies(config: &SimConfig, trace: &Trace, bound: f64) -> Vec<Box<dyn DvfsPolicy>> {
    let seeded_rubik = |cfg: RubikConfig| {
        let mut rubik = RubikController::new(cfg, config.dvfs.clone());
        rubik.seed_profile(
            trace
                .requests()
                .iter()
                .take(512)
                .map(|r| (r.compute_cycles, r.membound_time)),
        );
        rubik
    };
    vec![
        Box::new(FixedFrequencyPolicy::new(config.dvfs.nominal())),
        Box::new(seeded_rubik(
            RubikConfig::new(bound).with_profiling_window(2048),
        )),
        Box::new(seeded_rubik(
            RubikConfig::new(bound)
                .with_profiling_window(2048)
                .without_feedback(),
        )),
        Box::new(PegasusPolicy::new(
            PegasusConfig::new(bound),
            config.dvfs.clone(),
        )),
    ]
}

#[test]
fn all_controllers_step_bitwise_identically_to_run() {
    let configs = [
        SimConfig::paper_simulated(),
        SimConfig::paper_simulated().with_idle_mode(IdleMode::Sleep {
            wakeup_latency: 100e-6,
        }),
        SimConfig::paper_real_system(),
    ];
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();

    for config in &configs {
        for seed in [1u64, 2015] {
            let trace = WorkloadGenerator::new(profile.clone(), seed).steady_trace(0.5, 800);

            let names: Vec<String> = policies(config, &trace, bound)
                .iter()
                .map(|p| p.name().to_string())
                .collect();

            // Reference: the closed-loop wrapper.
            let reference: Vec<Vec<u64>> = policies(config, &trace, bound)
                .into_iter()
                .map(|mut p| result_bits(&Server::new(config.clone()).run(&trace, &mut p)))
                .collect();

            // Open-loop, everything offered up front.
            for (i, policy) in policies(config, &trace, bound).into_iter().enumerate() {
                let mut sim = ServerSim::new(config.clone(), policy);
                sim.offer_all(trace.requests().iter().copied());
                sim.close();
                sim.run_to_completion();
                assert!(
                    result_bits(&sim.finish()) == reference[i],
                    "up-front stepping diverged: policy {}, seed {seed}",
                    names[i]
                );
            }

            // Open-loop, arrivals offered only as time reaches them.
            for (i, policy) in policies(config, &trace, bound).into_iter().enumerate() {
                let mut sim = ServerSim::new(config.clone(), policy);
                for &req in trace.requests() {
                    while sim.next_event_time().is_some_and(|t| t < req.arrival) {
                        sim.step().expect("a due event must fire");
                    }
                    sim.offer(req);
                }
                sim.close();
                sim.run_to_completion();
                assert!(
                    result_bits(&sim.finish()) == reference[i],
                    "incremental stepping diverged: policy {}, seed {seed}",
                    names[i]
                );
            }
        }
    }
}
