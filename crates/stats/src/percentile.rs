//! Exact percentile computation over sample sets.
//!
//! The evaluation harness measures tail latency (95th percentile by default,
//! paper Sec. 5.1) over complete runs and over rolling windows. These helpers
//! compute exact empirical percentiles with the "nearest-rank, ceiling"
//! convention, which never reports a value smaller than the true percentile.

/// Returns the `q`-quantile (`0 <= q <= 1`) of `samples`.
///
/// The input does not need to be sorted; a copy is sorted internally. Returns
/// `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    Some(percentile_of_sorted(&sorted, q))
}

/// Returns the `q`-quantile of an already-sorted, non-empty slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(
        !sorted.is_empty(),
        "cannot take the percentile of no samples"
    );
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if q <= 0.0 {
        return sorted[0];
    }
    // Nearest-rank with ceiling: the smallest value v such that at least
    // q·n samples are <= v.
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Fraction of samples strictly greater than `bound`.
pub fn fraction_above(samples: &[f64], bound: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s > bound).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert!(percentile(&[], 0.95).is_none());
    }

    #[test]
    fn single_sample() {
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
    }

    #[test]
    fn median_of_odd_count() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.5), Some(3.0));
    }

    #[test]
    fn p95_of_hundred() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.95), Some(95.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
    }

    #[test]
    fn nearest_rank_never_underestimates() {
        // At least q·n of the samples must be <= reported percentile.
        let v: Vec<f64> = (0..37).map(|i| (i * 13 % 37) as f64).collect();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let p = percentile(&v, q).unwrap();
            let frac = v.iter().filter(|&&x| x <= p).count() as f64 / v.len() as f64;
            assert!(frac >= q - 1e-12);
        }
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_above(&v, 2.0), 0.5);
        assert_eq!(fraction_above(&v, 0.0), 1.0);
        assert_eq!(fraction_above(&v, 4.0), 0.0);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn sorted_percentile_rejects_empty() {
        let _ = percentile_of_sorted(&[], 0.5);
    }
}
