//! Voltage/frequency curve.

use serde::{Deserialize, Serialize};

use rubik_sim::Freq;

/// Supply voltage as a (piecewise-linear) function of frequency.
///
/// Modern parts require higher voltage at higher frequency; dynamic power
/// scales as `V²·f`, which is why DVFS saves superlinear power. The default
/// curve is Haswell-like: 0.65 V at 0.8 GHz rising linearly to 1.05 V at
/// 3.4 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    min_freq: Freq,
    max_freq: Freq,
    min_voltage: f64,
    max_voltage: f64,
}

impl VfCurve {
    /// Creates a linear V/f curve between `(min_freq, min_voltage)` and
    /// `(max_freq, max_voltage)`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency range is empty or voltages are not positive
    /// and non-decreasing.
    pub fn linear(min_freq: Freq, max_freq: Freq, min_voltage: f64, max_voltage: f64) -> Self {
        assert!(max_freq > min_freq, "frequency range must be non-empty");
        assert!(
            min_voltage > 0.0 && max_voltage >= min_voltage,
            "voltages must be positive and non-decreasing"
        );
        Self {
            min_freq,
            max_freq,
            min_voltage,
            max_voltage,
        }
    }

    /// The Haswell-like curve used throughout the reproduction.
    pub fn haswell_like() -> Self {
        Self::linear(Freq::from_mhz(800), Freq::from_mhz(3400), 0.65, 1.05)
    }

    /// Voltage at frequency `f`, clamped to the curve's endpoints outside the
    /// range.
    pub fn voltage(&self, f: Freq) -> f64 {
        let fr = f.mhz().clamp(self.min_freq.mhz(), self.max_freq.mhz()) as f64;
        let lo = self.min_freq.mhz() as f64;
        let hi = self.max_freq.mhz() as f64;
        let t = (fr - lo) / (hi - lo);
        self.min_voltage + t * (self.max_voltage - self.min_voltage)
    }

    /// Lowest voltage on the curve.
    pub fn min_voltage(&self) -> f64 {
        self.min_voltage
    }

    /// Highest voltage on the curve.
    pub fn max_voltage(&self) -> f64 {
        self.max_voltage
    }
}

impl Default for VfCurve {
    fn default() -> Self {
        Self::haswell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let curve = VfCurve::haswell_like();
        let mut prev = 0.0;
        for mhz in (800..=3400).step_by(200) {
            let v = curve.voltage(Freq::from_mhz(mhz));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn endpoints_match() {
        let curve = VfCurve::haswell_like();
        assert!((curve.voltage(Freq::from_mhz(800)) - 0.65).abs() < 1e-12);
        assert!((curve.voltage(Freq::from_mhz(3400)) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_clamped() {
        let curve = VfCurve::haswell_like();
        assert!((curve.voltage(Freq::from_mhz(100)) - 0.65).abs() < 1e-12);
        assert!((curve.voltage(Freq::from_mhz(5000)) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_interpolated() {
        let curve = VfCurve::linear(Freq::from_mhz(1000), Freq::from_mhz(3000), 0.6, 1.0);
        assert!((curve.voltage(Freq::from_mhz(2000)) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        let _ = VfCurve::linear(Freq::from_mhz(2000), Freq::from_mhz(2000), 0.6, 1.0);
    }
}
