//! StaticOracle: the lowest static frequency that meets the tail bound.
//!
//! The paper's StaticOracle (Sec. 5.2) chooses, for a given request trace and
//! load, the lowest single frequency whose 95th-percentile latency stays
//! within the bound. It upper-bounds the savings of feedback controllers such
//! as Pegasus, which must additionally guard-band. The oracle is "trained"
//! on the exact trace it is evaluated on — that is what makes it an oracle.

use rubik_sim::{DvfsConfig, Freq, Trace};

use crate::replay::{replay, replay_tail};

/// Finds static-oracle frequencies for traces.
#[derive(Debug, Clone)]
pub struct StaticOracle {
    dvfs: DvfsConfig,
    quantile: f64,
}

impl StaticOracle {
    /// Creates an oracle over the given DVFS domain and tail quantile.
    ///
    /// # Panics
    ///
    /// Panics if the quantile is not in `(0, 1)`.
    pub fn new(dvfs: DvfsConfig, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        Self { dvfs, quantile }
    }

    /// The lowest frequency level whose tail latency on `trace` is within
    /// `latency_bound`, or the maximum level if no level meets the bound
    /// (matching the paper's behaviour at overload, where StaticOracle keeps
    /// the tail as low as possible).
    pub fn lowest_feasible_freq(&self, trace: &Trace, latency_bound: f64) -> Freq {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        for &level in self.dvfs.levels() {
            if let Some(tail) = self.tail_at(trace, level) {
                if tail <= latency_bound {
                    return level;
                }
            } else {
                // An empty trace meets any bound at the lowest level.
                return level;
            }
        }
        self.dvfs.max()
    }

    /// Tail latency of the trace when every request runs at `freq`.
    pub fn tail_at(&self, trace: &Trace, freq: Freq) -> Option<f64> {
        let records = replay(trace, &vec![freq; trace.len()]);
        replay_tail(&records, self.quantile)
    }

    /// The quantile used for tail computations.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::FixedFrequencyPolicy;
    use rubik_workloads::{AppProfile, WorkloadGenerator};

    fn oracle() -> StaticOracle {
        StaticOracle::new(DvfsConfig::haswell_like(), 0.95)
    }

    fn trace(load: f64, n: usize, seed: u64) -> Trace {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), seed);
        g.steady_trace(load, n)
    }

    #[test]
    fn chosen_frequency_meets_the_bound() {
        let t = trace(0.4, 3000, 1);
        let o = oracle();
        let bound = o.tail_at(&t, Freq::from_mhz(2400)).unwrap() * 1.0;
        let f = o.lowest_feasible_freq(&t, bound);
        assert!(o.tail_at(&t, f).unwrap() <= bound);
        assert!(f <= Freq::from_mhz(2400));
    }

    #[test]
    fn chosen_frequency_is_the_lowest_feasible() {
        let t = trace(0.4, 3000, 2);
        let o = oracle();
        let bound = o.tail_at(&t, Freq::from_mhz(2400)).unwrap();
        let f = o.lowest_feasible_freq(&t, bound);
        if f > DvfsConfig::haswell_like().min() {
            let one_lower = Freq::from_mhz(f.mhz() - 200);
            assert!(o.tail_at(&t, one_lower).unwrap() > bound);
        }
    }

    #[test]
    fn higher_load_needs_higher_static_frequency() {
        let o = oracle();
        // Define the bound from the 50%-load tail at nominal, as the paper does.
        let t50 = trace(0.5, 4000, 3);
        let bound = o.tail_at(&t50, Freq::from_mhz(2400)).unwrap();
        let f30 = o.lowest_feasible_freq(&trace(0.3, 4000, 3), bound);
        let f50 = o.lowest_feasible_freq(&t50, bound);
        assert!(f30 <= f50, "f30 {f30} vs f50 {f50}");
        assert!(f30 < Freq::from_mhz(2400));
    }

    #[test]
    fn infeasible_bound_returns_max_frequency() {
        let t = trace(0.6, 2000, 4);
        let o = oracle();
        assert_eq!(
            o.lowest_feasible_freq(&t, 1e-9),
            DvfsConfig::haswell_like().max()
        );
    }

    #[test]
    fn oracle_frequency_matches_event_simulation_tail() {
        // The frequency chosen from replay should also meet the bound in the
        // full event-driven simulator (which adds only V/F transition
        // effects, absent at a fixed frequency).
        use rubik_sim::{Server, SimConfig};
        let t = trace(0.45, 2000, 5);
        let o = oracle();
        let bound = o.tail_at(&t, Freq::from_mhz(2400)).unwrap() * 1.1;
        let f = o.lowest_feasible_freq(&t, bound);
        let mut policy = FixedFrequencyPolicy::new(f);
        let result = Server::new(SimConfig::default()).run(&t, &mut policy);
        assert!(result.tail_latency(0.95).unwrap() <= bound * 1.01);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        let _ = StaticOracle::new(DvfsConfig::haswell_like(), 0.0);
    }
}
