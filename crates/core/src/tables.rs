//! Target tail tables.
//!
//! The core of Rubik's efficiency (paper Sec. 4.2, Fig. 5): instead of
//! convolving service-demand distributions on every frequency decision, the
//! controller periodically precomputes two small lookup tables — one for
//! compute cycles and one for memory-bound time. Each row corresponds to a
//! quantile band (octiles in the paper's implementation) of how much work the
//! in-service request has already performed (ω), and each column to a queue
//! position. Entry `(row, i)` is the target-quantile ("tail") amount of
//! *remaining* work until the request at queue position `i` completes:
//!
//! * position 0 is the request in service, whose remaining-work distribution
//!   is the service distribution conditioned on ω,
//! * position `i > 0` adds `i` further independent draws of the service
//!   distribution (a convolution per position),
//! * for positions at or beyond the configurable cutoff (16 in the paper),
//!   the distribution is replaced by its Gaussian (CLT) approximation, so
//!   the tables stay small no matter how long the queue grows.

use rubik_stats::{GaussianTail, Histogram};
use serde::{Deserialize, Serialize};

/// Queue depth at which the Gaussian approximation takes over
/// ("We use this formulation for i ≥ 16", Sec. 4.2).
pub const DEFAULT_GAUSSIAN_CUTOFF: usize = 16;

/// Number of progress (ω) rows; the paper's implementation uses octiles.
pub const DEFAULT_PROGRESS_ROWS: usize = 8;

/// Mean memory-bound time below which the memory component is treated as
/// absent (avoids charging a full histogram bucket of phantom memory time to
/// compute-only workloads).
const NEGLIGIBLE_MEM_TIME: f64 = 1e-9;

/// One precomputed table (compute cycles or memory time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TailTable {
    /// `rows[row][pos]`: tail remaining work for queue position `pos` when
    /// the in-service request's elapsed work falls in band `row`.
    rows: Vec<Vec<f64>>,
    /// Lower boundary of each elapsed-work band (ascending; first is 0).
    boundaries: Vec<f64>,
    /// Mean/variance of the conditioned in-service distribution, per row
    /// (used by the Gaussian extension).
    cond_mean: Vec<f64>,
    cond_var: Vec<f64>,
    /// Mean/variance of the unconditioned service distribution.
    mean: f64,
    var: f64,
}

impl TailTable {
    fn build(hist: &Histogram, quantile: f64, rows: usize, cutoff: usize) -> Self {
        let z = GaussianTail::new(quantile);
        let mut table_rows = Vec::with_capacity(rows);
        let mut boundaries = Vec::with_capacity(rows);
        let mut cond_mean = Vec::with_capacity(rows);
        let mut cond_var = Vec::with_capacity(rows);

        // Trim negligible tail mass so repeated convolutions stay cheap.
        let base = hist.trim_tail(1e-9);

        for row in 0..rows {
            let boundary = if row == 0 {
                0.0
            } else {
                base.quantile(row as f64 / rows as f64)
            };
            boundaries.push(boundary);
            let conditioned = base.conditional_on_elapsed(boundary);
            cond_mean.push(conditioned.mean());
            cond_var.push(conditioned.variance());

            let mut row_vals = Vec::with_capacity(cutoff);
            let mut cumulative = conditioned;
            row_vals.push(cumulative.quantile(quantile));
            for _ in 1..cutoff {
                cumulative = cumulative.convolve(&base).trim_tail(1e-9);
                row_vals.push(cumulative.quantile(quantile));
            }
            table_rows.push(row_vals);
        }

        let _ = z; // z is re-derived at lookup time from the stored quantile
        Self {
            rows: table_rows,
            boundaries,
            cond_mean,
            cond_var,
            mean: base.mean(),
            var: base.variance(),
        }
    }

    fn zero(rows: usize, cutoff: usize) -> Self {
        Self {
            rows: vec![vec![0.0; cutoff]; rows],
            boundaries: vec![0.0; rows],
            cond_mean: vec![0.0; rows],
            cond_var: vec![0.0; rows],
            mean: 0.0,
            var: 0.0,
        }
    }

    fn row_for(&self, elapsed: f64) -> usize {
        // Largest row whose boundary is <= elapsed. Boundaries are ascending.
        let mut row = 0;
        for (i, &b) in self.boundaries.iter().enumerate() {
            if elapsed >= b {
                row = i;
            } else {
                break;
            }
        }
        row
    }

    fn lookup(&self, elapsed: f64, pos: usize, tail: &GaussianTail) -> f64 {
        let row = self.row_for(elapsed);
        if pos < self.rows[row].len() {
            self.rows[row][pos]
        } else {
            let mean = self.cond_mean[row] + pos as f64 * self.mean;
            let var = self.cond_var[row] + pos as f64 * self.var;
            tail.tail(mean, var)
        }
    }
}

/// The pair of precomputed tables Rubik consults on every decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetTailTables {
    compute: TailTable,
    memory: TailTable,
    quantile: f64,
    cutoff: usize,
}

impl TargetTailTables {
    /// Builds the tables from the profiled compute-cycle and memory-time
    /// histograms for the given tail quantile (e.g. 0.95), with the paper's
    /// default table shape (8 progress rows, Gaussian beyond depth 16).
    pub fn build(compute: &Histogram, memory: &Histogram, quantile: f64) -> Self {
        Self::build_with(
            compute,
            memory,
            quantile,
            DEFAULT_PROGRESS_ROWS,
            DEFAULT_GAUSSIAN_CUTOFF,
        )
    }

    /// Builds the tables with explicit table dimensions (used by the
    /// ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is not in `(0, 1)`, or `rows`/`cutoff` are zero.
    pub fn build_with(
        compute: &Histogram,
        memory: &Histogram,
        quantile: f64,
        rows: usize,
        cutoff: usize,
    ) -> Self {
        assert!(quantile > 0.0 && quantile < 1.0, "quantile must be in (0, 1)");
        assert!(rows > 0 && cutoff > 0, "table dimensions must be positive");
        let compute_table = TailTable::build(compute, quantile, rows, cutoff);
        let memory_table = if memory.mean() < NEGLIGIBLE_MEM_TIME {
            TailTable::zero(rows, cutoff)
        } else {
            TailTable::build(memory, quantile, rows, cutoff)
        };
        Self {
            compute: compute_table,
            memory: memory_table,
            quantile,
            cutoff,
        }
    }

    /// The tail quantile the tables were built for.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// The queue depth beyond which the Gaussian approximation is used.
    pub fn gaussian_cutoff(&self) -> usize {
        self.cutoff
    }

    /// Tail *remaining compute cycles* until the request at queue position
    /// `pos` completes, given that the in-service request has already
    /// executed `elapsed_compute_cycles`.
    pub fn tail_compute_cycles(&self, elapsed_compute_cycles: f64, pos: usize) -> f64 {
        let z = GaussianTail::new(self.quantile);
        self.compute.lookup(elapsed_compute_cycles, pos, &z)
    }

    /// Tail *remaining memory-bound time* until the request at queue position
    /// `pos` completes, given the in-service request's elapsed memory time.
    pub fn tail_membound_time(&self, elapsed_membound_time: f64, pos: usize) -> f64 {
        let z = GaussianTail::new(self.quantile);
        self.memory.lookup(elapsed_membound_time, pos, &z)
    }

    /// Convenience: both tails at once.
    pub fn tails(&self, elapsed_compute: f64, elapsed_mem: f64, pos: usize) -> (f64, f64) {
        (
            self.tail_compute_cycles(elapsed_compute, pos),
            self.tail_membound_time(elapsed_mem, pos),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_stats::DeterministicRng;

    fn lognormal_hist(mean: f64, cov: f64, n: usize, seed: u64) -> Histogram {
        let mut rng = DeterministicRng::new(seed);
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal(mean, cov)).collect();
        Histogram::from_samples(&samples, 128)
    }

    fn zero_hist() -> Histogram {
        Histogram::from_samples(&[0.0, 0.0, 0.0], 4)
    }

    #[test]
    fn deeper_queue_positions_have_larger_tails() {
        let c = lognormal_hist(1e6, 0.3, 5000, 1);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let mut prev = 0.0;
        for pos in 0..32 {
            let tail = t.tail_compute_cycles(0.0, pos);
            assert!(tail > prev, "pos {pos}: {tail} <= {prev}");
            prev = tail;
        }
    }

    #[test]
    fn tail_grows_roughly_linearly_with_queue_depth() {
        let c = lognormal_hist(1e6, 0.3, 5000, 2);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let t1 = t.tail_compute_cycles(0.0, 1);
        let t9 = t.tail_compute_cycles(0.0, 9);
        // Tail at depth 9 should be close to (but less than) 5x the tail at
        // depth 1: independent work averages out, so the tail grows slower
        // than proportionally (the effect Rubik exploits, Sec. 4.1).
        assert!(t9 < 5.2 * t1, "t9 = {t9}, t1 = {t1}");
        assert!(t9 > 3.0 * t1);
    }

    #[test]
    fn per_position_tail_shrinks_relative_to_naive_sum() {
        // The tail of a sum is less than the sum of tails (the queue's
        // completion time concentrates). This is why the last queued request
        // rarely sets the frequency.
        let c = lognormal_hist(1e6, 0.5, 5000, 3);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let single = t.tail_compute_cycles(0.0, 0);
        let ten = t.tail_compute_cycles(0.0, 9);
        assert!(ten < 10.0 * single);
    }

    #[test]
    fn more_elapsed_work_reduces_the_remaining_tail_for_clustered_work() {
        let c = lognormal_hist(1e6, 0.2, 5000, 4);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let fresh = t.tail_compute_cycles(0.0, 0);
        let after_median = t.tail_compute_cycles(1e6, 0);
        assert!(after_median < fresh, "{after_median} vs {fresh}");
    }

    #[test]
    fn gaussian_extension_is_continuous_at_the_cutoff() {
        let c = lognormal_hist(1e6, 0.3, 5000, 5);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let last_explicit = t.tail_compute_cycles(0.0, DEFAULT_GAUSSIAN_CUTOFF - 1);
        let first_gaussian = t.tail_compute_cycles(0.0, DEFAULT_GAUSSIAN_CUTOFF);
        let ratio = first_gaussian / last_explicit;
        // The approximation should hand over smoothly: one extra request's
        // worth of work, not a jump.
        assert!(ratio > 1.0 && ratio < 1.2, "ratio = {ratio}");
    }

    #[test]
    fn zero_memory_distribution_contributes_nothing() {
        let c = lognormal_hist(1e6, 0.3, 2000, 6);
        let t = TargetTailTables::build(&c, &zero_hist(), 0.95);
        for pos in 0..20 {
            assert_eq!(t.tail_membound_time(0.0, pos), 0.0);
        }
    }

    #[test]
    fn memory_table_tracks_memory_distribution() {
        let c = lognormal_hist(1e6, 0.3, 2000, 7);
        let m = lognormal_hist(100e-6, 0.3, 2000, 8);
        let t = TargetTailTables::build(&c, &m, 0.95);
        let m0 = t.tail_membound_time(0.0, 0);
        assert!(m0 > 100e-6 && m0 < 300e-6, "m0 = {m0}");
        assert!(t.tail_membound_time(0.0, 3) > 3.0 * 100e-6);
    }

    #[test]
    fn higher_quantile_produces_larger_tails() {
        let c = lognormal_hist(1e6, 0.5, 3000, 9);
        let t95 = TargetTailTables::build(&c, &zero_hist(), 0.95);
        let t99 = TargetTailTables::build(&c, &zero_hist(), 0.99);
        assert!(t99.tail_compute_cycles(0.0, 0) > t95.tail_compute_cycles(0.0, 0));
        assert!(t99.tail_compute_cycles(0.0, 5) > t95.tail_compute_cycles(0.0, 5));
    }

    #[test]
    fn custom_dimensions_are_respected() {
        let c = lognormal_hist(1e6, 0.3, 1000, 10);
        let t = TargetTailTables::build_with(&c, &zero_hist(), 0.95, 4, 8);
        assert_eq!(t.gaussian_cutoff(), 8);
        // Depth 8 and beyond uses the Gaussian extension and still grows.
        assert!(t.tail_compute_cycles(0.0, 8) > t.tail_compute_cycles(0.0, 7));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_invalid_quantile() {
        let c = lognormal_hist(1e6, 0.3, 100, 11);
        let _ = TargetTailTables::build(&c, &zero_hist(), 1.0);
    }
}
