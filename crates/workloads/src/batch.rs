//! Batch (throughput-oriented) application models.
//!
//! RubikColoc colocates SPEC CPU2006-like batch applications with
//! latency-critical work (paper Sec. 6–7). For the colocation results, a
//! batch application matters only through:
//!
//! * its throughput as a function of core frequency (compute-bound apps scale
//!   nearly linearly with frequency; memory-bound apps barely scale),
//! * its power as a function of frequency (charged by `rubik-power`),
//! * its sensitivity to the LLC partition it receives.
//!
//! [`BatchApp`] captures these with a simple two-component execution model:
//! each "work unit" (normalized to 1 second of execution at nominal frequency
//! with a fair LLC share) consists of a compute part that scales with `1/f`
//! and a memory part that does not.

use serde::{Deserialize, Serialize};

use rubik_sim::Freq;
use rubik_stats::DeterministicRng;

/// Model of one batch application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchApp {
    name: String,
    /// Fraction of nominal-frequency execution time that is memory-bound
    /// (with a fair LLC share).
    mem_intensity: f64,
    /// How strongly the memory-bound fraction grows when the LLC share
    /// shrinks (0 = insensitive, 1 = strongly cache-sensitive).
    cache_sensitivity: f64,
}

impl BatchApp {
    /// Creates a batch application model.
    ///
    /// # Panics
    ///
    /// Panics if `mem_intensity` is outside `[0, 1)` or `cache_sensitivity`
    /// is outside `[0, 1]`.
    pub fn new(name: &str, mem_intensity: f64, cache_sensitivity: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&mem_intensity),
            "memory intensity must be in [0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&cache_sensitivity),
            "cache sensitivity must be in [0, 1]"
        );
        Self {
            name: name.into(),
            mem_intensity,
            cache_sensitivity,
        }
    }

    /// A SPEC CPU2006-like catalogue of batch applications, spanning
    /// compute-bound (namd, povray) to strongly memory-bound (mcf, lbm).
    pub fn spec_catalogue() -> Vec<BatchApp> {
        vec![
            BatchApp::new("perlbench", 0.10, 0.30),
            BatchApp::new("bzip2", 0.20, 0.40),
            BatchApp::new("gcc", 0.25, 0.45),
            BatchApp::new("mcf", 0.65, 0.80),
            BatchApp::new("gobmk", 0.10, 0.20),
            BatchApp::new("hmmer", 0.05, 0.10),
            BatchApp::new("sjeng", 0.08, 0.15),
            BatchApp::new("libquantum", 0.55, 0.30),
            BatchApp::new("h264ref", 0.12, 0.25),
            BatchApp::new("omnetpp", 0.45, 0.70),
            BatchApp::new("astar", 0.30, 0.50),
            BatchApp::new("xalancbmk", 0.40, 0.65),
            BatchApp::new("milc", 0.50, 0.40),
            BatchApp::new("namd", 0.04, 0.05),
            BatchApp::new("soplex", 0.45, 0.60),
            BatchApp::new("povray", 0.03, 0.05),
            BatchApp::new("lbm", 0.70, 0.35),
            BatchApp::new("sphinx3", 0.35, 0.55),
        ]
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory-bound fraction of execution time at nominal frequency with a
    /// fair LLC share.
    pub fn mem_intensity(&self) -> f64 {
        self.mem_intensity
    }

    /// Cache sensitivity in `[0, 1]`.
    pub fn cache_sensitivity(&self) -> f64 {
        self.cache_sensitivity
    }

    /// Effective memory-bound fraction given an LLC share in `[0, 1]`
    /// relative to a fair share of 1.0. Smaller shares increase memory-bound
    /// time for cache-sensitive applications.
    pub fn effective_mem_fraction(&self, llc_share: f64) -> f64 {
        let share = llc_share.clamp(0.05, 1.0);
        let penalty = self.cache_sensitivity * (1.0 - share);
        (self.mem_intensity * (1.0 + penalty)).min(0.95)
    }

    /// Throughput (work units per second) at frequency `f`, relative to the
    /// given nominal frequency, with the given LLC share.
    ///
    /// One work unit takes 1 second at nominal frequency with a full fair
    /// share.
    pub fn throughput(&self, f: Freq, nominal: Freq, llc_share: f64) -> f64 {
        let mem = self.effective_mem_fraction(llc_share);
        let base_compute = 1.0 - self.mem_intensity;
        // The memory component under reduced share inflates total work.
        let mem_time = self.mem_intensity + (mem - self.mem_intensity);
        let time = base_compute * nominal.hz() / f.hz() + mem_time;
        1.0 / time
    }

    /// Speedup at frequency `f` relative to nominal, with a full LLC share.
    pub fn speedup(&self, f: Freq, nominal: Freq) -> f64 {
        self.throughput(f, nominal, 1.0) / self.throughput(nominal, nominal, 1.0)
    }
}

/// A mix of batch applications co-scheduled on one server (the paper uses 20
/// mixes of six randomly chosen SPEC CPU2006 apps, Sec. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchMix {
    /// Mix identifier (0-based).
    pub id: usize,
    /// The applications in the mix.
    pub apps: Vec<BatchApp>,
}

impl BatchMix {
    /// Generates `count` mixes of `per_mix` applications each, drawn with
    /// replacement from the SPEC-like catalogue using the given seed.
    pub fn generate(count: usize, per_mix: usize, seed: u64) -> Vec<BatchMix> {
        let catalogue = BatchApp::spec_catalogue();
        let mut rng = DeterministicRng::new(seed);
        (0..count)
            .map(|id| BatchMix {
                id,
                apps: (0..per_mix)
                    .map(|_| catalogue[rng.index(catalogue.len())].clone())
                    .collect(),
            })
            .collect()
    }

    /// The paper's configuration: 20 mixes of 6 applications.
    pub fn paper_mixes(seed: u64) -> Vec<BatchMix> {
        Self::generate(20, 6, seed)
    }

    /// Average memory intensity of the mix.
    pub fn mean_mem_intensity(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        self.apps.iter().map(|a| a.mem_intensity()).sum::<f64>() / self.apps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Freq {
        Freq::from_mhz(2400)
    }

    #[test]
    fn catalogue_has_diverse_memory_intensity() {
        let apps = BatchApp::spec_catalogue();
        assert!(apps.len() >= 12);
        let min = apps.iter().map(|a| a.mem_intensity()).fold(1.0, f64::min);
        let max = apps.iter().map(|a| a.mem_intensity()).fold(0.0, f64::max);
        assert!(min < 0.1);
        assert!(max > 0.6);
    }

    #[test]
    fn compute_bound_apps_scale_with_frequency() {
        let namd = BatchApp::new("namd", 0.04, 0.05);
        let speedup = namd.speedup(Freq::from_mhz(3400), nominal());
        // Nearly linear: 3.4/2.4 ≈ 1.42
        assert!(speedup > 1.3, "speedup = {speedup}");
    }

    #[test]
    fn memory_bound_apps_barely_scale() {
        let mcf = BatchApp::new("mcf", 0.65, 0.8);
        let speedup = mcf.speedup(Freq::from_mhz(3400), nominal());
        assert!(speedup < 1.2, "speedup = {speedup}");
        assert!(speedup > 1.0);
    }

    #[test]
    fn lower_frequency_reduces_throughput() {
        for app in BatchApp::spec_catalogue() {
            let slow = app.throughput(Freq::from_mhz(800), nominal(), 1.0);
            let fast = app.throughput(Freq::from_mhz(3400), nominal(), 1.0);
            assert!(slow < fast, "{}", app.name());
        }
    }

    #[test]
    fn smaller_llc_share_hurts_cache_sensitive_apps() {
        let omnetpp = BatchApp::new("omnetpp", 0.45, 0.7);
        let full = omnetpp.throughput(nominal(), nominal(), 1.0);
        let small = omnetpp.throughput(nominal(), nominal(), 0.25);
        assert!(small < full);

        let povray = BatchApp::new("povray", 0.03, 0.05);
        let degradation_povray = 1.0
            - povray.throughput(nominal(), nominal(), 0.25)
                / povray.throughput(nominal(), nominal(), 1.0);
        let degradation_omnetpp = 1.0 - small / full;
        assert!(degradation_omnetpp > degradation_povray);
    }

    #[test]
    fn nominal_throughput_with_full_share_is_one() {
        for app in BatchApp::spec_catalogue() {
            let t = app.throughput(nominal(), nominal(), 1.0);
            assert!((t - 1.0).abs() < 1e-9, "{}: {t}", app.name());
        }
    }

    #[test]
    fn mixes_are_reproducible_and_sized() {
        let a = BatchMix::paper_mixes(42);
        let b = BatchMix::paper_mixes(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for m in &a {
            assert_eq!(m.apps.len(), 6);
        }
        let c = BatchMix::paper_mixes(43);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "memory intensity")]
    fn rejects_invalid_intensity() {
        let _ = BatchApp::new("bad", 1.2, 0.5);
    }
}
