//! Fast trace replay under per-request frequency assignments.
//!
//! The oracle baselines (StaticOracle, DynamicOracle, AdrenalineOracle) are
//! defined over a *fixed request trace* (paper Sec. 5.2–5.3): each request is
//! assigned one frequency, and the resulting latencies follow from FIFO
//! queueing. Because the oracles are idealized, the replay ignores V/F
//! transition latency; this only makes the oracles stronger, which is the
//! conservative direction when comparing Rubik against them.

use rubik_sim::{Freq, RequestRecord, Trace};

/// Replays a trace where request `i` runs entirely at `freqs[i]`, returning
/// the per-request records (FIFO, single server, work-conserving).
///
/// # Panics
///
/// Panics if `freqs.len() != trace.len()`.
pub fn replay(trace: &Trace, freqs: &[Freq]) -> Vec<RequestRecord> {
    assert_eq!(
        freqs.len(),
        trace.len(),
        "one frequency per request is required"
    );
    let mut records = Vec::with_capacity(trace.len());
    let mut server_free_at = 0.0f64;
    let mut in_system: Vec<f64> = Vec::new(); // completion times of prior requests

    for (spec, &freq) in trace.requests().iter().zip(freqs) {
        // Queue length seen at arrival: prior requests not yet completed.
        in_system.retain(|&c| c > spec.arrival);
        let queue_len_at_arrival = in_system.len();

        let start = server_free_at.max(spec.arrival);
        let service = spec.service_time_at(freq);
        let completion = start + service;
        server_free_at = completion;
        in_system.push(completion);

        records.push(RequestRecord {
            id: spec.id,
            arrival: spec.arrival,
            start,
            completion,
            compute_cycles: spec.compute_cycles,
            membound_time: spec.membound_time,
            queue_len_at_arrival,
            class: spec.class,
        });
    }
    records
}

/// Active core energy of a replay: each request is charged
/// `active_power(f_i) × service_time_i`. Idle energy is not included (the
/// oracles are compared on active energy, as in Fig. 9b).
///
/// # Panics
///
/// Panics if `freqs.len() != trace.len()`.
pub fn replay_energy<P>(trace: &Trace, freqs: &[Freq], active_power: P) -> f64
where
    P: Fn(Freq) -> f64,
{
    assert_eq!(freqs.len(), trace.len());
    trace
        .requests()
        .iter()
        .zip(freqs)
        .map(|(spec, &f)| active_power(f) * spec.service_time_at(f))
        .sum()
}

/// Tail latency of a replayed record set at quantile `q`.
pub fn replay_tail(records: &[RequestRecord], q: f64) -> Option<f64> {
    let latencies: Vec<f64> = records.iter().map(|r| r.latency()).collect();
    rubik_stats::percentile(&latencies, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::RequestSpec;

    fn nominal() -> Freq {
        Freq::from_mhz(2400)
    }

    #[test]
    fn replay_matches_hand_computed_fifo() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),    // 1 ms at nominal
            RequestSpec::new(1, 0.5e-3, 2.4e6, 0.0), // arrives mid-service
            RequestSpec::new(2, 5e-3, 2.4e6, 0.0),   // arrives when idle
        ]);
        let records = replay(&trace, &[nominal(); 3]);
        assert!((records[0].latency() - 1e-3).abs() < 1e-12);
        assert!((records[1].latency() - 1.5e-3).abs() < 1e-12);
        assert!((records[2].latency() - 1e-3).abs() < 1e-12);
        assert_eq!(records[1].queue_len_at_arrival, 1);
        assert_eq!(records[2].queue_len_at_arrival, 0);
    }

    #[test]
    fn per_request_frequencies_apply_independently() {
        let trace = Trace::new(vec![
            RequestSpec::new(0, 0.0, 2.4e6, 0.0),
            RequestSpec::new(1, 10.0, 2.4e6, 0.0),
        ]);
        let records = replay(&trace, &[Freq::from_mhz(800), Freq::from_mhz(3400)]);
        assert!((records[0].service_time() - 3e-3).abs() < 1e-9);
        assert!((records[1].service_time() - 2.4e6 / 3.4e9).abs() < 1e-9);
    }

    #[test]
    fn replay_agrees_with_event_simulator_at_fixed_frequency() {
        use rubik_sim::{FixedFrequencyPolicy, Server, SimConfig};
        use rubik_workloads::{AppProfile, WorkloadGenerator};

        let mut generator = WorkloadGenerator::new(AppProfile::shore(), 3);
        let trace = generator.steady_trace(0.5, 500);
        let freqs = vec![nominal(); trace.len()];
        let replayed = replay(&trace, &freqs);

        let mut policy = FixedFrequencyPolicy::new(nominal());
        let simulated = Server::new(SimConfig::default()).run(&trace, &mut policy);

        // Both models implement the same FIFO queue; latencies must agree.
        let mut sim_records: Vec<_> = simulated.records().to_vec();
        sim_records.sort_by_key(|r| r.id);
        for (a, b) in replayed.iter().zip(&sim_records) {
            assert_eq!(a.id, b.id);
            assert!(
                (a.latency() - b.latency()).abs() < 1e-9,
                "id {}: {} vs {}",
                a.id,
                a.latency(),
                b.latency()
            );
        }
    }

    #[test]
    fn energy_prefers_lower_frequencies() {
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 2.4e6, 0.0)]);
        // A convex-ish power curve for the test.
        let power = |f: Freq| 2.0 * f.ghz() * f.ghz();
        let slow = replay_energy(&trace, &[Freq::from_mhz(1200)], power);
        let fast = replay_energy(&trace, &[Freq::from_mhz(2400)], power);
        assert!(slow < fast);
    }

    #[test]
    fn replay_tail_reports_percentile() {
        let trace = Trace::new(
            (0..100)
                .map(|i| RequestSpec::new(i, i as f64, 2.4e6, 0.0))
                .collect(),
        );
        let records = replay(&trace, &vec![nominal(); 100]);
        let tail = replay_tail(&records, 0.95).unwrap();
        assert!((tail - 1e-3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one frequency per request")]
    fn rejects_mismatched_lengths() {
        let trace = Trace::new(vec![RequestSpec::new(0, 0.0, 1.0, 0.0)]);
        let _ = replay(&trace, &[]);
    }
}
