//! Rolling-window tail-latency tracking.
//!
//! Rubik's feedback controller observes the measured tail latency over a
//! rolling 1-second window (paper Sec. 4.2, "Feedback-based fine-tuning"),
//! and the evaluation plots tails over rolling 200 ms windows (Fig. 1b,
//! Fig. 10). [`RollingTailTracker`] keeps the samples that fall inside the
//! window and reports their percentile on demand.

use std::collections::VecDeque;

use crate::percentile::percentile_of_sorted;

/// Tracks `(completion_time, latency)` samples and reports the latency
/// percentile over the most recent time window.
#[derive(Debug, Clone)]
pub struct RollingTailTracker {
    window: f64,
    quantile: f64,
    samples: VecDeque<(f64, f64)>,
    /// Reused sort buffer for [`RollingTailTracker::tail`], so the periodic
    /// feedback read performs no steady-state allocation.
    scratch: Vec<f64>,
}

impl RollingTailTracker {
    /// Creates a tracker over a window of `window` seconds reporting the
    /// given `quantile` (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `window <= 0` or `quantile` is outside `[0, 1]`.
    pub fn new(window: f64, quantile: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must be in [0, 1]"
        );
        Self {
            window,
            quantile,
            samples: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Records a request that completed at time `now` with the given
    /// end-to-end `latency`, and evicts samples older than the window.
    pub fn record(&mut self, now: f64, latency: f64) {
        self.samples.push_back((now, latency));
        self.evict(now);
    }

    /// Advances the window without recording a sample.
    pub fn advance(&mut self, now: f64) {
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        let cutoff = now - self.window;
        while let Some(&(t, _)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The tail latency over the current window, or `None` if the window has
    /// no samples. Sorts into a reused scratch buffer, so repeated reads
    /// allocate nothing once the buffer reaches the window's high-water mark.
    pub fn tail(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.scratch.extend(self.samples.iter().map(|&(_, l)| l));
        self.scratch
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Some(percentile_of_sorted(&self.scratch, self.quantile))
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The configured window length in seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The configured quantile.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }
}

/// Tracks the most recent `capacity` samples (oldest-out) and reports
/// quantiles over exactly that window.
///
/// Unlike [`RollingTailTracker`], the window is bounded by *count*, not
/// time, so memory is O(capacity) no matter how many samples stream
/// through — the shape `Cluster::run_streamed`'s O(in-flight) memory
/// contract needs from the hedge trigger tracker. Samples are kept both in
/// arrival order (for eviction) and sorted (for O(log W) quantile reads);
/// each push costs O(W) in the worst case from the sorted insert/remove
/// memmoves, a constant bound independent of the stream length.
#[derive(Debug, Clone)]
pub struct RollingQuantileWindow {
    capacity: usize,
    /// Samples in arrival order; the front is the next to be evicted.
    recent: VecDeque<f64>,
    /// The same samples, sorted ascending.
    sorted: Vec<f64>,
}

impl RollingQuantileWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            recent: VecDeque::new(),
            sorted: Vec::new(),
        }
    }

    /// Records a sample, evicting the oldest one once the window is full.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is NaN.
    pub fn push(&mut self, sample: f64) {
        assert!(!sample.is_nan(), "samples must not be NaN");
        if self.recent.len() == self.capacity {
            let oldest = self.recent.pop_front().expect("window is full");
            let i = self.sorted.partition_point(|&v| v < oldest);
            debug_assert!(self.sorted[i] == oldest, "sorted copy out of sync");
            self.sorted.remove(i);
        }
        self.recent.push_back(sample);
        let i = self.sorted.partition_point(|&v| v < sample);
        self.sorted.insert(i, sample);
    }

    /// The `quantile` of the samples currently in the window, or `None`
    /// when the window is empty. Same interpolation as
    /// [`percentile_of_sorted`].
    pub fn quantile(&self, quantile: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(percentile_of_sorted(&self.sorted, quantile))
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }

    /// The maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_none() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        assert!(t.tail().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn tracks_percentile_of_window() {
        let mut t = RollingTailTracker::new(10.0, 0.5);
        for i in 0..10 {
            t.record(i as f64 * 0.1, (i + 1) as f64);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.tail(), Some(5.0));
    }

    #[test]
    fn old_samples_are_evicted() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        t.record(0.0, 100.0);
        t.record(0.5, 1.0);
        t.record(2.0, 2.0); // evicts both earlier samples (cutoff = 1.0)
        assert_eq!(t.len(), 1);
        assert_eq!(t.tail(), Some(2.0));
    }

    #[test]
    fn advance_evicts_without_recording() {
        let mut t = RollingTailTracker::new(1.0, 0.95);
        t.record(0.0, 5.0);
        t.advance(10.0);
        assert!(t.is_empty());
        assert!(t.tail().is_none());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_nonpositive_window() {
        let _ = RollingTailTracker::new(0.0, 0.95);
    }

    #[test]
    fn quantile_window_matches_exact_percentile_of_retained_samples() {
        // Property: after every push, the window's quantile equals the
        // exact percentile of the last `min(capacity, pushed)` samples.
        let mut rng = crate::DeterministicRng::new(0x5eed);
        let mut window = RollingQuantileWindow::new(64);
        let mut all = Vec::new();
        for _ in 0..1000 {
            let sample = rng.uniform() * 10.0;
            window.push(sample);
            all.push(sample);
            let tail: Vec<f64> = all[all.len().saturating_sub(64)..].to_vec();
            let mut sorted = tail.clone();
            sorted.sort_unstable_by(f64::total_cmp);
            for q in [0.5, 0.9, 0.95, 0.99] {
                assert_eq!(
                    window.quantile(q).unwrap().to_bits(),
                    percentile_of_sorted(&sorted, q).to_bits(),
                    "window quantile diverged at n={} q={q}",
                    all.len()
                );
            }
        }
        assert_eq!(window.len(), 64);
    }

    #[test]
    fn quantile_window_evicts_oldest_with_duplicates() {
        let mut w = RollingQuantileWindow::new(3);
        for s in [5.0, 5.0, 1.0, 5.0] {
            w.push(s);
        }
        // Window is now [5.0, 1.0, 5.0]; the first 5.0 was evicted.
        assert_eq!(w.len(), 3);
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(1.0), Some(5.0));
        w.push(2.0);
        w.push(3.0);
        // Window is now [5.0, 2.0, 3.0].
        assert_eq!(w.quantile(1.0), Some(5.0));
        w.push(4.0);
        // Window is now [2.0, 3.0, 4.0]: the last 5.0 is gone.
        assert_eq!(w.quantile(1.0), Some(4.0));
    }

    #[test]
    fn empty_quantile_window_reports_none() {
        let w = RollingQuantileWindow::new(8);
        assert!(w.quantile(0.95).is_none());
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn quantile_window_rejects_zero_capacity() {
        let _ = RollingQuantileWindow::new(0);
    }
}
