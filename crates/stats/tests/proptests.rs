//! Property-based tests for the statistical primitives Rubik's correctness
//! rests on: histograms never lose probability mass, quantiles are monotone
//! and conservative, convolution preserves mass and adds means, and the
//! Gaussian quantile inverts the CDF.
//!
//! The offline build has no `proptest`, so each property is checked over a
//! seeded stream of randomized cases (64 per property, like the previous
//! `ProptestConfig::with_cases(64)`): same coverage philosophy, fully
//! deterministic failures.

use rubik_stats::fft::{convolve_direct, convolve_fft, FFT_CROSSOVER};
use rubik_stats::{
    convolve, gaussian_quantile, percentile, standard_normal_cdf, DeterministicRng, Histogram,
};

const CASES: usize = 64;

/// A random sample vector of 1..200 values in `[0, 1e6)`.
fn sample_vec(rng: &mut DeterministicRng) -> Vec<f64> {
    let len = 1 + rng.index(199);
    (0..len).map(|_| rng.uniform() * 1e6).collect()
}

#[test]
fn histogram_mass_is_conserved() {
    let mut rng = DeterministicRng::new(0xA1);
    for _ in 0..CASES {
        let samples = sample_vec(&mut rng);
        let buckets = 1 + rng.index(255);
        let hist = Histogram::from_samples(&samples, buckets);
        let total: f64 = hist.pmf().iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "buckets {buckets}: mass {total}"
        );
    }
}

#[test]
fn histogram_quantiles_are_monotone_and_conservative() {
    let mut rng = DeterministicRng::new(0xA2);
    for _ in 0..CASES {
        let samples = sample_vec(&mut rng);
        let hist = Histogram::from_samples(&samples, 128);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for i in 1..=10 {
            let q = i as f64 / 10.0;
            let v = hist.quantile(q);
            assert!(v >= prev);
            prev = v;
            // Conservative: never below the exact empirical quantile.
            let exact = sorted[((sorted.len() - 1) as f64 * q) as usize];
            assert!(v >= exact - 1e-9);
        }
    }
}

#[test]
fn histogram_cdf_matches_pmf_prefix_sums() {
    // The cached running-CDF must agree with a from-scratch prefix sum at
    // every bucket edge (this is what makes O(log n) quantiles sound).
    let mut rng = DeterministicRng::new(0xA3);
    for _ in 0..CASES {
        let samples = sample_vec(&mut rng);
        let hist = Histogram::from_samples(&samples, 64);
        let mut cum = 0.0;
        for i in 0..hist.len() {
            cum += hist.pmf()[i];
            // Sample inside bucket i (upper edges belong to the next bucket
            // under the floor convention).
            let x = (i as f64 + 0.5) * hist.bucket_width();
            assert!(
                (hist.cdf(x) - cum.min(1.0)).abs() < 1e-9,
                "bucket {i}: cdf {} vs prefix {cum}",
                hist.cdf(x)
            );
        }
    }
}

#[test]
fn conditional_distribution_keeps_unit_mass() {
    let mut rng = DeterministicRng::new(0xA4);
    for _ in 0..CASES {
        let samples = sample_vec(&mut rng);
        let frac = rng.uniform() * 1.5;
        let hist = Histogram::from_samples(&samples, 64);
        let elapsed = frac * hist.quantile(0.99);
        let cond = hist.conditional_on_elapsed(elapsed);
        let total: f64 = cond.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}

#[test]
fn convolution_preserves_mass_and_adds_means() {
    let mut rng = DeterministicRng::new(0xA5);
    for _ in 0..CASES {
        let a = sample_vec(&mut rng);
        let b = sample_vec(&mut rng);
        let ha = Histogram::from_samples(&a, 64);
        let hb = Histogram::from_samples(&b, 64).rebucket(ha.bucket_width(), 64);
        let c = ha.convolve(&hb);
        let total: f64 = c.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((c.mean() - (ha.mean() + hb.mean())).abs() < 1e-6 * c.mean().max(1.0));
    }
}

#[test]
fn raw_convolution_is_commutative() {
    let mut rng = DeterministicRng::new(0xA6);
    for _ in 0..CASES {
        let a: Vec<f64> = (0..1 + rng.index(63)).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..1 + rng.index(63)).map(|_| rng.uniform()).collect();
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn convolve_crossover_is_seamless() {
    // The automatic direct/FFT dispatch must produce the same result on both
    // sides of FFT_CROSSOVER, and the two algorithms must agree with each
    // other at the boundary itself.
    let mut rng = DeterministicRng::new(0xA7);
    for case in 0..CASES {
        // Pick lengths whose product straddles the crossover: one pair just
        // below, one pair just above, from the same random data.
        let base = 2 + rng.index(62); // 2..=63
        let below = FFT_CROSSOVER / base; // base * below <= FFT_CROSSOVER
        let above = below + 1 + rng.index(8);
        let a: Vec<f64> = (0..base).map(|_| rng.uniform()).collect();
        let long: Vec<f64> = (0..above).map(|_| rng.uniform()).collect();

        for (label, b) in [("below", &long[..below]), ("above", &long[..])] {
            let auto = convolve(&a, b);
            let direct = convolve_direct(&a, b);
            let fft = convolve_fft(&a, b);
            assert_eq!(auto.len(), direct.len());
            for i in 0..auto.len() {
                assert!(
                    (auto[i] - direct[i]).abs() < 1e-9,
                    "case {case} ({label}): auto vs direct at {i}"
                );
                assert!(
                    (fft[i] - direct[i]).abs() < 1e-9,
                    "case {case} ({label}): fft vs direct at {i}"
                );
            }
        }
    }
}

#[test]
fn percentile_is_bounded_by_min_and_max() {
    let mut rng = DeterministicRng::new(0xA8);
    for _ in 0..CASES {
        let samples = sample_vec(&mut rng);
        let q = rng.uniform();
        let p = percentile(&samples, q).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p >= min && p <= max);
    }
}

#[test]
fn gaussian_quantile_inverts_cdf() {
    let mut rng = DeterministicRng::new(0xA9);
    for _ in 0..CASES {
        let p = 0.001 + rng.uniform() * 0.998;
        let x = gaussian_quantile(p);
        assert!((standard_normal_cdf(x) - p).abs() < 1e-4);
    }
}
