//! Fig. 1b: response to a load change (30% -> 50% at t = 1 s) on masstree:
//! rolling tail latency and Rubik's frequency choices over time.

use rubik::{AppProfile, LoadProfile, StaticOracle, WorkloadGenerator};
use rubik_bench::{print_header, BenchArgs, Harness, TAIL_QUANTILE};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    let profile = AppProfile::masstree();
    let bound = harness.latency_bound(&profile);

    let mut generator = WorkloadGenerator::new(profile.clone(), 99);
    let trace = generator.profile_trace(&LoadProfile::fig1_step());

    // StaticOracle tuned for the initial 30% load.
    let tuning = harness.trace(&profile, 0.3, 5);
    let static_freq = StaticOracle::new(harness.sim.dvfs.clone(), TAIL_QUANTILE)
        .lowest_feasible_freq(&tuning, bound);
    let static_result = {
        let mut policy = rubik::FixedFrequencyPolicy::new(static_freq);
        rubik::Server::new(harness.sim.clone()).run(&trace, &mut policy)
    };
    let (_, rubik_result) = harness.run_rubik(&trace, bound, true);

    println!(
        "# Fig. 1b: masstree load step 30%->50% at t=1s, bound = {:.0} us, StaticOracle at {}",
        bound * 1e6,
        static_freq
    );
    print_header(&[
        "t_s",
        "load",
        "static_tail_us",
        "rubik_tail_us",
        "rubik_freq_ghz",
    ]);
    let window = 0.2;
    let static_roll = static_result.rolling_tail(window, TAIL_QUANTILE);
    let rubik_roll = rubik_result.rolling_tail(window, TAIL_QUANTILE);
    let freq_trace = rubik_result.freq_trace();
    let at = |roll: &[(f64, f64)], t: f64| {
        roll.iter()
            .rfind(|&&(x, _)| x <= t)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let freq_at = |t: f64| {
        freq_trace
            .iter()
            .rfind(|&&(x, _)| x <= t)
            .map(|&(_, f)| f.ghz())
            .unwrap_or(0.0)
    };
    for step in 1..=20 {
        let t = step as f64 * 0.1;
        println!(
            "{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}",
            t,
            LoadProfile::fig1_step().load_at(t - 1e-3),
            at(&static_roll, t) * 1e6,
            at(&rubik_roll, t) * 1e6,
            freq_at(t)
        );
    }
}
