//! Fig. 9: trace-driven load sweeps for every application — tail latency
//! (9a) and core energy per request (9b) under Fixed-frequency, StaticOracle,
//! DynamicOracle, Rubik without feedback, and Rubik.

use rubik::AppProfile;
use rubik_bench::{print_header, Harness};

fn main() {
    // The full Table-3 request counts make DynamicOracle slow; a reduced
    // count preserves the curves' shape.
    let harness = Harness::new().with_requests(2500);
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

    for (i, app) in AppProfile::all().iter().enumerate() {
        let bound = harness.latency_bound(app);
        println!(
            "# Fig. 9: {} (tail bound {:.0} us)",
            app.name(),
            bound * 1e6
        );
        print_header(&[
            "load",
            "fixed_tail_us",
            "static_tail_us",
            "dynamic_tail_us",
            "rubik_nofb_tail_us",
            "rubik_tail_us",
            "fixed_mJ",
            "static_mJ",
            "dynamic_mJ",
            "rubik_nofb_mJ",
            "rubik_mJ",
        ]);
        for (j, load) in loads.into_iter().enumerate() {
            // The 50% point is evaluated on the bound-defining trace (same
            // convention as fig06) so that StaticOracle lands exactly at the
            // nominal frequency there, as in the paper.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 100 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bound);
            let dynamic = harness.run_dynamic_oracle(&trace, bound);
            let (rubik_nofb, _) = harness.run_rubik(&trace, bound, false);
            let (rubik, _) = harness.run_rubik(&trace, bound, true);
            println!(
                "{:.0}%\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                load * 100.0,
                fixed.tail_latency * 1e6,
                static_oracle.tail_latency * 1e6,
                dynamic.tail_latency * 1e6,
                rubik_nofb.tail_latency * 1e6,
                rubik.tail_latency * 1e6,
                fixed.energy_per_request * 1e3,
                static_oracle.energy_per_request * 1e3,
                dynamic.energy_per_request * 1e3,
                rubik_nofb.energy_per_request * 1e3,
                rubik.energy_per_request * 1e3,
            );
        }
        println!();
    }
}
