//! DynamicOracle: the per-request frequency schedule that minimizes energy
//! subject to the tail bound.
//!
//! The paper's DynamicOracle (Sec. 5.3) bounds from below the energy of any
//! scheme that assigns one frequency per request: it "progressively reduces
//! frequencies until 5% of the requests are above the tail bound (if
//! achievable), prioritizing the reductions that save most power."
//!
//! This implementation realizes that definition as a greedy descent: start
//! from the fastest schedule (every request at the maximum level, which
//! minimizes violations), then repeatedly lower the frequency of individual
//! requests — most-energy-saving reductions first — as long as the fraction
//! of requests above the bound stays within the allowed `1 − quantile`
//! budget. Latency effects of each candidate reduction are re-propagated
//! incrementally through the FIFO queue, so the construction scales to the
//! paper-sized traces used by the Fig. 9 harness.

use rubik_sim::{DvfsConfig, Freq, Trace};

use crate::replay::{replay, replay_energy, replay_tail};

/// Builder for DynamicOracle frequency schedules.
#[derive(Debug, Clone)]
pub struct DynamicOracle {
    dvfs: DvfsConfig,
    quantile: f64,
}

/// A computed oracle schedule plus its summary metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSchedule {
    /// Frequency assigned to each request, in trace order.
    pub freqs: Vec<Freq>,
    /// Tail latency achieved by the schedule.
    pub tail_latency: f64,
    /// Active core energy of the schedule (J), using the power function the
    /// schedule was optimized with.
    pub energy: f64,
}

impl DynamicOracle {
    /// Creates an oracle over the given DVFS domain and tail quantile.
    ///
    /// # Panics
    ///
    /// Panics if the quantile is not in `(0, 1)`.
    pub fn new(dvfs: DvfsConfig, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        Self { dvfs, quantile }
    }

    /// Computes the oracle schedule for a trace.
    ///
    /// `active_power(f)` supplies the core power at each level (the oracle
    /// prioritizes the frequency reductions that save the most energy).
    ///
    /// # Panics
    ///
    /// Panics if `latency_bound <= 0`.
    pub fn schedule<P>(&self, trace: &Trace, latency_bound: f64, active_power: P) -> OracleSchedule
    where
        P: Fn(Freq) -> f64,
    {
        assert!(latency_bound > 0.0, "latency bound must be positive");
        let n = trace.len();
        if n == 0 {
            return OracleSchedule {
                freqs: vec![],
                tail_latency: 0.0,
                energy: 0.0,
            };
        }

        // Start from the fastest schedule: this minimizes the number of
        // unavoidable violations, which defines the working budget.
        let mut freqs = vec![self.dvfs.max(); n];
        let mut completions = completions_for(trace, &freqs);
        let base_violations = count_violations(trace, &completions, latency_bound);
        let allowed = (((1.0 - self.quantile) * n as f64).floor() as usize).max(base_violations);
        let mut violations = base_violations;

        // Greedy descent: several passes over the requests, most promising
        // reductions first, until a full pass makes no progress.
        let step = self.dvfs.step_mhz();
        let savings_of = |spec: &rubik_sim::RequestSpec, f: Freq| -> f64 {
            if f <= self.dvfs.min() {
                return 0.0;
            }
            let lower = Freq::from_mhz(f.mhz() - step);
            active_power(f) * spec.service_time_at(f)
                - active_power(lower) * spec.service_time_at(lower)
        };

        loop {
            let mut order: Vec<usize> = (0..n).filter(|&i| freqs[i] > self.dvfs.min()).collect();
            if order.is_empty() {
                break;
            }
            order.sort_by(|&a, &b| {
                let sa = savings_of(&trace.requests()[a], freqs[a]);
                let sb = savings_of(&trace.requests()[b], freqs[b]);
                sb.partial_cmp(&sa).expect("finite savings")
            });

            let mut changed = false;
            for &idx in &order {
                if freqs[idx] <= self.dvfs.min() {
                    continue;
                }
                let lower = Freq::from_mhz(freqs[idx].mhz() - step);
                if let Some(new_violations) = try_lower(
                    trace,
                    &mut freqs,
                    &mut completions,
                    idx,
                    lower,
                    latency_bound,
                    violations,
                    allowed,
                ) {
                    violations = new_violations;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let records = replay(trace, &freqs);
        let tail = replay_tail(&records, self.quantile).unwrap_or(0.0);
        let energy = replay_energy(trace, &freqs, &active_power);
        OracleSchedule {
            freqs,
            tail_latency: tail,
            energy,
        }
    }
}

/// FIFO completion times when request `i` runs at `freqs[i]`.
fn completions_for(trace: &Trace, freqs: &[Freq]) -> Vec<f64> {
    let mut completions = Vec::with_capacity(trace.len());
    let mut prev = 0.0f64;
    for (spec, &f) in trace.requests().iter().zip(freqs) {
        let start = prev.max(spec.arrival);
        prev = start + spec.service_time_at(f);
        completions.push(prev);
    }
    completions
}

fn count_violations(trace: &Trace, completions: &[f64], bound: f64) -> usize {
    trace
        .requests()
        .iter()
        .zip(completions)
        .filter(|(spec, &c)| c - spec.arrival > bound)
        .count()
}

/// Attempts to lower request `idx` to `new_freq`. Completion times are
/// re-propagated from `idx` forward only as far as the change reaches. If the
/// resulting violation count exceeds `allowed`, the change is rolled back and
/// `None` is returned; otherwise the new violation count is returned.
#[allow(clippy::too_many_arguments)]
fn try_lower(
    trace: &Trace,
    freqs: &mut [Freq],
    completions: &mut [f64],
    idx: usize,
    new_freq: Freq,
    bound: f64,
    violations: usize,
    allowed: usize,
) -> Option<usize> {
    let specs = trace.requests();
    let old_freq = freqs[idx];
    freqs[idx] = new_freq;

    // Propagate new completion times forward; remember the old values so the
    // change can be rolled back.
    let mut touched: Vec<(usize, f64)> = Vec::new();
    let mut new_violations = violations as isize;
    let mut prev_completion = if idx == 0 { 0.0 } else { completions[idx - 1] };
    let mut j = idx;
    while j < specs.len() {
        let spec = &specs[j];
        let start = prev_completion.max(spec.arrival);
        let new_completion = start + spec.service_time_at(freqs[j]);
        let old_completion = completions[j];
        if j > idx && (new_completion - old_completion).abs() < 1e-15 {
            break;
        }
        let was_violating = old_completion - spec.arrival > bound;
        let is_violating = new_completion - spec.arrival > bound;
        new_violations += isize::from(is_violating) - isize::from(was_violating);
        touched.push((j, old_completion));
        completions[j] = new_completion;
        prev_completion = new_completion;
        j += 1;
    }

    if new_violations as usize > allowed {
        // Roll back.
        freqs[idx] = old_freq;
        for &(k, old) in &touched {
            completions[k] = old;
        }
        None
    } else {
        Some(new_violations as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_oracle::StaticOracle;
    use rubik_workloads::{AppProfile, WorkloadGenerator};

    fn power(f: Freq) -> f64 {
        // Convex active-power curve for the tests.
        let v = 0.65 + (f.ghz() - 0.8) / 2.6 * 0.4;
        2.6 * v * v * f.ghz() + 1.1 * v
    }

    fn small_trace(load: f64, n: usize, seed: u64) -> Trace {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), seed);
        g.steady_trace(load, n)
    }

    fn violations_of(trace: &Trace, freqs: &[Freq], bound: f64) -> usize {
        let completions = completions_for(trace, freqs);
        count_violations(trace, &completions, bound)
    }

    #[test]
    fn schedule_respects_violation_budget() {
        let dvfs = DvfsConfig::haswell_like();
        let oracle = DynamicOracle::new(dvfs.clone(), 0.95);
        let trace = small_trace(0.4, 400, 1);
        let static_oracle = StaticOracle::new(dvfs, 0.95);
        let bound = static_oracle.tail_at(&trace, Freq::from_mhz(2400)).unwrap();
        let schedule = oracle.schedule(&trace, bound, power);
        let violations = violations_of(&trace, &schedule.freqs, bound);
        assert!(violations as f64 <= 0.05 * trace.len() as f64 + 1.0);
    }

    #[test]
    fn dynamic_oracle_uses_no_more_energy_than_static_oracle() {
        let dvfs = DvfsConfig::haswell_like();
        let trace = small_trace(0.5, 400, 2);
        let static_oracle = StaticOracle::new(dvfs.clone(), 0.95);
        let bound = static_oracle.tail_at(&trace, Freq::from_mhz(2400)).unwrap();
        let static_freq = static_oracle.lowest_feasible_freq(&trace, bound);
        let static_energy = replay_energy(&trace, &vec![static_freq; trace.len()], power);

        let dynamic = DynamicOracle::new(dvfs, 0.95).schedule(&trace, bound, power);
        assert!(
            dynamic.energy <= static_energy * 1.001,
            "dynamic {} vs static {}",
            dynamic.energy,
            static_energy
        );
    }

    #[test]
    fn schedule_has_one_frequency_per_request() {
        let dvfs = DvfsConfig::haswell_like();
        let trace = small_trace(0.3, 100, 3);
        let schedule = DynamicOracle::new(dvfs.clone(), 0.95).schedule(&trace, 1e-3, power);
        assert_eq!(schedule.freqs.len(), trace.len());
        for f in &schedule.freqs {
            assert!(dvfs.is_level(*f));
        }
    }

    #[test]
    fn empty_trace_yields_empty_schedule() {
        let dvfs = DvfsConfig::haswell_like();
        let schedule = DynamicOracle::new(dvfs, 0.95).schedule(&Trace::default(), 1e-3, power);
        assert!(schedule.freqs.is_empty());
        assert_eq!(schedule.energy, 0.0);
    }

    #[test]
    fn isolated_requests_run_at_the_lowest_feasible_level() {
        // Far-apart requests never queue; each should drop to the lowest
        // level whose service time fits the bound (2.4e6 cycles take 3 ms at
        // 0.8 GHz, comfortably within the 3.1 ms bound).
        let dvfs = DvfsConfig::haswell_like();
        let trace = Trace::new(
            (0..20)
                .map(|i| rubik_sim::RequestSpec::new(i, i as f64, 2.4e6, 0.0))
                .collect(),
        );
        let schedule = DynamicOracle::new(dvfs, 0.95).schedule(&trace, 3.1e-3, power);
        let at_min = schedule.freqs.iter().filter(|f| f.mhz() == 800).count();
        assert!(at_min >= 19, "only {at_min} requests at the minimum level");
    }

    #[test]
    fn incremental_propagation_matches_full_replay() {
        // After the greedy descent, the incrementally maintained completion
        // times must agree with a from-scratch replay.
        let dvfs = DvfsConfig::haswell_like();
        let trace = small_trace(0.6, 300, 4);
        let bound = StaticOracle::new(dvfs.clone(), 0.95)
            .tail_at(&trace, Freq::from_mhz(2400))
            .unwrap();
        let schedule = DynamicOracle::new(dvfs, 0.95).schedule(&trace, bound, power);
        let records = replay(&trace, &schedule.freqs);
        let tail = replay_tail(&records, 0.95).unwrap();
        assert!((tail - schedule.tail_latency).abs() < 1e-12);
    }

    #[test]
    fn tighter_bounds_cost_more_energy() {
        let dvfs = DvfsConfig::haswell_like();
        let trace = small_trace(0.4, 300, 5);
        let oracle = DynamicOracle::new(dvfs, 0.95);
        let loose = oracle.schedule(&trace, 3e-3, power);
        let tight = oracle.schedule(&trace, 0.7e-3, power);
        assert!(tight.energy >= loose.energy);
    }

    #[test]
    #[should_panic(expected = "latency bound")]
    fn rejects_nonpositive_bound() {
        let dvfs = DvfsConfig::haswell_like();
        let _ = DynamicOracle::new(dvfs, 0.95).schedule(&Trace::default(), 0.0, power);
    }
}
