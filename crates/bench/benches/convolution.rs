//! Convolution cost: the paper uses FFTs to accelerate the convolutions that
//! build the target tail tables; this bench quantifies the FFT vs direct
//! crossover for the 128-bucket distributions Rubik uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::stats::fft::{convolve_direct, convolve_fft};

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    for &len in &[128usize, 512, 2048] {
        let a: Vec<f64> = (0..len).map(|i| 1.0 / (i + 1) as f64).collect();
        let b = a.clone();
        group.bench_with_input(BenchmarkId::new("direct", len), &len, |bench, _| {
            bench.iter(|| convolve_direct(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("fft", len), &len, |bench, _| {
            bench.iter(|| convolve_fft(&a, &b))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_convolution
}
criterion_main!(benches);
