//! Random sampling helpers.
//!
//! The workload models draw request inter-arrival times (exponential, i.e. a
//! Markov input process, paper Sec. 5.1) and per-request service demands from
//! parametric distributions. [`ServiceSampler`] covers the distribution
//! shapes needed to mimic the five latency-critical applications, and
//! [`DeterministicRng`] pins the RNG seed so every experiment is
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Pareto, Zipf};
use serde::{Deserialize, Serialize};

/// A seeded pseudo-random number generator with convenience draws for the
/// distributions used across the reproduction.
///
/// Wrapping [`StdRng`] in a newtype keeps the choice of generator out of the
/// public API and guarantees every consumer seeds explicitly.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    rng: StdRng,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "range must be non-empty");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer draw in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.rng.gen_range(0..n)
    }

    /// Exponential draw with the given `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        Exp::new(1.0 / mean).expect("valid rate").sample(&mut self.rng)
    }

    /// Log-normal draw parameterized by the *target* mean and coefficient of
    /// variation of the resulting distribution (not the underlying normal).
    pub fn lognormal(&mut self, mean: f64, cov: f64) -> f64 {
        assert!(mean > 0.0 && cov >= 0.0);
        if cov == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
            .expect("valid lognormal")
            .sample(&mut self.rng)
    }

    /// Pareto draw with the given scale (minimum value) and shape.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0);
        Pareto::new(scale, shape).expect("valid pareto").sample(&mut self.rng)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0 && s > 0.0);
        Zipf::new(n, s).expect("valid zipf").sample(&mut self.rng) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Normal draw with given mean and standard deviation, truncated at zero.
    pub fn normal_nonneg(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0);
        let z = crate::gaussian::gaussian_quantile(self.uniform().clamp(1e-12, 1.0 - 1e-12));
        (mean + std * z).max(0.0)
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated server its own stream.
    pub fn fork(&mut self) -> DeterministicRng {
        DeterministicRng::new(self.rng.gen())
    }
}

/// Parametric per-request service-demand sampler.
///
/// The unit is left to the caller (the workload models use cycles for compute
/// demand and seconds for memory-bound time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceSampler {
    /// Every request needs exactly this much work.
    Constant(f64),
    /// Exponentially distributed work with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal work with the given mean and coefficient of variation.
    LogNormal {
        /// Mean of the distribution.
        mean: f64,
        /// Coefficient of variation (stddev / mean).
        cov: f64,
    },
    /// Pareto (heavy-tailed) work.
    Pareto {
        /// Minimum value (scale).
        scale: f64,
        /// Tail exponent; smaller is heavier.
        shape: f64,
    },
    /// Two-class (short/long) bimodal work, as used to mimic applications
    /// with distinct request classes (the situation Adrenaline exploits).
    Bimodal {
        /// Work of a short request.
        short: f64,
        /// Work of a long request.
        long: f64,
        /// Probability that a request is long.
        long_fraction: f64,
    },
    /// Uniform work in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl ServiceSampler {
    /// Draws one service demand.
    pub fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        match *self {
            ServiceSampler::Constant(v) => v,
            ServiceSampler::Exponential { mean } => rng.exponential(mean),
            ServiceSampler::LogNormal { mean, cov } => rng.lognormal(mean, cov),
            ServiceSampler::Pareto { scale, shape } => rng.pareto(scale, shape),
            ServiceSampler::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                if rng.bernoulli(long_fraction) {
                    long
                } else {
                    short
                }
            }
            ServiceSampler::Uniform { lo, hi } => rng.uniform_range(lo, hi),
        }
    }

    /// Analytical mean of the sampler, where tractable.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceSampler::Constant(v) => v,
            ServiceSampler::Exponential { mean } => mean,
            ServiceSampler::LogNormal { mean, .. } => mean,
            ServiceSampler::Pareto { scale, shape } => {
                if shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            ServiceSampler::Bimodal {
                short,
                long,
                long_fraction,
            } => short * (1.0 - long_fraction) + long * long_fraction,
            ServiceSampler::Uniform { lo, hi } => (lo + hi) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = DeterministicRng::new(7);
        let s: OnlineStats = (0..50_000).map(|_| rng.exponential(3.0)).collect();
        assert!((s.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_mean_and_cov_converge() {
        let mut rng = DeterministicRng::new(11);
        let s: OnlineStats = (0..100_000).map(|_| rng.lognormal(2.0, 0.5)).collect();
        assert!((s.mean() - 2.0).abs() < 0.05, "mean = {}", s.mean());
        assert!((s.cov() - 0.5).abs() < 0.05, "cov = {}", s.cov());
    }

    #[test]
    fn zipf_favors_low_ranks() {
        let mut rng = DeterministicRng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let r = rng.zipf(10, 1.0) as usize;
            counts[r - 1] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn samplers_are_nonnegative_and_match_mean() {
        let mut rng = DeterministicRng::new(5);
        let samplers = [
            ServiceSampler::Constant(4.0),
            ServiceSampler::Exponential { mean: 4.0 },
            ServiceSampler::LogNormal { mean: 4.0, cov: 0.3 },
            ServiceSampler::Bimodal {
                short: 2.0,
                long: 10.0,
                long_fraction: 0.25,
            },
            ServiceSampler::Uniform { lo: 2.0, hi: 6.0 },
        ];
        for s in samplers {
            let stats: OnlineStats = (0..50_000).map(|_| s.sample(&mut rng)).collect();
            assert!(stats.min().unwrap() >= 0.0);
            assert!(
                (stats.mean() - s.mean()).abs() < 0.15 * s.mean(),
                "{s:?}: mean {} vs {}",
                stats.mean(),
                s.mean()
            );
        }
    }

    #[test]
    fn bimodal_fraction_is_respected() {
        let mut rng = DeterministicRng::new(17);
        let s = ServiceSampler::Bimodal {
            short: 1.0,
            long: 100.0,
            long_fraction: 0.1,
        };
        let longs = (0..20_000).filter(|_| s.sample(&mut rng) > 50.0).count();
        let frac = longs as f64 / 20_000.0;
        assert!((frac - 0.1).abs() < 0.02);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DeterministicRng::new(99);
        let mut child = a.fork();
        // The child's stream differs from the parent's subsequent draws.
        let same = (0..100).filter(|_| a.uniform() == child.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn normal_nonneg_truncates() {
        let mut rng = DeterministicRng::new(23);
        for _ in 0..1000 {
            assert!(rng.normal_nonneg(0.1, 5.0) >= 0.0);
        }
    }
}
