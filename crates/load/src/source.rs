//! Pull-based arrival sources.
//!
//! Every source here is seeded and deterministic: the same constructor
//! arguments produce the same stream, one request at a time, regardless of
//! how many arrivals the consumer pulls per call or how the run is
//! interleaved with other work. [`PoissonSource`] reproduces
//! [`WorkloadGenerator::steady_trace`] bit-for-bit; [`ShapedSource`] draws
//! a non-homogeneous Poisson process from a [`LoadShape`] via seeded
//! thinning; [`MergedSource`] interleaves several streams by
//! `(time, stream index)`; [`TraceSource`] adapts any materialized
//! [`Trace`].

use rubik_sim::{RequestSpec, Trace};
use rubik_workloads::{AppProfile, WorkloadGenerator};

use crate::shape::{LoadShape, LoadShapeError};

/// A pull-based, deterministic stream of time-ordered arrivals.
///
/// Implementors must yield requests in non-decreasing arrival order and be
/// fully determined by their construction (seed included): pulling the
/// stream twice from identically-built sources gives bit-identical
/// requests. `None` is terminal — once a source is exhausted it stays
/// exhausted.
pub trait ArrivalSource {
    /// The next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<RequestSpec>;

    /// How many arrivals remain, when the source knows exactly.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for &mut S {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        (**self).next_arrival()
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

/// Materializes a source into a [`Trace`], optionally stopping after
/// `limit` arrivals. The inverse of [`TraceSource`]: useful for seeding
/// controllers from a stream prefix or pinning stream/batch equivalence.
pub fn drain_to_trace<S: ArrivalSource>(mut source: S, limit: Option<usize>) -> Trace {
    // Pre-size from the source's exact hint when it has one, clamped by the
    // limit; a bare limit is only a ceiling, so cap speculative allocation.
    let cap = match (source.remaining_hint(), limit) {
        (Some(hint), Some(n)) => hint.min(n),
        (Some(hint), None) => hint,
        (None, Some(n)) => n.min(1 << 16),
        (None, None) => 0,
    };
    let mut requests = Vec::with_capacity(cap);
    while limit.is_none_or(|n| requests.len() < n) {
        match source.next_arrival() {
            Some(r) => requests.push(r),
            None => break,
        }
    }
    Trace::new(requests)
}

/// A steady open-loop Poisson stream — the streaming twin of
/// [`WorkloadGenerator::steady_trace`], bit-for-bit.
///
/// The source holds one [`WorkloadGenerator`] and interleaves the exact
/// same RNG calls (`next_interarrival`, then the request-body draw) per
/// arrival, so collecting the stream yields the identical trace the batch
/// generator would have produced with the same seed.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    generator: WorkloadGenerator,
    rate: f64,
    remaining: usize,
    now: f64,
    next_id: u64,
}

impl PoissonSource {
    /// A stream of `requests` arrivals at `load` (fraction of one core's
    /// nominal capacity; scale by the fleet size for pooled streams).
    ///
    /// # Panics
    ///
    /// Panics if `load <= 0`.
    pub fn new(profile: AppProfile, load: f64, requests: usize, seed: u64) -> Self {
        assert!(load > 0.0, "load must be positive");
        let generator = WorkloadGenerator::new(profile, seed);
        let rate = generator.steady_rate(load);
        Self {
            generator,
            rate,
            remaining: requests,
            now: 0.0,
            next_id: 0,
        }
    }

    /// The arrival rate in queries per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ArrivalSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.now += self.generator.next_interarrival(self.rate);
        let spec = self.generator.draw_request_at(self.next_id, self.now);
        self.next_id += 1;
        Some(spec)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// A non-homogeneous Poisson stream following a [`LoadShape`], drawn by
/// seeded thinning.
///
/// Candidate arrivals are drawn at the envelope rate
/// `peak_load × capacity` and accepted with probability
/// `load_at(t) / peak_load` using one uniform draw per candidate, which is
/// the classic thinning construction: accepted points form an exact
/// non-homogeneous Poisson process with intensity `load_at(t) × capacity`.
/// Determinism is inherited from the seeded generator — the same
/// `(profile, shape, seed, fleet scale)` always yields the same stream.
#[derive(Debug, Clone)]
pub struct ShapedSource {
    generator: WorkloadGenerator,
    shape: LoadShape,
    /// Queries per second at load 1.0 for the whole (scaled) fleet.
    capacity: f64,
    /// Thinning envelope: `shape.peak_load() × capacity`.
    peak_rate: f64,
    duration: f64,
    now: f64,
    next_id: u64,
    emitted: usize,
    max_requests: usize,
}

impl ShapedSource {
    /// A shaped stream for a single server.
    ///
    /// # Panics
    ///
    /// Panics if the shape fails [`LoadShape::validate`]; use
    /// [`ShapedSource::try_new`] for a fallible constructor.
    pub fn new(profile: AppProfile, shape: LoadShape, seed: u64) -> Self {
        match Self::try_new(profile, shape, seed) {
            Ok(source) => source,
            Err(e) => panic!("invalid load shape: {e}"),
        }
    }

    /// Fallible [`ShapedSource::new`].
    ///
    /// # Errors
    ///
    /// Returns the shape's [`LoadShapeError`] if it fails validation.
    pub fn try_new(
        profile: AppProfile,
        shape: LoadShape,
        seed: u64,
    ) -> Result<Self, LoadShapeError> {
        shape.validate()?;
        let generator = WorkloadGenerator::new(profile, seed);
        let capacity = generator.steady_rate(1.0);
        let peak_rate = shape.peak_load() * capacity;
        let duration = shape.duration();
        Ok(Self {
            generator,
            shape,
            capacity,
            peak_rate,
            duration,
            now: 0.0,
            next_id: 0,
            emitted: 0,
            max_requests: usize::MAX,
        })
    }

    /// Scales the stream to a pooled fleet of `servers` servers: every load
    /// level in the shape now means "fraction of the whole fleet's
    /// capacity". Call before the first pull.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn for_fleet(mut self, servers: usize) -> Self {
        assert!(servers > 0, "a fleet needs at least one server");
        assert!(self.next_id == 0, "scale the source before pulling from it");
        let scale = servers as f64;
        self.capacity *= scale;
        self.peak_rate *= scale;
        self
    }

    /// Caps the stream at `requests` arrivals even if the shape window has
    /// not elapsed. Call before the first pull.
    pub fn with_max_requests(mut self, requests: usize) -> Self {
        assert!(self.next_id == 0, "cap the source before pulling from it");
        self.max_requests = requests;
        self
    }

    /// The expected number of arrivals over the full shape window
    /// (`average_load × capacity × duration`) — useful for sizing shape
    /// durations to a request budget.
    pub fn expected_requests(&self) -> f64 {
        self.shape.average_load() * self.capacity * self.duration
    }

    /// The shape driving this source.
    pub fn shape(&self) -> &LoadShape {
        &self.shape
    }
}

impl ArrivalSource for ShapedSource {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        if self.emitted >= self.max_requests || self.now >= self.duration {
            return None;
        }
        loop {
            self.now += self.generator.next_interarrival(self.peak_rate);
            if self.now >= self.duration {
                return None;
            }
            let lambda = self.shape.load_at(self.now) * self.capacity;
            // Thinning: accept the candidate with probability λ(t)/λ_max.
            if self.generator.thinning_draw() * self.peak_rate < lambda {
                let spec = self.generator.draw_request_at(self.next_id, self.now);
                self.next_id += 1;
                self.emitted += 1;
                return Some(spec);
            }
        }
    }
}

/// Several arrival streams merged into one, deterministically ordered by
/// `(arrival time, stream index)`.
///
/// Models heterogeneous fleets where multiple applications share one
/// cluster: each inner source keeps its own seed and profile, and the
/// merge re-numbers requests sequentially in emission order so ids stay
/// globally unique (the cluster driver requires that for hedging and
/// conservation accounting). With [`MergedSource::with_class_tags`], each
/// request's `class` is overwritten with its stream index so routers and
/// outcome accounting can tell the applications apart — note stream 1 then
/// shares the label [`rubik_workloads::LONG_REQUEST_CLASS`].
pub struct MergedSource {
    streams: Vec<Box<dyn ArrivalSource>>,
    /// Head-of-stream buffer, one pending arrival per inner source.
    pending: Vec<Option<RequestSpec>>,
    primed: bool,
    next_id: u64,
    tag_classes: bool,
}

impl std::fmt::Debug for MergedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergedSource")
            .field("streams", &self.streams.len())
            .field("primed", &self.primed)
            .field("next_id", &self.next_id)
            .field("tag_classes", &self.tag_classes)
            .finish()
    }
}

impl Default for MergedSource {
    fn default() -> Self {
        Self::new()
    }
}

impl MergedSource {
    /// An empty merge; add streams with [`MergedSource::push`].
    pub fn new() -> Self {
        Self {
            streams: Vec::new(),
            pending: Vec::new(),
            primed: false,
            next_id: 0,
            tag_classes: false,
        }
    }

    /// Adds a stream. Merge order ties break toward earlier-pushed streams.
    pub fn push(mut self, source: impl ArrivalSource + 'static) -> Self {
        assert!(!self.primed, "add streams before pulling from the merge");
        self.streams.push(Box::new(source));
        self.pending.push(None);
        self
    }

    /// Overwrites each request's `class` with its stream index, so
    /// downstream accounting can attribute requests to applications.
    pub fn with_class_tags(mut self) -> Self {
        self.tag_classes = true;
        self
    }
}

impl ArrivalSource for MergedSource {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        if !self.primed {
            for (slot, stream) in self.pending.iter_mut().zip(&mut self.streams) {
                *slot = stream.next_arrival();
            }
            self.primed = true;
        }
        // Earliest pending arrival; ties break by stream index, which makes
        // the merge order fully deterministic.
        let mut best: Option<usize> = None;
        for (i, slot) in self.pending.iter().enumerate() {
            if let Some(r) = slot {
                let earlier = match best {
                    None => true,
                    Some(b) => {
                        let held = self.pending[b].expect("best slot holds a request");
                        r.arrival.total_cmp(&held.arrival).is_lt()
                    }
                };
                if earlier {
                    best = Some(i);
                }
            }
        }
        let index = best?;
        let mut spec = self.pending[index].take().expect("chosen slot is pending");
        self.pending[index] = self.streams[index].next_arrival();
        spec.id = self.next_id;
        self.next_id += 1;
        if self.tag_classes {
            spec.class = index as u32;
        }
        Some(spec)
    }

    fn remaining_hint(&self) -> Option<usize> {
        let mut total = self.pending.iter().flatten().count();
        for stream in &self.streams {
            total += stream.remaining_hint()?;
        }
        Some(total)
    }
}

/// Adapts a materialized [`Trace`] into an [`ArrivalSource`], replaying its
/// requests in order. Zero-copy: the source borrows the trace.
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    requests: &'a [RequestSpec],
    next: usize,
}

impl<'a> TraceSource<'a> {
    /// A source that replays `trace` front to back.
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            requests: trace.requests(),
            next: 0,
        }
    }
}

impl ArrivalSource for TraceSource<'_> {
    fn next_arrival(&mut self) -> Option<RequestSpec> {
        let spec = self.requests.get(self.next).copied()?;
        self.next += 1;
        Some(spec)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.requests.len() - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile::masstree()
    }

    #[test]
    fn poisson_source_matches_steady_trace_bit_for_bit() {
        let mut generator = WorkloadGenerator::new(profile(), 42);
        let batch = generator.steady_trace(0.5, 500);
        let streamed = drain_to_trace(PoissonSource::new(profile(), 0.5, 500, 42), None);
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.requests().iter().zip(streamed.requests()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.class, b.class);
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
            assert_eq!(a.membound_time.to_bits(), b.membound_time.to_bits());
        }
    }

    #[test]
    fn poisson_source_reports_remaining() {
        let mut source = PoissonSource::new(profile(), 0.5, 3, 1);
        assert_eq!(source.remaining_hint(), Some(3));
        source.next_arrival().unwrap();
        assert_eq!(source.remaining_hint(), Some(2));
        source.next_arrival().unwrap();
        source.next_arrival().unwrap();
        assert_eq!(source.next_arrival(), None);
        assert_eq!(source.next_arrival(), None, "exhaustion is terminal");
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn poisson_source_rejects_zero_load() {
        let _ = PoissonSource::new(profile(), 0.0, 10, 1);
    }

    #[test]
    fn shaped_source_same_seed_is_byte_identical() {
        let shape = LoadShape::Ramp {
            from: 0.2,
            to: 0.8,
            duration: 5.0,
        };
        let a = drain_to_trace(ShapedSource::new(profile(), shape.clone(), 9), None);
        let b = drain_to_trace(ShapedSource::new(profile(), shape.clone(), 9), None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.requests().iter().zip(b.requests()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.compute_cycles.to_bits(), y.compute_cycles.to_bits());
            assert_eq!(x.membound_time.to_bits(), y.membound_time.to_bits());
            assert_eq!(x.class, y.class);
        }
        let c = drain_to_trace(ShapedSource::new(profile(), shape, 10), None);
        assert_ne!(
            a.requests()
                .iter()
                .map(|r| r.arrival.to_bits())
                .collect::<Vec<_>>(),
            c.requests()
                .iter()
                .map(|r| r.arrival.to_bits())
                .collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn shaped_source_is_time_ordered_with_sequential_ids() {
        let shape = LoadShape::Diurnal {
            mean: 0.4,
            amplitude: 0.3,
            period: 4.0,
            duration: 8.0,
        };
        let trace = drain_to_trace(ShapedSource::new(profile(), shape, 3), None);
        assert!(trace.len() > 100);
        let mut last = 0.0;
        for (i, r) in trace.requests().iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival >= last);
            last = r.arrival;
            assert!(r.arrival < 8.0);
        }
    }

    /// Empirical per-segment rates of the thinned process track the shape
    /// within tolerance — the NHPP construction is correct, not just
    /// deterministic.
    #[test]
    fn shaped_source_tracks_segment_rates() {
        let shape = LoadShape::Sequence(vec![
            LoadShape::Steady {
                load: 0.2,
                duration: 6.0,
            },
            LoadShape::Steady {
                load: 0.6,
                duration: 6.0,
            },
            LoadShape::Steady {
                load: 0.4,
                duration: 6.0,
            },
        ]);
        let source = ShapedSource::new(profile(), shape, 17);
        let capacity = source.capacity;
        let trace = drain_to_trace(source, None);
        for (segment, load) in [(0, 0.2), (1, 0.6), (2, 0.4)] {
            let lo = 6.0 * segment as f64;
            let hi = lo + 6.0;
            let count = trace
                .requests()
                .iter()
                .filter(|r| r.arrival >= lo && r.arrival < hi)
                .count() as f64;
            let expected = load * capacity * 6.0;
            assert!(
                (count - expected).abs() < 0.2 * expected,
                "segment {segment}: {count} arrivals, expected ~{expected}"
            );
        }
    }

    #[test]
    fn shaped_source_ramp_rate_rises() {
        let shape = LoadShape::Ramp {
            from: 0.1,
            to: 0.9,
            duration: 10.0,
        };
        let source = ShapedSource::new(profile(), shape, 23);
        let capacity = source.capacity;
        let trace = drain_to_trace(source, None);
        // First and last thirds straddle the ramp midpoint loads 0.233/0.767.
        let early = trace
            .requests()
            .iter()
            .filter(|r| r.arrival < 10.0 / 3.0)
            .count() as f64;
        let late = trace
            .requests()
            .iter()
            .filter(|r| r.arrival >= 20.0 / 3.0)
            .count() as f64;
        let expected_early = (0.1 + 0.8 / 6.0) * capacity * (10.0 / 3.0);
        let expected_late = (0.9 - 0.8 / 6.0) * capacity * (10.0 / 3.0);
        assert!(
            (early - expected_early).abs() < 0.25 * expected_early,
            "early {early} vs {expected_early}"
        );
        assert!(
            (late - expected_late).abs() < 0.2 * expected_late,
            "late {late} vs {expected_late}"
        );
    }

    #[test]
    fn shaped_source_fleet_scale_multiplies_rate() {
        let shape = LoadShape::Steady {
            load: 0.3,
            duration: 10.0,
        };
        let one = drain_to_trace(ShapedSource::new(profile(), shape.clone(), 5), None);
        let four = drain_to_trace(ShapedSource::new(profile(), shape, 5).for_fleet(4), None);
        let ratio = four.len() as f64 / one.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn shaped_source_respects_request_cap() {
        let shape = LoadShape::Steady {
            load: 0.5,
            duration: 100.0,
        };
        let trace = drain_to_trace(
            ShapedSource::new(profile(), shape, 7).with_max_requests(50),
            None,
        );
        assert_eq!(trace.len(), 50);
    }

    #[test]
    fn merged_source_orders_by_time_and_renumbers() {
        let merged = MergedSource::new()
            .push(PoissonSource::new(AppProfile::masstree(), 0.3, 200, 1))
            .push(PoissonSource::new(AppProfile::xapian(), 0.3, 200, 2))
            .with_class_tags();
        assert_eq!(merged.remaining_hint(), Some(400));
        let trace = drain_to_trace(merged, None);
        assert_eq!(trace.len(), 400);
        let mut last = 0.0;
        let mut per_class = [0usize; 2];
        for (i, r) in trace.requests().iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids are renumbered sequentially");
            assert!(r.arrival >= last, "merge is time-ordered");
            last = r.arrival;
            assert!(r.class < 2);
            per_class[r.class as usize] += 1;
        }
        assert_eq!(per_class, [200, 200]);
    }

    #[test]
    fn merged_source_streams_keep_their_own_seeds() {
        let solo = drain_to_trace(PoissonSource::new(profile(), 0.3, 100, 11), None);
        let merged = drain_to_trace(
            MergedSource::new().push(PoissonSource::new(profile(), 0.3, 100, 11)),
            None,
        );
        for (a, b) in solo.requests().iter().zip(merged.requests()) {
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
        }
    }

    #[test]
    fn trace_source_replays_the_trace() {
        let mut generator = WorkloadGenerator::new(profile(), 4);
        let trace = generator.steady_trace(0.4, 50);
        let mut source = TraceSource::new(&trace);
        assert_eq!(source.remaining_hint(), Some(50));
        for expected in trace.requests() {
            let got = source.next_arrival().unwrap();
            assert_eq!(got, *expected);
        }
        assert_eq!(source.next_arrival(), None);
        assert_eq!(source.remaining_hint(), Some(0));
    }

    #[test]
    fn drain_to_trace_honors_limit() {
        let trace = drain_to_trace(PoissonSource::new(profile(), 0.5, 100, 2), Some(10));
        assert_eq!(trace.len(), 10);
    }
}
