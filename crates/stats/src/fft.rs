//! Radix-2 FFTs, planned real-input transforms, and FFT-accelerated
//! convolution.
//!
//! The paper (Sec. 4.2, "Cost") uses FFTs to accelerate the convolutions that
//! build the target tail tables; this module provides that primitive without
//! any external dependency.
//!
//! Two tiers of API:
//!
//! * [`convolve`] / [`convolve_fft`] / [`convolve_direct`] — one-shot
//!   convolution of two real sequences, choosing the algorithm by size.
//! * [`FftPlan`] / [`Spectrum`] — the perf tier used by the table builder.
//!   A plan fixes the transform size once, precomputes twiddle factors and
//!   the bit-reversal permutation, and transforms *real* input at half-size
//!   cost (the classic even/odd complex packing). [`Spectrum`]s can be
//!   multiplied pointwise ([`Spectrum::mul_assign`]), so a convolution
//!   ladder `base, base⊛base, base^⊛3, …` costs one forward transform plus
//!   one O(n) pointwise product per rung — the structure
//!   `rubik-core::tables` exploits to rebuild all table rows from a single
//!   base transform. All plan entry points take caller-owned scratch/output
//!   buffers so a rebuild loop performs no steady-state allocation.

use std::f64::consts::PI;

/// A complex number represented as `(re, im)`.
///
/// A minimal internal representation; not exported as a general-purpose
/// complex type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    #[inline]
    fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    #[inline]
    fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    #[inline]
    fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// Computes the in-place radix-2 decimation-in-time FFT.
///
/// One-shot variant that derives twiddles on the fly; the table builder uses
/// [`FftPlan`] instead, which precomputes them.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Iterative Cooley-Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// A planned real-input FFT of a fixed power-of-two size.
///
/// The plan packs the real input into a complex sequence of half the length
/// and runs a half-size complex FFT with precomputed twiddle factors and
/// bit-reversal indices, then unpacks to the half-spectrum (bins `0..=n/2`;
/// the upper half is implied by Hermitian symmetry). Building a plan is
/// `O(n)`; each transform is `O(n log n)` with no allocation when the caller
/// reuses its scratch buffers.
///
/// Twiddles are stored **per butterfly stage, contiguously** (the stage for
/// block length `len` holds the `len/2` factors `exp(-2πik/len)`), and the
/// inverse direction keeps its own pre-conjugated copy. Conjugation is an
/// exact sign flip and the per-stage tables hold exactly the values the
/// strided lookups used to produce, so the butterfly arithmetic — and hence
/// every transform bit — is unchanged; the kernel just walks both tables
/// sequentially instead of gathering with a stride and branching on the
/// direction per butterfly.
#[derive(Debug, Clone)]
pub struct FftPlan {
    /// Real transform size (power of two, ≥ 2).
    n: usize,
    /// Half size: the complex FFT actually executed.
    half: usize,
    /// Forward twiddles, concatenated per stage (`half - 1` entries: one for
    /// the `len = 2` stage, two for `len = 4`, ..., `half/2` for the last).
    stage_twiddles: Vec<Complex>,
    /// The same tables conjugated, for the inverse direction.
    stage_twiddles_conj: Vec<Complex>,
    /// Unpack factors `exp(-2πik/n)` for `k <= half`.
    unpack: Vec<Complex>,
    /// Bit-reversal permutation for the half-size FFT.
    rev: Vec<u32>,
}

/// The half-spectrum of a real sequence under some [`FftPlan`]: bins
/// `0..=n/2` of the DFT (the rest follows from Hermitian symmetry).
///
/// Spectra from the same plan can be multiplied pointwise, which corresponds
/// to circular convolution of length `n` in the time domain — linear
/// convolution as long as the true support fits in `n`.
#[derive(Debug, Default, PartialEq)]
pub struct Spectrum {
    n: usize,
    bins: Vec<Complex>,
}

impl Clone for Spectrum {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            bins: self.bins.clone(),
        }
    }

    /// Reuses `self`'s bin storage, so cloning into a spectrum that already
    /// has capacity performs no allocation (the table-rebuild loop clones the
    /// base spectrum into a persistent running product every build).
    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.bins.clone_from(&source.bins);
    }
}

impl Spectrum {
    /// The real transform size this spectrum belongs to.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the spectrum is empty (never true for plan-produced spectra).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Pointwise (frequency-domain) multiplication: the spectrum of the
    /// convolution of the two underlying sequences.
    ///
    /// # Panics
    ///
    /// Panics if the spectra come from different-size plans.
    pub fn mul_assign(&mut self, other: &Spectrum) {
        assert_eq!(self.n, other.n, "spectra must share a plan size");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.mul(*b);
        }
    }
}

impl FftPlan {
    /// Creates a plan for real transforms of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "FFT plan size must be a power of two >= 2"
        );
        let half = n / 2;
        let twiddles: Vec<Complex> = (0..half / 2)
            .map(|k| {
                let angle = -2.0 * PI * k as f64 / half as f64;
                Complex::new(angle.cos(), angle.sin())
            })
            .collect();
        // Re-lay the twiddles out per stage (the factors the strided lookup
        // `twiddles[k * stride]` used to gather), so the butterfly kernel
        // reads them sequentially. Values are copied, not recomputed.
        let mut stage_twiddles = Vec::with_capacity(half.saturating_sub(1));
        let mut len = 2;
        while len <= half {
            let stride = half / len;
            for k in 0..len / 2 {
                stage_twiddles.push(twiddles[k * stride]);
            }
            len <<= 1;
        }
        let stage_twiddles_conj = stage_twiddles.iter().map(|w| w.conj()).collect();
        let unpack = (0..=half)
            .map(|k| {
                let angle = -2.0 * PI * k as f64 / n as f64;
                Complex::new(angle.cos(), angle.sin())
            })
            .collect();
        let mut rev = vec![0u32; half];
        let mut j = 0usize;
        for i in 1..half {
            let mut bit = half >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            rev[i] = j as u32;
        }
        Self {
            n,
            half,
            stage_twiddles,
            stage_twiddles_conj,
            unpack,
            rev,
        }
    }

    /// The real transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never; for API completeness).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Half-size complex FFT using the precomputed twiddles (decimation in
    /// time). `inverse` selects the pre-conjugated twiddle tables; scaling is
    /// the caller's job. The butterflies are identical to the classic strided
    /// formulation — the per-stage tables hold the same factor values — so
    /// the output is bit-for-bit unchanged; only the memory access pattern
    /// (sequential twiddle reads, branch-free inner loop) differs.
    fn half_fft(&self, data: &mut [Complex], inverse: bool) {
        let m = self.half;
        debug_assert_eq!(data.len(), m);
        for i in 1..m {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let twiddles = if inverse {
            &self.stage_twiddles_conj
        } else {
            &self.stage_twiddles
        };
        let mut len = 2;
        let mut offset = 0;
        while len <= m {
            let half_len = len / 2;
            let stage = &twiddles[offset..offset + half_len];
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half_len);
                for k in 0..half_len {
                    let u = lo[k];
                    let v = hi[k].mul(stage[k]);
                    lo[k] = u.add(v);
                    hi[k] = u.sub(v);
                }
            }
            offset += half_len;
            len <<= 1;
        }
    }

    /// Forward transform of a real sequence (zero-padded to the plan size)
    /// into `out`, using `scratch` for the packed half-size FFT. Both buffers
    /// are resized as needed and reused across calls without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `real.len() > self.len()`.
    pub fn forward_into(&self, real: &[f64], scratch: &mut Vec<Complex>, out: &mut Spectrum) {
        assert!(
            real.len() <= self.n,
            "input of length {} exceeds plan size {}",
            real.len(),
            self.n
        );
        let m = self.half;
        scratch.resize(m, Complex::default());
        // Pack x[2k] + i·x[2k+1].
        let mut pairs = real.chunks_exact(2);
        let mut k = 0;
        for pair in pairs.by_ref() {
            scratch[k] = Complex::new(pair[0], pair[1]);
            k += 1;
        }
        if let [tail] = pairs.remainder() {
            scratch[k] = Complex::new(*tail, 0.0);
            k += 1;
        }
        for slot in &mut scratch[k..] {
            *slot = Complex::default();
        }
        self.half_fft(scratch, false);

        out.n = self.n;
        out.bins.resize(m + 1, Complex::default());
        // Unpack: E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = -i(Z[k] - conj(Z[m-k]))/2,
        // X[k] = E[k] + e^{-2πik/n}·O[k]. Same arithmetic as the classic
        // indexed loop (`zk = Z[k % m]`, `zmk = conj(Z[(m-k) % m])`); the
        // wrap-around endpoints k = 0 and k = m are peeled so the interior
        // runs on zipped slices without bounds checks.
        let unpack_bin = |zk: Complex, zmk: Complex, w: Complex| {
            let e = zk.add(zmk).scale(0.5);
            let d = zk.sub(zmk).scale(0.5);
            let o = Complex::new(d.im, -d.re); // -i·d
            e.add(w.mul(o))
        };
        let z0 = scratch[0];
        out.bins[0] = unpack_bin(z0, z0.conj(), self.unpack[0]);
        let interior = out.bins[1..m]
            .iter_mut()
            .zip(&scratch[1..m])
            .zip(scratch[1..m].iter().rev())
            .zip(&self.unpack[1..m]);
        for (((bin, &zk), &zmk), &w) in interior {
            *bin = unpack_bin(zk, zmk.conj(), w);
        }
        out.bins[m] = unpack_bin(z0, z0.conj(), self.unpack[m]);
    }

    /// Convenience allocating forward transform.
    pub fn forward(&self, real: &[f64]) -> Spectrum {
        let mut scratch = Vec::new();
        let mut out = Spectrum {
            n: self.n,
            bins: Vec::new(),
        };
        self.forward_into(real, &mut scratch, &mut out);
        out
    }

    /// Inverse transform of a half-spectrum back to the `n` real samples,
    /// into `out` (resized to the plan size). `scratch` is reused across
    /// calls. Values are *not* clamped; convolving non-negative sequences can
    /// leave tiny negative round-off which callers clamp as appropriate.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum belongs to a different plan size.
    pub fn inverse_into(&self, spec: &Spectrum, scratch: &mut Vec<Complex>, out: &mut Vec<f64>) {
        assert_eq!(spec.n, self.n, "spectrum plan size mismatch");
        let m = self.half;
        scratch.resize(m, Complex::default());
        // Re-pack: E[k] = (X[k] + conj(X[m-k]))/2,
        //          O[k] = conj(w_k)·(X[k] - conj(X[m-k]))/2,
        //          Z[k] = E[k] + i·O[k].
        // `X[m-k]` is the spectrum read back-to-front, so the whole pass is
        // zipped slices (no per-element index arithmetic); the operations
        // per element are unchanged.
        let repack = scratch
            .iter_mut()
            .zip(&spec.bins[..m])
            .zip(spec.bins[1..].iter().rev())
            .zip(&self.unpack[..m]);
        for (((slot, &xk), &xmk_raw), &w) in repack {
            let xmk = xmk_raw.conj();
            let e = xk.add(xmk).scale(0.5);
            let h = xk.sub(xmk).scale(0.5);
            let o = w.conj().mul(h);
            let io = Complex::new(-o.im, o.re); // i·o
            *slot = e.add(io);
        }
        self.half_fft(scratch, true);

        out.clear();
        out.reserve(self.n);
        let inv = 1.0 / m as f64;
        for z in scratch.iter() {
            out.push(z.re * inv);
            out.push(z.im * inv);
        }
    }

    /// Convenience allocating inverse transform.
    pub fn inverse(&self, spec: &Spectrum) -> Vec<f64> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.inverse_into(spec, &mut scratch, &mut out);
        out
    }
}

/// Direct O(n·m) convolution; used for small inputs and as a test oracle.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-accelerated convolution of two real sequences.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two().max(2);
    let plan = FftPlan::new(n);
    let mut scratch = Vec::new();
    let mut fa = Spectrum {
        n,
        bins: Vec::new(),
    };
    let mut fb = Spectrum {
        n,
        bins: Vec::new(),
    };
    plan.forward_into(a, &mut scratch, &mut fa);
    plan.forward_into(b, &mut scratch, &mut fb);
    fa.mul_assign(&fb);
    let mut out = Vec::new();
    plan.inverse_into(&fa, &mut scratch, &mut out);
    out.truncate(out_len);
    // Clamp tiny negative values produced by floating-point error: the
    // convolution of non-negative PMFs must be non-negative.
    for v in &mut out {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Threshold (product of lengths) above which the FFT path is faster than
/// the direct algorithm. Public so equivalence tests can probe both sides of
/// the crossover.
pub const FFT_CROSSOVER: usize = 64 * 64;

/// Convolves two real sequences, automatically choosing direct or FFT.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= FFT_CROSSOVER {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let orig: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(a.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data, false);
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn plan_matches_one_shot_fft_spectrum() {
        for n in [2usize, 4, 8, 64, 256] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 / 5.0).collect();
            let plan = FftPlan::new(n);
            let spec = plan.forward(&x);
            let mut full: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            fft_in_place(&mut full, false);
            for k in 0..=n / 2 {
                assert!(
                    (spec.bins[k].re - full[k].re).abs() < 1e-9
                        && (spec.bins[k].im - full[k].im).abs() < 1e-9,
                    "n={n} bin {k}: {:?} vs {:?}",
                    spec.bins[k],
                    full[k]
                );
            }
        }
    }

    #[test]
    fn plan_roundtrip_recovers_real_input() {
        for n in [2usize, 8, 128, 1024] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let plan = FftPlan::new(n);
            let back = plan.inverse(&plan.forward(&x));
            assert_eq!(back.len(), n);
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn plan_roundtrip_pads_short_input_with_zeros() {
        let plan = FftPlan::new(16);
        let x = [0.25, 0.5, 0.25];
        let back = plan.inverse(&plan.forward(&x));
        assert_close(&back[..3], &x, 1e-12);
        for &v in &back[3..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn spectrum_product_is_convolution() {
        let a: Vec<f64> = (0..40).map(|i| ((i * 13) % 7) as f64 / 6.0).collect();
        let b: Vec<f64> = (0..25).map(|i| ((i * 5) % 11) as f64 / 10.0).collect();
        let n = (a.len() + b.len() - 1).next_power_of_two();
        let plan = FftPlan::new(n);
        let mut sa = plan.forward(&a);
        let sb = plan.forward(&b);
        sa.mul_assign(&sb);
        let conv = plan.inverse(&sa);
        let direct = convolve_direct(&a, &b);
        assert_close(&conv[..direct.len()], &direct, 1e-9);
    }

    #[test]
    fn spectrum_powers_build_a_convolution_ladder() {
        // The exact structure the table builder uses: pointwise powers of one
        // base spectrum must equal repeated time-domain self-convolution.
        let base = [0.2, 0.5, 0.2, 0.1];
        let rungs = 5;
        let n = ((base.len() - 1) * rungs + 1).next_power_of_two();
        let plan = FftPlan::new(n);
        let s_base = plan.forward(&base);
        let mut spec = s_base.clone();
        let mut direct = base.to_vec();
        for _ in 1..rungs {
            spec.mul_assign(&s_base);
            direct = convolve_direct(&direct, &base);
            let ladder = plan.inverse(&spec);
            assert_close(&ladder[..direct.len()], &direct, 1e-9);
        }
    }

    #[test]
    fn forward_into_reuses_buffers_without_reallocating() {
        let plan = FftPlan::new(256);
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let mut scratch = Vec::new();
        let mut spec = Spectrum {
            n: 256,
            bins: Vec::new(),
        };
        plan.forward_into(&x, &mut scratch, &mut spec);
        let scratch_cap = scratch.capacity();
        let bins_cap = spec.bins.capacity();
        let scratch_ptr = scratch.as_ptr();
        let bins_ptr = spec.bins.as_ptr();
        for _ in 0..10 {
            plan.forward_into(&x, &mut scratch, &mut spec);
        }
        assert_eq!(scratch.capacity(), scratch_cap);
        assert_eq!(spec.bins.capacity(), bins_cap);
        assert_eq!(scratch.as_ptr(), scratch_ptr);
        assert_eq!(spec.bins.as_ptr(), bins_ptr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_rejects_non_power_of_two() {
        let _ = FftPlan::new(6);
    }

    #[test]
    #[should_panic(expected = "exceeds plan size")]
    fn plan_rejects_oversized_input() {
        let plan = FftPlan::new(8);
        let _ = plan.forward(&[0.0; 9]);
    }

    #[test]
    fn direct_convolution_known_answer() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, 1.0, 0.5];
        let c = convolve_direct(&a, &b);
        assert_close(&c, &[0.0, 1.0, 2.5, 4.0, 1.5], 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..73).map(|i| ((i * 13) % 7) as f64 / 6.0).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_close(&d, &f, 1e-8);
    }

    #[test]
    fn convolution_of_pmfs_sums_to_one() {
        let a = vec![0.25; 4];
        let b = vec![0.125; 8];
        let c = convolve(&a, &b);
        let total: f64 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(convolve_fft(&[], &[]).is_empty());
    }

    #[test]
    fn single_element_convolution_works() {
        // out_len = 1 exercises the minimum plan size.
        let c = convolve_fft(&[2.0], &[3.0]);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        fft_in_place(&mut data, false);
    }

    #[test]
    fn fft_output_is_nonnegative_for_pmfs() {
        // Even with floating point error, convolving PMFs must not produce
        // negative mass.
        let a = vec![1e-12; 200];
        let b = vec![1e-12; 200];
        for v in convolve_fft(&a, &b) {
            assert!(v >= 0.0);
        }
    }
}
