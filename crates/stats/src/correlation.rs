//! Pearson correlation.
//!
//! Table 1 of the paper reports the Pearson correlation coefficients of
//! end-to-end response latency with per-request service time, instantaneous
//! QPS, and queue length. The `table1_correlations` bench binary regenerates
//! that table with this function.

/// Pearson correlation coefficient between two equal-length sample vectors.
///
/// Returns `None` when the inputs are shorter than two samples, have
/// different lengths, or either series has zero variance (the coefficient is
/// undefined in those cases).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;

    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_undefined() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert!(pearson(&x, &y).is_none());
    }

    #[test]
    fn mismatched_lengths_are_undefined() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn uncorrelated_series_is_near_zero() {
        // x alternates, y is a slow ramp with a pattern orthogonal to x.
        let x: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y: Vec<f64> = (0..1000).map(|i| (i / 2) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.05, "r = {r}");
    }

    #[test]
    fn correlation_is_symmetric() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 4.0, 9.0, 1.0];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let x = [0.3, 1.8, 2.2, 0.9, 4.4, 3.1];
        let y = [1.1, 0.2, 3.3, 2.4, 0.5, 2.6];
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
