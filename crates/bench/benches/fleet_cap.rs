//! Fleet power capping at scale: a 100-server big/little Rubik fleet under
//! a finite global budget, with and without queue migration.
//!
//! This is the acceptance experiment for the fleet-management layer: the
//! `PegasusFleet` controller must *hold* the cap (max epoch-window power at
//! or under the budget), and `ThresholdMigrator` must claw back the tail
//! latency the cap costs. The fleet is deliberately heterogeneous (50 big
//! cores, 50 little cores at half capacity) behind a capacity-*blind*
//! round-robin router: the littles saturate under their equal share of the
//! stream while the bigs coast, a persistent imbalance routing alone cannot
//! fix — exactly what queue migration exists for.
//!
//! Criterion tracks the wall time of the capped runs (the hook overhead) in
//! `BENCH_controller.json`; the experiment's power/tail numbers are merged
//! into the `"fleet_cap"` section of `BENCH_cluster.json` (shared with
//! `cluster_throughput`).
//!
//! Env knobs: `RUBIK_FLEET_CAP_REQUESTS` (default 60) sets requests per
//! server; `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::cluster::{fleet_trace, FleetSpec, PegasusFleet, RoundRobin, ThresholdMigrator};
use rubik::{
    AppProfile, Cluster, ClusterOutcome, CorePowerModel, DvfsConfig, Freq, RubikConfig,
    RubikController, RunResult, SimConfig, Trace,
};

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

const FLEET: usize = 100;
const LOAD: f64 = 0.5;
/// Watts per server: far under the 6 W a busy core draws at nominal, so the
/// apportioned ceilings genuinely bind (bigs near 1.8 GHz, littles near
/// 1.0 GHz under their half-capacity share).
const BUDGET_PER_SERVER: f64 = 3.0;
/// Fleet-controller epoch; short enough that a bench-sized run spans many
/// epochs.
const EPOCH: f64 = 0.02;

fn requests_per_server() -> usize {
    std::env::var("RUBIK_FLEET_CAP_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// 50 big cores plus 50 littles (half capacity, 0.8-1.8 GHz domain).
fn fleet_spec() -> FleetSpec {
    let big = SimConfig::paper_simulated();
    let little = big.clone().with_dvfs(DvfsConfig::new(
        Freq::from_mhz(800),
        Freq::from_mhz(1800),
        200,
        Freq::from_mhz(1200),
        4e-6,
    ));
    FleetSpec::new()
        .class("big", big, 1.0, FLEET / 2)
        .class("little", little, 0.5, FLEET / 2)
}

fn run_fleet(
    spec: &FleetSpec,
    trace: &Trace,
    bound: f64,
    budget: f64,
    migrate: bool,
) -> (ClusterOutcome, Vec<RunResult>) {
    let power = CorePowerModel::haswell_like();
    let mut cluster = Cluster::from_spec(
        spec,
        // Round-robin is deliberately capacity-blind: it saturates the
        // littles, showing what migration buys when routing alone cannot
        // keep queues level.
        Box::new(RoundRobin::new()),
        |_, config| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                trace,
                256,
            )
        },
    )
    .with_power(power);
    if budget.is_finite() {
        cluster = cluster
            .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(EPOCH)));
    }
    if migrate {
        cluster = cluster.with_migrator(Box::new(ThresholdMigrator::new(2, 1).with_interval(1e-3)));
    }
    cluster.run_with_results(trace)
}

/// The largest power drawn over any epoch-aligned window of the run.
fn max_epoch_power(results: &[RunResult], duration: f64) -> f64 {
    rubik_bench::max_epoch_power(results, duration, EPOCH, &CorePowerModel::haswell_like())
}

fn bench_fleet_cap(c: &mut Criterion) {
    let profile = AppProfile::shore();
    let bound = 3.0 * profile.mean_service_time();
    let per_server = requests_per_server();
    let budget = BUDGET_PER_SERVER * FLEET as f64;
    let spec = fleet_spec();
    let trace = fleet_trace(&profile, LOAD, FLEET, per_server * FLEET, 2015);

    let mut group = c.benchmark_group("fleet_cap");
    for (label, migrate) in [("capped", false), ("capped_migrating", true)] {
        group.bench_with_input(BenchmarkId::new("mode", label), &migrate, |b, &migrate| {
            b.iter(|| {
                let (outcome, _) = run_fleet(&spec, &trace, bound, budget, migrate);
                assert_eq!(outcome.requests, trace.len());
                outcome.fleet_energy // checksum against dead-code elimination
            })
        });
    }
    group.finish();

    // One measured run per mode for the recorded experiment numbers.
    let (uncapped, _) = run_fleet(&spec, &trace, bound, f64::INFINITY, false);
    let (capped, capped_results) = run_fleet(&spec, &trace, bound, budget, false);
    let (migrating, migrating_results) = run_fleet(&spec, &trace, bound, budget, true);
    let capped_max = max_epoch_power(&capped_results, capped.duration);
    let migrating_max = max_epoch_power(&migrating_results, migrating.duration);

    let section = format!(
        "{{\n    \"servers\": {FLEET},\n    \"load_per_server\": {LOAD},\n    \
         \"requests_per_server\": {per_server},\n    \"router\": \"round-robin (capacity-blind)\",\n    \
         \"policy\": \"rubik-per-server\",\n    \"fleet\": \"50 big + 50 little (cap 0.5)\",\n    \"budget_w\": {budget:.1},\n    \
         \"epoch_s\": {EPOCH},\n    \
         \"uncapped\": {{\"p95_ms\": {:.4}, \"mean_power_w\": {:.2}}},\n    \
         \"capped\": {{\"p95_ms\": {:.4}, \"mean_power_w\": {:.2}, \
         \"max_epoch_power_w\": {capped_max:.2}}},\n    \
         \"capped_migrating\": {{\"p95_ms\": {:.4}, \"mean_power_w\": {:.2}, \
         \"max_epoch_power_w\": {migrating_max:.2}, \"migrated_requests\": {}}},\n    \
         \"cap_held\": {},\n    \"migration_improves_p95\": {}\n  }}",
        uncapped.tail_latency * 1e3,
        uncapped.fleet_power,
        capped.tail_latency * 1e3,
        capped.fleet_power,
        migrating.tail_latency * 1e3,
        migrating.fleet_power,
        migrating.migrated_requests,
        capped_max <= budget && migrating_max <= budget,
        migrating.tail_latency < capped.tail_latency,
    );
    match rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_cap", &section) {
        Ok(()) => println!("fleet_cap: merged into {CLUSTER_JSON}"),
        Err(e) => eprintln!("fleet_cap: could not write {CLUSTER_JSON}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_cap
}
criterion_main!(benches);
