//! The DVFS controller interface.
//!
//! A [`DvfsPolicy`] is consulted by the simulation engine
//! ([`ServerSim`](crate::server::ServerSim), or its closed-loop wrapper
//! [`Server::run`](crate::server::Server::run)) on every request arrival,
//! every request completion, and on a periodic tick (Rubik uses the tick to
//! rebuild its target tail tables every 100 ms and to run its feedback
//! controller). The policy sees the current [`ServerState`] — the queue
//! contents, the progress of the request in service, and the current
//! frequency — and may request a frequency change.
//!
//! A policy never observes *how* the simulation is driven: the callbacks and
//! their order are identical whether the whole trace was offered up front or
//! arrivals trickle in one [`ServerSim::offer`](crate::server::ServerSim)
//! at a time (the step-vs-run equivalence suite pins this bitwise). Policies
//! therefore port unchanged from single-core replay to the open-loop
//! multi-server drivers in `rubik-cluster`, which own one policy instance
//! per simulated server.
//!
//! The `&ServerState` handed to each callback is a scratch buffer the
//! simulator refreshes in place between events (so the event loop performs
//! no per-event allocation — see `rubik_sim::server`); it is valid for the
//! duration of the callback, and a policy that wants to keep history must
//! clone what it needs.
//!
//! `&mut P` and `Box<P>` forward the trait (see the impls below), so engine
//! types can own a boxed policy (`ServerSim<Box<dyn DvfsPolicy>>`, the
//! default) or borrow one (`ServerSim<&mut dyn DvfsPolicy>`, how
//! `Server::run` drives a caller-owned policy).

use crate::freq::Freq;
use crate::request::RequestRecord;

/// Progress of the request currently in service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InServiceView {
    /// Request identifier.
    pub id: u64,
    /// Arrival time of the request.
    pub arrival: f64,
    /// Compute cycles already executed (the ω of paper Sec. 4.1).
    pub elapsed_compute_cycles: f64,
    /// Memory-bound time already incurred.
    pub elapsed_membound_time: f64,
    /// Oracular total compute cycles of the request. Only oracle baselines
    /// may read this; Rubik must not.
    pub oracle_compute_cycles: f64,
    /// Oracular total memory-bound time of the request. Only oracle baselines
    /// may read this; Rubik must not.
    pub oracle_membound_time: f64,
    /// Application-level class (available to schemes that use hints, such as
    /// Adrenaline).
    pub class: u32,
}

/// A request waiting in the queue, as visible to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedView {
    /// Request identifier.
    pub id: u64,
    /// Arrival time of the request.
    pub arrival: f64,
    /// Oracular compute cycles (see [`InServiceView::oracle_compute_cycles`]).
    pub oracle_compute_cycles: f64,
    /// Oracular memory-bound time.
    pub oracle_membound_time: f64,
    /// Application-level class.
    pub class: u32,
}

/// Snapshot of the server handed to a policy at each decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// Current simulation time in seconds.
    pub now: f64,
    /// Frequency currently in effect.
    pub current_freq: Freq,
    /// Frequency most recently requested (it may not have taken effect yet if
    /// a V/F transition is in flight).
    pub target_freq: Freq,
    /// The request in service, if any.
    pub in_service: Option<InServiceView>,
    /// Queued requests in FIFO order (not including the one in service).
    pub queued: Vec<QueuedView>,
}

impl ServerState {
    /// Number of requests in the system (in service + queued).
    pub fn pending_requests(&self) -> usize {
        self.queued.len() + usize::from(self.in_service.is_some())
    }

    /// Whether the server is idle.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_none() && self.queued.is_empty()
    }
}

/// A policy's decision at a callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyDecision {
    /// Keep the current target frequency.
    #[default]
    Keep,
    /// Request a transition to the given frequency (takes effect after the
    /// configured V/F transition latency).
    SetFrequency(Freq),
}

impl PolicyDecision {
    /// Convenience constructor: `Some(f)` becomes `SetFrequency(f)`.
    pub fn from_option(f: Option<Freq>) -> Self {
        match f {
            Some(f) => PolicyDecision::SetFrequency(f),
            None => PolicyDecision::Keep,
        }
    }
}

/// A fine-grain DVFS controller.
///
/// Implementations include the Rubik controller and the baselines
/// (fixed-frequency, StaticOracle, AdrenalineOracle, ...) in `rubik-core`.
pub trait DvfsPolicy {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Called when a request arrives (after it has been added to the state).
    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision;

    /// Called when a request completes (after it has been removed from the
    /// state). `record` describes the completed request, including its true
    /// compute and memory demand — this is how Rubik profiles service
    /// distributions online.
    fn on_completion(&mut self, state: &ServerState, record: &RequestRecord) -> PolicyDecision;

    /// Called on the periodic tick (default: no action).
    fn on_tick(&mut self, state: &ServerState) -> PolicyDecision {
        let _ = state;
        PolicyDecision::Keep
    }

    /// The frequency the core should use while idle (default: keep the last
    /// target; the power model charges idle/sleep power regardless).
    fn idle_frequency(&self) -> Option<Freq> {
        None
    }

    /// The policy's tail-latency objective in seconds, if it has one.
    ///
    /// Fleet-level controllers (`rubik-cluster`) read this once at run start
    /// so mid-run retargeting can scale *relative to the original* objective
    /// instead of compounding scale factors. Default: `None` (the policy has
    /// no latency objective, e.g. a fixed-frequency baseline).
    fn latency_bound(&self) -> Option<f64> {
        None
    }

    /// Retargets the policy's tail-latency objective mid-run. Returns `true`
    /// if the policy applied the new bound, `false` if it has no bound to
    /// mutate (the default). Implementations take effect from the next
    /// decision; already-issued frequency requests are not revisited.
    fn set_latency_bound(&mut self, bound: f64) -> bool {
        let _ = bound;
        false
    }
}

impl<P: DvfsPolicy + ?Sized> DvfsPolicy for &mut P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        (**self).on_arrival(state)
    }

    fn on_completion(&mut self, state: &ServerState, record: &RequestRecord) -> PolicyDecision {
        (**self).on_completion(state, record)
    }

    fn on_tick(&mut self, state: &ServerState) -> PolicyDecision {
        (**self).on_tick(state)
    }

    fn idle_frequency(&self) -> Option<Freq> {
        (**self).idle_frequency()
    }

    fn latency_bound(&self) -> Option<f64> {
        (**self).latency_bound()
    }

    fn set_latency_bound(&mut self, bound: f64) -> bool {
        (**self).set_latency_bound(bound)
    }
}

impl<P: DvfsPolicy + ?Sized> DvfsPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        (**self).on_arrival(state)
    }

    fn on_completion(&mut self, state: &ServerState, record: &RequestRecord) -> PolicyDecision {
        (**self).on_completion(state, record)
    }

    fn on_tick(&mut self, state: &ServerState) -> PolicyDecision {
        (**self).on_tick(state)
    }

    fn idle_frequency(&self) -> Option<Freq> {
        (**self).idle_frequency()
    }

    fn latency_bound(&self) -> Option<f64> {
        (**self).latency_bound()
    }

    fn set_latency_bound(&mut self, bound: f64) -> bool {
        (**self).set_latency_bound(bound)
    }
}

/// The trivial baseline: always run at one fixed frequency (the paper's
/// `Fixed-frequency` scheme, nominal 2.4 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedFrequencyPolicy {
    freq: Freq,
}

impl FixedFrequencyPolicy {
    /// Creates a policy pinned to `freq`.
    pub fn new(freq: Freq) -> Self {
        Self { freq }
    }

    /// The pinned frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }
}

impl DvfsPolicy for FixedFrequencyPolicy {
    fn name(&self) -> &str {
        "fixed-frequency"
    }

    fn on_arrival(&mut self, state: &ServerState) -> PolicyDecision {
        if state.current_freq == self.freq && state.target_freq == self.freq {
            PolicyDecision::Keep
        } else {
            PolicyDecision::SetFrequency(self.freq)
        }
    }

    fn on_completion(&mut self, _state: &ServerState, _record: &RequestRecord) -> PolicyDecision {
        PolicyDecision::Keep
    }

    fn idle_frequency(&self) -> Option<Freq> {
        Some(self.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state(freq: Freq) -> ServerState {
        ServerState {
            now: 0.0,
            current_freq: freq,
            target_freq: freq,
            in_service: None,
            queued: Vec::new(),
        }
    }

    #[test]
    fn server_state_counts_pending() {
        let mut s = empty_state(Freq::from_mhz(2400));
        assert!(s.is_idle());
        assert_eq!(s.pending_requests(), 0);
        s.in_service = Some(InServiceView {
            id: 0,
            arrival: 0.0,
            elapsed_compute_cycles: 0.0,
            elapsed_membound_time: 0.0,
            oracle_compute_cycles: 1.0,
            oracle_membound_time: 0.0,
            class: 0,
        });
        s.queued.push(QueuedView {
            id: 1,
            arrival: 0.1,
            oracle_compute_cycles: 1.0,
            oracle_membound_time: 0.0,
            class: 0,
        });
        assert!(!s.is_idle());
        assert_eq!(s.pending_requests(), 2);
    }

    #[test]
    fn fixed_policy_requests_its_frequency_once() {
        let f = Freq::from_mhz(1600);
        let mut p = FixedFrequencyPolicy::new(f);
        assert_eq!(p.name(), "fixed-frequency");
        // When the core is at another frequency, request the pinned one.
        let state = empty_state(Freq::from_mhz(2400));
        assert_eq!(p.on_arrival(&state), PolicyDecision::SetFrequency(f));
        // Once at the pinned frequency, keep it.
        let state = empty_state(f);
        assert_eq!(p.on_arrival(&state), PolicyDecision::Keep);
        assert_eq!(p.idle_frequency(), Some(f));
    }

    #[test]
    fn decision_from_option() {
        let f = Freq::from_mhz(800);
        assert_eq!(
            PolicyDecision::from_option(Some(f)),
            PolicyDecision::SetFrequency(f)
        );
        assert_eq!(PolicyDecision::from_option(None), PolicyDecision::Keep);
    }
}
