//! Random sampling helpers.
//!
//! The workload models draw request inter-arrival times (exponential, i.e. a
//! Markov input process, paper Sec. 5.1) and per-request service demands from
//! parametric distributions. [`ServiceSampler`] covers the distribution
//! shapes needed to mimic the five latency-critical applications, and
//! [`DeterministicRng`] pins the RNG seed so every experiment is
//! reproducible.
//!
//! The generator is a self-contained xoshiro256++ (seeded through SplitMix64)
//! rather than an external RNG crate: the build environment is offline, and a
//! fixed in-tree generator additionally guarantees that experiment streams
//! never shift under a dependency upgrade. Distribution draws use inverse
//! transforms (with the crate's high-precision [`gaussian_quantile`] for
//! normal/log-normal) and rejection-inversion for Zipf.
//!
//! [`gaussian_quantile`]: crate::gaussian::gaussian_quantile

use serde::{Deserialize, Serialize};

/// A seeded pseudo-random number generator with convenience draws for the
/// distributions used across the reproduction.
///
/// A newtype over the raw xoshiro256++ state keeps the choice of generator
/// out of the public API and guarantees every consumer seeds explicitly.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, the recommended seeding procedure
        // for xoshiro generators (it cannot produce the all-zero state).
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits, the standard u64 → f64 conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "range must be non-empty");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer draw in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Lemire's multiply-shift; the modulo bias is at most n / 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Exponential draw with the given `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; uniform() < 1, so the log argument is positive.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal draw via the inverse CDF.
    fn standard_normal(&mut self) -> f64 {
        crate::gaussian::gaussian_quantile(self.uniform().clamp(1e-15, 1.0 - 1e-15))
    }

    /// Log-normal draw parameterized by the *target* mean and coefficient of
    /// variation of the resulting distribution (not the underlying normal).
    pub fn lognormal(&mut self, mean: f64, cov: f64) -> f64 {
        assert!(mean > 0.0 && cov >= 0.0);
        if cov == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Pareto draw with the given scale (minimum value) and shape.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0);
        scale * (1.0 - self.uniform()).powf(-1.0 / shape)
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s`.
    ///
    /// Rejection sampling against the continuous envelope `x^-s`: rank 1 is
    /// covered by a unit atom and rank `k ≥ 2` by the integral of the
    /// envelope over `[k-1, k]`, which always dominates `k^-s`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0 && s > 0.0);
        if n == 1 {
            return 1;
        }
        // H(x) = ∫₁ˣ t^-s dt and its inverse.
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |y: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                y.exp()
            } else {
                (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        let total = 1.0 + h(n as f64);
        loop {
            let u = self.uniform() * total;
            if u < 1.0 {
                return 1;
            }
            let x = h_inv(u - 1.0);
            let k = (x as u64 + 1).min(n);
            // Accept with probability k^-s / x^-s (≤ 1 because x ≤ k).
            if self.uniform() * x.powf(-s) <= (k as f64).powf(-s) {
                return k;
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Normal draw with given mean and standard deviation, truncated at zero.
    pub fn normal_nonneg(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0);
        (mean + std * self.standard_normal()).max(0.0)
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated server its own stream.
    pub fn fork(&mut self) -> DeterministicRng {
        DeterministicRng::new(self.next_u64())
    }
}

/// Parametric per-request service-demand sampler.
///
/// The unit is left to the caller (the workload models use cycles for compute
/// demand and seconds for memory-bound time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceSampler {
    /// Every request needs exactly this much work.
    Constant(f64),
    /// Exponentially distributed work with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal work with the given mean and coefficient of variation.
    LogNormal {
        /// Mean of the distribution.
        mean: f64,
        /// Coefficient of variation (stddev / mean).
        cov: f64,
    },
    /// Pareto (heavy-tailed) work.
    Pareto {
        /// Minimum value (scale).
        scale: f64,
        /// Tail exponent; smaller is heavier.
        shape: f64,
    },
    /// Two-class (short/long) bimodal work, as used to mimic applications
    /// with distinct request classes (the situation Adrenaline exploits).
    Bimodal {
        /// Work of a short request.
        short: f64,
        /// Work of a long request.
        long: f64,
        /// Probability that a request is long.
        long_fraction: f64,
    },
    /// Uniform work in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl ServiceSampler {
    /// Draws one service demand.
    pub fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        match *self {
            ServiceSampler::Constant(v) => v,
            ServiceSampler::Exponential { mean } => rng.exponential(mean),
            ServiceSampler::LogNormal { mean, cov } => rng.lognormal(mean, cov),
            ServiceSampler::Pareto { scale, shape } => rng.pareto(scale, shape),
            ServiceSampler::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                if rng.bernoulli(long_fraction) {
                    long
                } else {
                    short
                }
            }
            ServiceSampler::Uniform { lo, hi } => rng.uniform_range(lo, hi),
        }
    }

    /// Analytical mean of the sampler, where tractable.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceSampler::Constant(v) => v,
            ServiceSampler::Exponential { mean } => mean,
            ServiceSampler::LogNormal { mean, .. } => mean,
            ServiceSampler::Pareto { scale, shape } => {
                if shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            ServiceSampler::Bimodal {
                short,
                long,
                long_fraction,
            } => short * (1.0 - long_fraction) + long * long_fraction,
            ServiceSampler::Uniform { lo, hi } => (lo + hi) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_centered() {
        let mut rng = DeterministicRng::new(13);
        let s: OnlineStats = (0..100_000).map(|_| rng.uniform()).collect();
        assert!(s.min().unwrap() >= 0.0);
        assert!(s.max().unwrap() < 1.0);
        assert!((s.mean() - 0.5).abs() < 0.01);
    }

    #[test]
    fn index_covers_the_range_uniformly() {
        let mut rng = DeterministicRng::new(29);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.index(8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts: {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = DeterministicRng::new(7);
        let s: OnlineStats = (0..50_000).map(|_| rng.exponential(3.0)).collect();
        assert!((s.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_mean_and_cov_converge() {
        let mut rng = DeterministicRng::new(11);
        let s: OnlineStats = (0..100_000).map(|_| rng.lognormal(2.0, 0.5)).collect();
        assert!((s.mean() - 2.0).abs() < 0.05, "mean = {}", s.mean());
        assert!((s.cov() - 0.5).abs() < 0.05, "cov = {}", s.cov());
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let mut rng = DeterministicRng::new(19);
        let sampler = ServiceSampler::Pareto {
            scale: 2.0,
            shape: 3.0,
        };
        let s: OnlineStats = (0..100_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!(s.min().unwrap() >= 2.0);
        assert!((s.mean() - sampler.mean()).abs() < 0.05 * sampler.mean());
    }

    #[test]
    fn zipf_favors_low_ranks() {
        let mut rng = DeterministicRng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let r = rng.zipf(10, 1.0) as usize;
            counts[r - 1] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn zipf_matches_analytical_rank_probabilities() {
        let mut rng = DeterministicRng::new(31);
        let (n, s, draws) = (20u64, 1.3f64, 200_000usize);
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut counts = vec![0u32; n as usize];
        for _ in 0..draws {
            counts[rng.zipf(n, s) as usize - 1] += 1;
        }
        for k in 1..=n as usize {
            let expect = (k as f64).powf(-s) / z;
            let got = counts[k - 1] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01 + 0.05 * expect,
                "rank {k}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn samplers_are_nonnegative_and_match_mean() {
        let mut rng = DeterministicRng::new(5);
        let samplers = [
            ServiceSampler::Constant(4.0),
            ServiceSampler::Exponential { mean: 4.0 },
            ServiceSampler::LogNormal {
                mean: 4.0,
                cov: 0.3,
            },
            ServiceSampler::Bimodal {
                short: 2.0,
                long: 10.0,
                long_fraction: 0.25,
            },
            ServiceSampler::Uniform { lo: 2.0, hi: 6.0 },
        ];
        for s in samplers {
            let stats: OnlineStats = (0..50_000).map(|_| s.sample(&mut rng)).collect();
            assert!(stats.min().unwrap() >= 0.0);
            assert!(
                (stats.mean() - s.mean()).abs() < 0.15 * s.mean(),
                "{s:?}: mean {} vs {}",
                stats.mean(),
                s.mean()
            );
        }
    }

    #[test]
    fn bimodal_fraction_is_respected() {
        let mut rng = DeterministicRng::new(17);
        let s = ServiceSampler::Bimodal {
            short: 1.0,
            long: 100.0,
            long_fraction: 0.1,
        };
        let longs = (0..20_000).filter(|_| s.sample(&mut rng) > 50.0).count();
        let frac = longs as f64 / 20_000.0;
        assert!((frac - 0.1).abs() < 0.02);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DeterministicRng::new(99);
        let mut child = a.fork();
        // The child's stream differs from the parent's subsequent draws.
        let same = (0..100).filter(|_| a.uniform() == child.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn normal_nonneg_truncates() {
        let mut rng = DeterministicRng::new(23);
        for _ in 0..1000 {
            assert!(rng.normal_nonneg(0.1, 5.0) >= 0.0);
        }
    }
}
