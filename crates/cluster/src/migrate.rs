//! Queue migration: rebalancing admitted-but-waiting requests mid-run.
//!
//! Routing decides where a request *starts*; it cannot undo a decision that
//! turned out badly — a server that drew several long requests in a row
//! builds a backlog that its neighbours could absorb. A [`Migrator`] is the
//! [`Cluster`](crate::Cluster) driver's rebalance hook: on its own periodic
//! clock (independent of arrivals, so a drained stream still rebalances its
//! trailing backlog) it observes the fleet's queue depths and plans
//! [`Migration`]s. The driver executes each plan between events by
//! [`steal_queued`](rubik_sim::ServerSim::steal_queued)-ing from the donor's
//! FIFO tail and [`inject`](rubik_sim::ServerSim::inject)-ing into the
//! receiver with the original arrival time preserved, so end-to-end latency
//! accounting spans both servers and no request is ever lost or duplicated
//! (property-tested in `tests/fleet_properties.rs`).
//!
//! [`ThresholdMigrator`] is the first policy: a queue-imbalance trigger with
//! hysteresis, so steady small imbalances do not cause migration churn.

use crate::router::ServerView;

/// One planned move: `count` requests from the back of `from`'s queue to
/// `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Donor server index.
    pub from: usize,
    /// Receiver server index.
    pub to: usize,
    /// Number of queued requests to move (the driver moves fewer if the
    /// donor's queue is shorter by execution time).
    pub count: usize,
}

/// A rebalancing policy for a [`Cluster`](crate::Cluster).
pub trait Migrator {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Seconds between rebalance checks (the driver's migration clock).
    fn interval(&self) -> f64;

    /// Observes the fleet between events and appends planned moves to
    /// `moves` (cleared by the driver beforehand). Plans must be
    /// deterministic functions of the observed views.
    fn plan(&mut self, now: f64, servers: &[ServerView], moves: &mut Vec<Migration>);
}

/// Queue-imbalance migration with hysteresis.
///
/// Let `gap` be the difference between the deepest FIFO queue and the
/// shallowest *eligible* one (zero-capacity servers are never receivers —
/// the router contract says they get no work, and migration honours it).
/// The migrator *arms* when `gap >= trigger` and then keeps rebalancing —
/// repeatedly moving half the gap between the current extremes — until
/// `gap <= release`, where it disarms. `release < trigger` gives the
/// hysteresis band: a fleet hovering just below the trigger never
/// migrates, and once armed the migrator fully levels the queues instead
/// of oscillating at the trigger edge.
///
/// A gap of 1 cannot be improved by moving a whole request (the move just
/// swaps which server is deeper), so the effective release floor is 1
/// regardless of the configured `release`.
#[derive(Debug, Clone)]
pub struct ThresholdMigrator {
    trigger: usize,
    release: usize,
    interval: f64,
    max_moves: usize,
    armed: bool,
}

impl ThresholdMigrator {
    /// A migrator that arms at a queue gap of `trigger` and disarms at
    /// `release`.
    ///
    /// # Panics
    ///
    /// Panics if `trigger == 0` or `release >= trigger`.
    pub fn new(trigger: usize, release: usize) -> Self {
        assert!(trigger > 0, "trigger must be positive");
        assert!(
            release < trigger,
            "hysteresis requires release ({release}) < trigger ({trigger})"
        );
        Self {
            trigger,
            release,
            interval: 0.01,
            max_moves: 64,
            armed: false,
        }
    }

    /// Overrides the rebalance interval (default 10 ms).
    ///
    /// # Panics
    ///
    /// Panics if `interval <= 0`.
    pub fn with_interval(mut self, interval: f64) -> Self {
        assert!(interval > 0.0, "interval must be positive");
        self.interval = interval;
        self
    }

    /// Caps the number of requests moved per rebalance step (default 64).
    ///
    /// # Panics
    ///
    /// Panics if `max_moves == 0`.
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        assert!(max_moves > 0, "max_moves must be positive");
        self.max_moves = max_moves;
        self
    }

    /// Whether the migrator is currently armed (inside the hysteresis band).
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Default for ThresholdMigrator {
    /// Arms at a gap of 4 queued requests, disarms at 1, checks every 10 ms.
    fn default() -> Self {
        Self::new(4, 1)
    }
}

impl Migrator for ThresholdMigrator {
    fn name(&self) -> &str {
        "threshold"
    }

    fn interval(&self) -> f64 {
        self.interval
    }

    fn plan(&mut self, _now: f64, servers: &[ServerView], moves: &mut Vec<Migration>) {
        if servers.len() < 2 {
            return;
        }
        let mut queues: Vec<usize> = servers.iter().map(|v| v.queued).collect();
        let mut budget = self.max_moves;
        // Moving a request between queues whose depths differ by 1 merely
        // swaps the extremes (and would ping-pong forever), so level only
        // down to a gap of 1.
        let release = self.release.max(1);
        loop {
            // Extremes with deterministic (lowest-index) tie-breaks. Only
            // positive-capacity, healthy servers may receive migrated work —
            // the zero-capacity contract ("route nothing here") binds the
            // migrator too, and handing rescued requests to a down or
            // straggling server would just strand them again. Down servers
            // may still *donate*: draining a dead queue is the point.
            let Some((deepest, &maxq)) = queues
                .iter()
                .enumerate()
                .max_by_key(|&(i, &q)| (q, std::cmp::Reverse(i)))
            else {
                return; // degenerate (empty) view set: nothing to plan
            };
            let Some((shallowest, &minq)) = queues
                .iter()
                .enumerate()
                .filter(|&(i, _)| {
                    servers[i].capacity > 0.0 && servers[i].health.routable() && i != deepest
                })
                .min_by_key(|&(i, &q)| (q, i))
            else {
                return; // no eligible receiver
            };
            let gap = maxq.saturating_sub(minq);
            if self.armed {
                if gap <= release {
                    self.armed = false;
                    break;
                }
            } else if gap >= self.trigger && gap > release {
                self.armed = true;
            } else {
                break;
            }
            if budget == 0 {
                break; // stay armed: the next check continues levelling
            }
            let count = (gap / 2).max(1).min(budget);
            moves.push(Migration {
                from: deepest,
                to: shallowest,
                count,
            });
            queues[deepest] -= count;
            queues[shallowest] += count;
            budget -= count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServerHealth;
    use rubik_sim::Freq;

    fn views(queues: &[usize]) -> Vec<ServerView> {
        queues
            .iter()
            .enumerate()
            .map(|(index, &queued)| ServerView {
                index,
                in_flight: queued + 1,
                admitted: queued + 1,
                queued,
                current_freq: Freq::from_mhz(2400),
                target_freq: Freq::from_mhz(2400),
                busy: true,
                capacity: 1.0,
                class: 0,
                health: ServerHealth::Up,
            })
            .collect()
    }

    fn apply(queues: &mut [usize], moves: &[Migration]) {
        for m in moves {
            queues[m.from] -= m.count;
            queues[m.to] += m.count;
        }
    }

    #[test]
    fn below_the_trigger_nothing_moves() {
        let mut m = ThresholdMigrator::new(4, 1);
        let mut moves = Vec::new();
        m.plan(0.0, &views(&[3, 0, 2]), &mut moves);
        assert!(moves.is_empty());
        assert!(!m.is_armed());
    }

    #[test]
    fn at_the_trigger_queues_are_levelled_to_the_release_gap() {
        let mut m = ThresholdMigrator::new(4, 1);
        let mut moves = Vec::new();
        let mut queues = [8usize, 0, 2];
        m.plan(0.0, &views(&queues), &mut moves);
        assert!(!moves.is_empty());
        apply(&mut queues, &moves);
        let gap = queues.iter().max().unwrap() - queues.iter().min().unwrap();
        assert!(gap <= 1, "post-plan queues {queues:?}");
        // Conservation of planned work.
        assert_eq!(queues.iter().sum::<usize>(), 10);
        // Fully levelled: the migrator disarmed.
        assert!(!m.is_armed());
    }

    #[test]
    fn hysteresis_keeps_an_armed_migrator_levelling_below_the_trigger() {
        let mut m = ThresholdMigrator::new(4, 1);
        let mut moves = Vec::new();
        // Arm it, but cap the per-step budget so it cannot finish.
        m = m.with_max_moves(1);
        let mut queues = [6usize, 0];
        m.plan(0.0, &views(&queues), &mut moves);
        apply(&mut queues, &moves);
        assert!(m.is_armed(), "budget exhausted mid-levelling stays armed");
        // Gap is now 4 - ... below trigger is irrelevant: armed means the
        // next check keeps going even though gap < trigger.
        moves.clear();
        queues = [3, 0]; // gap 3 < trigger 4
        m.plan(0.01, &views(&queues), &mut moves);
        assert!(!moves.is_empty(), "armed migrator levels sub-trigger gaps");
        apply(&mut queues, &moves);
        // And a disarmed one ignores the same gap.
        let mut fresh = ThresholdMigrator::new(4, 1);
        moves.clear();
        fresh.plan(0.0, &views(&[3, 0]), &mut moves);
        assert!(moves.is_empty());
    }

    #[test]
    fn moves_respect_the_per_step_budget() {
        let mut m = ThresholdMigrator::new(2, 0).with_max_moves(3);
        let mut moves = Vec::new();
        m.plan(0.0, &views(&[40, 0, 0, 0]), &mut moves);
        let total: usize = moves.iter().map(|mv| mv.count).sum();
        assert!(total <= 3);
    }

    #[test]
    fn a_gap_of_one_is_never_churned_even_with_release_zero() {
        // Regression: moving a request across a gap of 1 just swaps the
        // extremes; with release = 0 the old planner ping-ponged one
        // request until the whole move budget burned, every interval.
        let mut m = ThresholdMigrator::new(2, 0);
        let mut moves = Vec::new();
        m.plan(0.0, &views(&[3, 2, 2]), &mut moves);
        assert!(moves.is_empty(), "gap 1 is unimprovable: {moves:?}");
        // Once levelling brings the gap to 1, the plan stops (and disarms)
        // instead of oscillating.
        let mut queues = [4usize, 2, 2];
        m.plan(0.0, &views(&queues), &mut moves);
        apply(&mut queues, &moves);
        let total: usize = moves.iter().map(|mv| mv.count).sum();
        assert!(total <= 2, "levelling [4,2,2] needs at most 2 moves");
        assert!(!m.is_armed());
        let gap = queues.iter().max().unwrap() - queues.iter().min().unwrap();
        assert!(gap <= 1);
    }

    #[test]
    fn zero_capacity_servers_never_receive_migrated_work() {
        let mut m = ThresholdMigrator::new(2, 1);
        let mut moves = Vec::new();
        // Server 1 has the shallowest queue but zero capacity: the planner
        // must pick server 2 (next-shallowest with capacity) instead.
        let mut servers = views(&[8, 0, 2]);
        servers[1].capacity = 0.0;
        m.plan(0.0, &servers, &mut moves);
        assert!(!moves.is_empty());
        for mv in &moves {
            assert_ne!(mv.to, 1, "zero-capacity server received work: {mv:?}");
        }
        // With no eligible receiver at all, nothing moves.
        let mut servers = views(&[8, 0]);
        servers[1].capacity = 0.0;
        moves.clear();
        let mut fresh = ThresholdMigrator::new(2, 1);
        fresh.plan(0.0, &servers, &mut moves);
        assert!(moves.is_empty());
    }

    #[test]
    fn down_servers_never_receive_but_may_donate() {
        let mut m = ThresholdMigrator::new(2, 1);
        let mut moves = Vec::new();
        // Server 1 is down with the shallowest queue: the planner must send
        // work to server 2 instead — and may drain server 0's dead backlog.
        let mut servers = views(&[8, 0, 2]);
        servers[1].health = ServerHealth::Down;
        servers[0].health = ServerHealth::Down;
        m.plan(0.0, &servers, &mut moves);
        assert!(!moves.is_empty(), "a dead backlog is still drained");
        for mv in &moves {
            assert_eq!(mv.to, 2, "only the healthy server receives: {mv:?}");
        }
    }

    #[test]
    fn all_down_fleets_plan_no_moves() {
        let mut m = ThresholdMigrator::new(2, 1);
        let mut moves = Vec::new();
        let mut servers = views(&[9, 0, 3]);
        for v in &mut servers {
            v.health = ServerHealth::Down;
        }
        m.plan(0.0, &servers, &mut moves);
        assert!(moves.is_empty(), "no receiver exists: {moves:?}");

        // Same for an all-zero-capacity fleet (the PR-5 rule), combined.
        let mut servers = views(&[9, 0, 3]);
        for v in &mut servers {
            v.capacity = 0.0;
        }
        moves.clear();
        let mut fresh = ThresholdMigrator::new(2, 1);
        fresh.plan(0.0, &servers, &mut moves);
        assert!(moves.is_empty());
    }

    #[test]
    fn straggling_servers_are_not_receivers() {
        let mut m = ThresholdMigrator::new(2, 1);
        let mut moves = Vec::new();
        let mut servers = views(&[8, 0, 2]);
        servers[1].health = ServerHealth::Straggling;
        m.plan(0.0, &servers, &mut moves);
        assert!(!moves.is_empty());
        for mv in &moves {
            assert_ne!(mv.to, 1, "straggler received migrated work: {mv:?}");
        }
    }

    #[test]
    fn single_server_fleets_never_migrate() {
        let mut m = ThresholdMigrator::default();
        let mut moves = Vec::new();
        m.plan(0.0, &views(&[50]), &mut moves);
        assert!(moves.is_empty());
    }

    #[test]
    #[should_panic(expected = "release")]
    fn rejects_inverted_hysteresis() {
        let _ = ThresholdMigrator::new(2, 2);
    }
}
