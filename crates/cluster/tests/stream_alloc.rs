//! `Cluster::run_streamed` holds memory at O(in-flight), not O(requests):
//! arrivals are pulled one at a time from the source and handed straight to
//! the per-server simulators, so no request backlog is ever materialized.
//!
//! A counting global allocator pins that directly (the cluster-level twin of
//! `rubik-sim`'s `event_loop_alloc` test): after a warm-up run has faulted in
//! code paths and sized allocator pools, an 8x-longer streamed run may only
//! pay for run-scoped containers — per-server record vectors and segment
//! timelines that amortize to O(log n) reallocations — while the per-arrival
//! path (source pull, route, offer, schedule) stays allocation-free. The
//! allocation count of the long run must therefore stay within a fixed slack
//! of the short run instead of scaling with the request count.
//!
//! The same contract is pinned with a fault layer attached (hedging +
//! deadlines + timeouts): the hedge trigger tracker is a bounded rolling
//! window, so completions past the window's capacity cost zero allocations —
//! this is the regression test for the unbounded sorted-`Vec` tracker, whose
//! per-completion `insert` made allocations (and work) scale with the total
//! completion count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rubik_cluster::{Cluster, JoinShortestQueue, RequestPolicy};
use rubik_load::PoissonSource;
use rubik_sim::{FixedFrequencyPolicy, SimConfig};
use rubik_workloads::AppProfile;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const FLEET: usize = 4;

fn cluster(config: &SimConfig) -> Cluster<FixedFrequencyPolicy> {
    Cluster::new(
        config.clone(),
        FLEET,
        Box::new(JoinShortestQueue::new()),
        |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
    )
}

fn source(requests: usize) -> PoissonSource {
    PoissonSource::new(AppProfile::masstree(), 0.5 * FLEET as f64, requests, 42)
}

fn allocations_for_streamed_run(requests: usize) -> u64 {
    let config = SimConfig::paper_simulated();
    let cluster = cluster(&config);
    let source = source(requests);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let outcome = cluster
        .run_streamed(source)
        .expect("a Poisson source is time-ordered");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(outcome.requests, requests);
    after - before
}

/// Same streamed run, but with the full fault layer engaged: hedging (with
/// a small rolling trigger window so the 4096-request run evicts heavily),
/// per-request deadlines, and attempt timeouts with retries.
fn allocations_for_hedged_run(requests: usize) -> u64 {
    let config = SimConfig::paper_simulated();
    let mean = AppProfile::masstree().mean_service_time();
    let policy = RequestPolicy::new()
        .with_hedging(0.95, 0.5 * mean)
        .with_hedge_window(128)
        .with_deadline(64.0 * mean)
        .with_timeout(16.0 * mean)
        .with_retries(2, mean, 8.0 * mean)
        .with_jitter_seed(7);
    let cluster = cluster(&config).with_request_policy(policy);
    let source = source(requests);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let outcome = cluster
        .run_streamed(source)
        .expect("a Poisson source is time-ordered");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(outcome.requests, requests);
    after - before
}

#[test]
fn run_streamed_allocations_do_not_scale_with_request_count() {
    // Warm-up run (fills allocator pools, faults in code paths).
    let _ = allocations_for_streamed_run(512);

    let small = allocations_for_streamed_run(512);
    let large = allocations_for_streamed_run(4096);

    // 8x the requests must not cost 8x the allocations: each arrival is
    // pulled from the source, routed, and offered without allocating, so the
    // only growth is the amortized doubling of per-server record vectors and
    // segment timelines — O(fleet * log n) reallocations in total.
    assert!(
        large < small + 160,
        "run_streamed allocations grew with request count: {small} -> {large}"
    );
}

#[test]
fn hedged_streamed_allocations_do_not_scale_with_request_count() {
    // Warm-up run (fills allocator pools, faults in code paths).
    let _ = allocations_for_hedged_run(512);

    let small = allocations_for_hedged_run(512);
    let large = allocations_for_hedged_run(4096);

    // With hedging + deadlines + timeouts enabled, steady state may only
    // allocate for the in-flight tracking maps at their high-water mark and
    // the bounded hedge window — none of which grow with the stream length.
    // The old unbounded latency tracker failed exactly this bound: its
    // sorted Vec doubled all the way to O(completions).
    assert!(
        large < small + 160,
        "hedged run_streamed allocations grew with request count: {small} -> {large}"
    );
}
