//! Fig. 6: core power savings of StaticOracle, AdrenalineOracle and Rubik
//! over the fixed-frequency baseline, for each application at 30/40/50% load.

use rubik::AppProfile;
use rubik_bench::{print_header, Harness};

fn main() {
    let harness = Harness::new();
    println!("# Fig. 6: core power savings (%) over fixed 2.4 GHz");
    print_header(&["app", "load", "static_oracle", "adrenaline_oracle", "rubik"]);

    let mut totals = [0.0f64; 3];
    let mut count = 0.0;
    for (i, app) in AppProfile::all().iter().enumerate() {
        let bound = harness.latency_bound(app);
        for (j, load) in [0.3, 0.4, 0.5].into_iter().enumerate() {
            // At 50% load, evaluate on the same trace that defined the bound
            // (the paper's target is literally the fixed-frequency tail of
            // this run), so statistical noise cannot push StaticOracle above
            // the nominal frequency.
            let seed = if load == 0.5 {
                777
            } else {
                (i * 10 + j) as u64
            };
            let trace = harness.trace(app, load, seed);
            let fixed = harness.run_fixed(&trace, harness.sim.dvfs.nominal());
            let (static_oracle, _) = harness.run_static_oracle(&trace, bound);
            let adrenaline = harness.run_adrenaline(&trace, bound);
            let (rubik, _) = harness.run_rubik(&trace, bound, true);

            let s = Harness::savings_percent(&fixed, &static_oracle);
            let a = Harness::savings_percent(&fixed, &adrenaline);
            let r = Harness::savings_percent(&fixed, &rubik);
            println!(
                "{}\t{:.0}%\t{:.1}\t{:.1}\t{:.1}",
                app.name(),
                load * 100.0,
                s,
                a,
                r
            );
            totals[0] += s;
            totals[1] += a;
            totals[2] += r;
            count += 1.0;
        }
    }
    println!(
        "mean\tall\t{:.1}\t{:.1}\t{:.1}",
        totals[0] / count,
        totals[1] / count,
        totals[2] / count
    );
}
