//! The assembled [`TraceLog`]: one per-request timeline per offered request,
//! plus server events and the fleet time series.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{RequestEvent, RequestEventKind, ServerEvent};
use crate::fleet::EpochSample;
use crate::sink::Recorder;
use rubik_sim::RunResult;

/// The full lifecycle of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Request identifier.
    pub id: u64,
    /// Arrival time at the cluster.
    pub arrival: f64,
    /// Time service began on the completing server, if the request completed.
    pub start: Option<f64>,
    /// Completion time, if the request completed. `None` means lost.
    pub completion: Option<f64>,
    /// Index of the completing server, if the request completed.
    pub server: Option<u32>,
    /// Lifecycle events in time order (empty for logs synthesized from bare
    /// [`RunResult`]s).
    pub events: Vec<RequestEvent>,
}

impl RequestTrace {
    /// End-to-end latency, or `None` for a lost request.
    pub fn latency(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }

    /// Whether the request completed.
    pub fn completed(&self) -> bool {
        self.completion.is_some()
    }

    /// Number of forced moves (migration hops plus crash requeues).
    pub fn hops(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    RequestEventKind::Migrated { .. } | RequestEventKind::Requeued { .. }
                )
            })
            .count() as u32
    }
}

/// A complete, self-contained record of one cluster run.
///
/// Serializes to JSON via [`crate::json::to_json`] and to Chrome
/// `trace_event` format via [`crate::chrome::to_chrome_json`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceLog {
    /// Number of servers in the fleet.
    pub servers: usize,
    /// End time of the run.
    pub end: f64,
    /// Per-request timelines, sorted by request id.
    pub requests: Vec<RequestTrace>,
    /// Server state changes in time order.
    pub server_events: Vec<ServerEvent>,
    /// Per-epoch fleet time series.
    pub epochs: Vec<EpochSample>,
}

impl TraceLog {
    /// Merge a [`Recorder`]'s event stream with the per-server results into
    /// per-request timelines.
    pub(crate) fn assemble(recorder: Recorder, results: &[RunResult], end: f64) -> Self {
        let mut requests: BTreeMap<u64, RequestTrace> = BTreeMap::new();
        for (server, result) in results.iter().enumerate() {
            for record in result.records() {
                requests.insert(
                    record.id,
                    RequestTrace {
                        id: record.id,
                        arrival: record.arrival,
                        start: Some(record.start),
                        completion: Some(record.completion),
                        server: Some(server as u32),
                        events: Vec::new(),
                    },
                );
            }
        }
        for &(id, event) in recorder.request_events() {
            let entry = requests.entry(id).or_insert_with(|| RequestTrace {
                id,
                // A lost request has no record; its first event is the
                // initial routing, which happens at the arrival instant.
                arrival: event.at,
                start: None,
                completion: None,
                server: None,
                events: Vec::new(),
            });
            entry.events.push(event);
        }
        let mut fleet = recorder.fleet().clone();
        let mut completions: Vec<f64> = requests.values().filter_map(|r| r.completion).collect();
        fleet.bucket_completions(&mut completions);
        Self {
            servers: results.len(),
            end,
            requests: requests.into_values().collect(),
            server_events: recorder.server_events().to_vec(),
            epochs: fleet.into_epochs(),
        }
    }

    /// Synthesize a log from bare single- or multi-server [`RunResult`]s.
    ///
    /// Useful for binaries that drive [`rubik_sim`] directly, without the
    /// cluster driver: timelines have no lifecycle events, but queueing and
    /// service spans (and therefore Chrome export and attribution) still
    /// work from the records.
    pub fn from_results(results: &[RunResult]) -> Self {
        Self::assemble(
            Recorder::default(),
            results,
            results.iter().map(RunResult::end_time).fold(0.0, f64::max),
        )
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.requests.iter().filter(|r| r.completed()).count()
    }

    /// Number of offered requests that never completed.
    pub fn lost(&self) -> usize {
        self.requests.len() - self.completed()
    }

    /// Down windows per server: `(from, to)` intervals during which the
    /// server was crashed, with an open crash clamped to [`TraceLog::end`].
    pub fn down_windows(&self) -> Vec<Vec<(f64, f64)>> {
        let mut windows = vec![Vec::new(); self.servers];
        let mut open: Vec<Option<f64>> = vec![None; self.servers];
        for event in &self.server_events {
            let s = event.server as usize;
            if s >= self.servers {
                continue;
            }
            match event.kind {
                crate::event::ServerEventKind::Down => {
                    open[s].get_or_insert(event.at);
                }
                crate::event::ServerEventKind::Up => {
                    if let Some(from) = open[s].take() {
                        windows[s].push((from, event.at));
                    }
                }
                _ => {}
            }
        }
        for (s, from) in open.into_iter().enumerate() {
            if let Some(from) = from {
                windows[s].push((from, self.end.max(from)));
            }
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RequestEventKind, ServerEventKind};
    use crate::sink::TraceSink;
    use rubik_sim::RequestRecord;

    fn record(id: u64, arrival: f64, start: f64, completion: f64) -> RequestRecord {
        RequestRecord {
            id,
            arrival,
            start,
            completion,
            compute_cycles: 1.0,
            membound_time: 0.0,
            queue_len_at_arrival: 0,
            class: 0,
        }
    }

    fn result(records: Vec<RequestRecord>, end: f64) -> RunResult {
        RunResult::new(records, Vec::new(), end)
    }

    #[test]
    fn assembles_records_and_events_by_id() {
        let mut recorder = Recorder::default();
        recorder.request_event(
            2,
            RequestEvent {
                at: 0.1,
                kind: RequestEventKind::Routed {
                    server: 1,
                    attempt: 1,
                },
            },
        );
        // Request 9 is lost: events only, no record.
        recorder.request_event(
            9,
            RequestEvent {
                at: 0.2,
                kind: RequestEventKind::Routed {
                    server: 0,
                    attempt: 1,
                },
            },
        );
        recorder.request_event(
            9,
            RequestEvent {
                at: 0.5,
                kind: RequestEventKind::Dropped { server: 0 },
            },
        );
        let results = vec![
            result(vec![], 1.0),
            result(vec![record(2, 0.1, 0.15, 0.3)], 1.0),
        ];
        let log = TraceLog::assemble(recorder, &results, 1.0);
        assert_eq!(log.servers, 2);
        assert_eq!(log.requests.len(), 2);
        let r2 = &log.requests[0];
        assert_eq!((r2.id, r2.server), (2, Some(1)));
        assert_eq!(r2.latency(), Some(0.3 - 0.1));
        assert_eq!(r2.events.len(), 1);
        let r9 = &log.requests[1];
        assert_eq!((r9.id, r9.server), (9, None));
        assert!(!r9.completed());
        assert_eq!(r9.arrival, 0.2);
        assert_eq!(log.completed(), 1);
        assert_eq!(log.lost(), 1);
    }

    #[test]
    fn from_results_covers_bare_runs() {
        let results = vec![result(vec![record(0, 0.0, 0.1, 0.2)], 0.7)];
        let log = TraceLog::from_results(&results);
        assert_eq!(log.servers, 1);
        assert_eq!(log.end, 0.7);
        assert_eq!(log.requests[0].start, Some(0.1));
        assert!(log.requests[0].events.is_empty());
    }

    #[test]
    fn down_windows_pair_and_clamp() {
        let mut log = TraceLog {
            servers: 2,
            end: 10.0,
            ..TraceLog::default()
        };
        for (at, server, kind) in [
            (1.0, 0, ServerEventKind::Down),
            (3.0, 0, ServerEventKind::Up),
            (5.0, 1, ServerEventKind::Down),
        ] {
            log.server_events.push(ServerEvent { at, server, kind });
        }
        let windows = log.down_windows();
        assert_eq!(windows[0], vec![(1.0, 3.0)]);
        assert_eq!(windows[1], vec![(5.0, 10.0)]);
    }
}
