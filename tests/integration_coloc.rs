//! Integration tests for RubikColoc: the colocation results of Sec. 7 hold
//! qualitatively — RubikColoc maintains tail latency where the other
//! colocation schemes degrade it, and the colocated datacenter uses less
//! power and fewer servers than the segregated one.

use rubik::coloc::ColocRunSpec;
use rubik::{
    AppProfile, BatchMix, ColocScheme, ColocatedCore, DatacenterComparison, DatacenterConfig,
};

#[test]
fn rubikcoloc_is_the_only_scheme_that_reliably_holds_the_tail() {
    let core = ColocatedCore::new();
    let profile = AppProfile::masstree();
    let mix = BatchMix::paper_mixes(17)[1].clone();
    let requests = 1500;
    let bound = core.latency_bound(&profile, requests, 3);

    let mut tails = std::collections::BTreeMap::new();
    for scheme in ColocScheme::all() {
        let outcome = core.run(
            &ColocRunSpec::new(scheme, &profile, &mix, bound)
                .with_load(0.6)
                .with_requests(requests)
                .with_seed(5),
        );
        tails.insert(scheme.name(), outcome.normalized_tail);
    }

    let rubik = tails["RubikColoc"];
    assert!(rubik <= 1.2, "RubikColoc normalized tail {rubik}");
    // The hardware schemes are latency-oblivious and degrade the tail badly.
    assert!(tails["HW-T"] > 1.5, "HW-T tail {}", tails["HW-T"]);
    assert!(
        tails["HW-TPW"] > rubik,
        "HW-TPW {} vs Rubik {}",
        tails["HW-TPW"],
        rubik
    );
    // The ordering of Fig. 15: RubikColoc best, hardware schemes worst.
    assert!(tails["HW-T"] >= tails["StaticColoc"] * 0.9);
}

#[test]
fn colocation_achieves_full_core_utilization() {
    // LC work plus batch filling the idle gaps uses 100% of the core.
    let core = ColocatedCore::new();
    let profile = AppProfile::xapian();
    let mix = BatchMix::paper_mixes(23)[0].clone();
    let bound = core.latency_bound(&profile, 1200, 9);
    let outcome = core.run(
        &ColocRunSpec::new(ColocScheme::RubikColoc, &profile, &mix, bound)
            .with_load(0.3)
            .with_requests(1200)
            .with_seed(13),
    );
    // The LC side only uses ~30% of the core...
    assert!(outcome.lc_utilization < 0.6);
    // ...but batch work covers the rest: total busy fraction is 1 by
    // construction, so batch work done must be positive and scale with idle time.
    let idle_fraction = 1.0 - outcome.lc_utilization;
    let batch_rate = outcome.batch_work / outcome.duration;
    assert!(batch_rate > 0.3 * idle_fraction, "batch rate {batch_rate}");
}

#[test]
fn colocated_datacenter_saves_power_and_servers_across_the_load_sweep() {
    let dc = DatacenterComparison::new(DatacenterConfig::small());
    let points = dc.sweep(&[0.2, 0.5]);
    for p in &points {
        assert!(
            p.coloc_power < p.segregated_power,
            "at load {}: coloc {} vs segregated {}",
            p.lc_load,
            p.coloc_power,
            p.segregated_power
        );
        assert!(p.coloc_servers <= p.segregated_servers);
        assert!(p.worst_normalized_tail <= 1.5);
    }
    // Savings are larger at lower LC load (more idle cycles to harvest).
    let savings_low = 1.0 - points[0].coloc_power / points[0].segregated_power;
    let savings_high = 1.0 - points[1].coloc_power / points[1].segregated_power;
    assert!(savings_low >= savings_high * 0.8);
}
