//! Core frequency and the DVFS domain.

use serde::{Deserialize, Serialize};

/// A core frequency, stored in MHz.
///
/// A newtype (rather than a bare `f64` in GHz) so that frequencies, times and
/// cycle counts cannot be mixed up, and so that frequencies can be used as
/// exact map keys for residency accounting.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Freq(u32);

impl Freq {
    /// Creates a frequency from MHz.
    pub const fn from_mhz(mhz: u32) -> Self {
        Self(mhz)
    }

    /// Creates a frequency from GHz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self((ghz * 1000.0).round() as u32)
    }

    /// The frequency in MHz.
    pub const fn mhz(self) -> u32 {
        self.0
    }

    /// The frequency in GHz.
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The frequency in cycles per second.
    pub fn hz(self) -> f64 {
        self.0 as f64 * 1e6
    }

    /// Time in seconds to execute `cycles` core cycles at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn time_for_cycles(self, cycles: f64) -> f64 {
        assert!(self.0 > 0, "cannot execute cycles at 0 MHz");
        cycles / self.hz()
    }

    /// Cycles executed in `seconds` at this frequency.
    pub fn cycles_in(self, seconds: f64) -> f64 {
        self.hz() * seconds
    }
}

impl std::fmt::Display for Freq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} GHz", self.ghz())
    }
}

/// The DVFS domain of a core: available frequency levels, the nominal
/// frequency, and the voltage/frequency transition latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsConfig {
    min: Freq,
    max: Freq,
    step_mhz: u32,
    nominal: Freq,
    /// Seconds for a voltage/frequency transition to take effect.
    transition_latency: f64,
    /// All levels, ascending — materialized once at construction so the hot
    /// scheme code that scans levels ([`DvfsConfig::levels`]) never
    /// allocates.
    levels: Vec<Freq>,
}

impl DvfsConfig {
    /// Creates a DVFS domain.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, the step is zero, the range is not a
    /// multiple of the step, or the nominal frequency is not a level.
    pub fn new(
        min: Freq,
        max: Freq,
        step_mhz: u32,
        nominal: Freq,
        transition_latency: f64,
    ) -> Self {
        assert!(step_mhz > 0, "frequency step must be positive");
        assert!(
            min.mhz() > 0 && max.mhz() >= min.mhz(),
            "invalid frequency range"
        );
        assert_eq!(
            (max.mhz() - min.mhz()) % step_mhz,
            0,
            "frequency range must be a multiple of the step"
        );
        assert!(
            transition_latency >= 0.0,
            "transition latency must be non-negative"
        );
        let levels = (min.mhz()..=max.mhz())
            .step_by(step_mhz as usize)
            .map(Freq::from_mhz)
            .collect();
        let cfg = Self {
            min,
            max,
            step_mhz,
            nominal,
            transition_latency,
            levels,
        };
        assert!(
            cfg.is_level(nominal),
            "nominal frequency {nominal} is not an available level"
        );
        cfg
    }

    /// The configuration of the paper's simulated CMP (Table 2): 0.8–3.4 GHz
    /// in 200 MHz steps, 2.4 GHz nominal, 4 µs V/F transition latency
    /// (Haswell-like FIVR per-core DVFS).
    pub fn haswell_like() -> Self {
        Self::new(
            Freq::from_mhz(800),
            Freq::from_mhz(3400),
            200,
            Freq::from_mhz(2400),
            4e-6,
        )
    }

    /// The configuration observed on the paper's real Haswell system
    /// (Sec. 5.5): same levels, but ~130 µs effective transition latency due
    /// to the Power Control Unit.
    pub fn real_haswell() -> Self {
        Self::new(
            Freq::from_mhz(800),
            Freq::from_mhz(3400),
            200,
            Freq::from_mhz(2400),
            130e-6,
        )
    }

    /// Lowest available frequency.
    pub fn min(&self) -> Freq {
        self.min
    }

    /// Highest available frequency.
    pub fn max(&self) -> Freq {
        self.max
    }

    /// Nominal (baseline) frequency.
    pub fn nominal(&self) -> Freq {
        self.nominal
    }

    /// Step between levels, in MHz.
    pub fn step_mhz(&self) -> u32 {
        self.step_mhz
    }

    /// Voltage/frequency transition latency in seconds.
    pub fn transition_latency(&self) -> f64 {
        self.transition_latency
    }

    /// Returns a copy with a different transition latency (used to model the
    /// real-system FIVR lag of Sec. 5.5).
    pub fn with_transition_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0);
        self.transition_latency = latency;
        self
    }

    /// All available frequency levels, ascending.
    ///
    /// The slice is cached at construction — calling this in per-decision
    /// scheme code is free (it used to allocate a fresh `Vec` per call).
    pub fn levels(&self) -> &[Freq] {
        &self.levels
    }

    /// Number of available levels.
    pub fn num_levels(&self) -> usize {
        ((self.max.mhz() - self.min.mhz()) / self.step_mhz) as usize + 1
    }

    /// Whether `f` is one of the available levels.
    pub fn is_level(&self, f: Freq) -> bool {
        f >= self.min && f <= self.max && (f.mhz() - self.min.mhz()).is_multiple_of(self.step_mhz)
    }

    /// The lowest available level that is at least `hz` cycles per second,
    /// or the maximum level if none is high enough.
    pub fn ceil_level(&self, hz: f64) -> Freq {
        if hz <= 0.0 {
            return self.min;
        }
        let mhz = (hz / 1e6).ceil() as u32;
        if mhz <= self.min.mhz() {
            return self.min;
        }
        if mhz > self.max.mhz() {
            return self.max;
        }
        let steps = (mhz - self.min.mhz()).div_ceil(self.step_mhz);
        Freq::from_mhz(self.min.mhz() + steps * self.step_mhz)
    }

    /// The highest available level that is at most `hz` cycles per second,
    /// or the minimum level if none is low enough.
    pub fn floor_level(&self, hz: f64) -> Freq {
        let mhz = (hz / 1e6).floor() as u32;
        if mhz <= self.min.mhz() {
            return self.min;
        }
        if mhz >= self.max.mhz() {
            return self.max;
        }
        let steps = (mhz - self.min.mhz()) / self.step_mhz;
        Freq::from_mhz(self.min.mhz() + steps * self.step_mhz)
    }

    /// Clamps an arbitrary frequency to the nearest available level at or
    /// above it (the conservative direction for meeting latency bounds).
    pub fn clamp_up(&self, f: Freq) -> Freq {
        self.ceil_level(f.hz())
    }
}

impl Default for DvfsConfig {
    fn default() -> Self {
        Self::haswell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_conversions() {
        let f = Freq::from_ghz(2.4);
        assert_eq!(f.mhz(), 2400);
        assert!((f.ghz() - 2.4).abs() < 1e-12);
        assert!((f.hz() - 2.4e9).abs() < 1.0);
        assert!((f.time_for_cycles(2.4e9) - 1.0).abs() < 1e-12);
        assert!((f.cycles_in(0.5) - 1.2e9).abs() < 1.0);
        assert_eq!(format!("{f}"), "2.4 GHz");
    }

    #[test]
    fn haswell_like_matches_table2() {
        let cfg = DvfsConfig::haswell_like();
        assert_eq!(cfg.min().mhz(), 800);
        assert_eq!(cfg.max().mhz(), 3400);
        assert_eq!(cfg.nominal().mhz(), 2400);
        assert_eq!(cfg.num_levels(), 14);
        assert_eq!(cfg.levels().len(), 14);
        assert!((cfg.transition_latency() - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn levels_are_ascending_and_valid() {
        let cfg = DvfsConfig::haswell_like();
        let levels = cfg.levels();
        for w in levels.windows(2) {
            assert!(w[1] > w[0]);
        }
        for &l in levels {
            assert!(cfg.is_level(l));
        }
        assert!(!cfg.is_level(Freq::from_mhz(2500)));
        assert!(!cfg.is_level(Freq::from_mhz(3600)));
    }

    #[test]
    fn ceil_level_rounds_up() {
        let cfg = DvfsConfig::haswell_like();
        assert_eq!(cfg.ceil_level(2.45e9).mhz(), 2600);
        assert_eq!(cfg.ceil_level(2.4e9).mhz(), 2400);
        assert_eq!(cfg.ceil_level(0.1e9).mhz(), 800);
        assert_eq!(cfg.ceil_level(9.9e9).mhz(), 3400);
        assert_eq!(cfg.ceil_level(0.0).mhz(), 800);
    }

    #[test]
    fn floor_level_rounds_down() {
        let cfg = DvfsConfig::haswell_like();
        assert_eq!(cfg.floor_level(2.45e9).mhz(), 2400);
        assert_eq!(cfg.floor_level(0.1e9).mhz(), 800);
        assert_eq!(cfg.floor_level(9.9e9).mhz(), 3400);
    }

    #[test]
    fn real_haswell_has_slow_transitions() {
        let cfg = DvfsConfig::real_haswell();
        assert!((cfg.transition_latency() - 130e-6).abs() < 1e-12);
        assert_eq!(cfg.levels(), DvfsConfig::haswell_like().levels());
    }

    #[test]
    #[should_panic(expected = "not an available level")]
    fn rejects_invalid_nominal() {
        let _ = DvfsConfig::new(
            Freq::from_mhz(800),
            Freq::from_mhz(3400),
            200,
            Freq::from_mhz(2500),
            4e-6,
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the step")]
    fn rejects_misaligned_range() {
        let _ = DvfsConfig::new(
            Freq::from_mhz(800),
            Freq::from_mhz(3300),
            200,
            Freq::from_mhz(2400),
            4e-6,
        );
    }
}
