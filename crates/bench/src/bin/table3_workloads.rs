//! Table 3: latency-critical application configurations and request counts.

use rubik::{AppProfile, Freq};
use rubik_bench::{print_header, BenchArgs, Harness};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    println!("# Table 3: latency-critical applications");
    print_header(&[
        "app",
        "workload",
        "paper_requests",
        "mean_service_us",
        "cov",
        "mem_fraction",
        "tail_bound_us",
    ]);
    for app in AppProfile::all() {
        let bound = harness.latency_bound(&app);
        println!(
            "{}\t{}\t{}\t{:.0}\t{:.2}\t{:.2}\t{:.0}",
            app.name(),
            app.workload_config(),
            app.paper_requests(),
            app.mean_service_time() * 1e6,
            app.cov(),
            app.mem_fraction(),
            bound * 1e6
        );
        let _ = Freq::from_mhz(2400);
    }
}
