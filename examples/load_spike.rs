//! Responsiveness to sudden load changes (the paper's Fig. 1b / Fig. 10).
//!
//! The offered load steps from 25% to 50% to 75% of capacity. A static
//! frequency tuned for the initial load violates the tail bound after the
//! step, while Rubik reacts on the very next request arrivals because longer
//! queues immediately demand higher frequencies from its model.
//!
//! ```text
//! cargo run --release --example load_spike
//! ```

use rubik::{
    AppProfile, CorePowerModel, FixedFrequencyPolicy, LoadProfile, RubikConfig, RubikController,
    Server, SimConfig, StaticOracle, WorkloadGenerator,
};

fn main() {
    let profile = AppProfile::masstree();
    let config = SimConfig::default();
    let power = CorePowerModel::haswell_like();

    // Latency bound: tail at nominal frequency under 50% load.
    let mut calib = WorkloadGenerator::new(profile.clone(), 1);
    let calib_trace = calib.steady_trace(0.5, 4_000);
    let static_oracle = StaticOracle::new(config.dvfs.clone(), 0.95);
    let bound = static_oracle
        .tail_at(&calib_trace, config.dvfs.nominal())
        .expect("non-empty trace");

    // The load-step trace: 25% -> 50% -> 75%, 4 s each.
    let mut generator = WorkloadGenerator::new(profile.clone(), 2);
    let trace = generator.profile_trace(&LoadProfile::fig10_steps());

    // StaticOracle tuned for the initial 25% load.
    let tuning = generator.steady_trace(0.25, 4_000);
    let static_freq = static_oracle.lowest_feasible_freq(&tuning, bound);
    let mut static_policy = FixedFrequencyPolicy::new(static_freq);
    let static_result = Server::new(config.clone()).run(&trace, &mut static_policy);

    // Rubik.
    let mut rubik = RubikController::new(RubikConfig::new(bound), config.dvfs.clone());
    let rubik_result = Server::new(config).run(&trace, &mut rubik);

    println!(
        "masstree, load steps 25% -> 50% -> 75% every 4 s, bound = {:.0} us",
        bound * 1e6
    );
    println!("StaticOracle tuned for 25% load runs at {}.", static_freq);
    println!();
    println!(
        "{:>6} {:>8} {:>22} {:>22} {:>16}",
        "t (s)", "load", "static tail (us)", "rubik tail (us)", "rubik power (W)"
    );

    let window = 0.5;
    let static_roll = static_result.rolling_tail(window, 0.95);
    let rubik_roll = rubik_result.rolling_tail(window, 0.95);
    let tail_at = |roll: &[(f64, f64)], t: f64| -> f64 {
        roll.iter()
            .rfind(|&&(time, _)| time <= t)
            .map(|&(_, tail)| tail)
            .unwrap_or(0.0)
    };

    for step in 1..=24 {
        let t = step as f64 * 0.5;
        let load = LoadProfile::fig10_steps().load_at(t - 0.01);
        let res = rubik_result.freq_residency_between(t - window, t);
        let rubik_power = if res.total_time() > 0.0 {
            power.average_power(&res)
        } else {
            0.0
        };
        println!(
            "{:>6.1} {:>7.0}% {:>22.1} {:>22.1} {:>16.2}",
            t,
            load * 100.0,
            tail_at(&static_roll, t) * 1e6,
            tail_at(&rubik_roll, t) * 1e6,
            rubik_power,
        );
    }

    println!();
    println!(
        "Overall: static tail = {:.0} us ({}x bound), Rubik tail = {:.0} us ({:.2}x bound)",
        static_result.tail_latency(0.95).unwrap() * 1e6,
        (static_result.tail_latency(0.95).unwrap() / bound).round(),
        rubik_result.tail_latency(0.95).unwrap() * 1e6,
        rubik_result.tail_latency(0.95).unwrap() / bound,
    );
}
