//! Disabled telemetry costs zero allocations.
//!
//! A counting global allocator pins the other half of the neutrality
//! contract (`tests/telemetry_neutrality.rs` pins the bitwise half):
//! attaching [`Telemetry::disabled`] to a cluster must not add a single
//! allocation over a cluster that never heard of telemetry — the disabled
//! path keeps its sampling boundary at infinity and never constructs a
//! sample, an event, or a recorder.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rubik_cluster::{fleet_trace, Cluster, JoinShortestQueue, Telemetry};
use rubik_sim::{FixedFrequencyPolicy, SimConfig, Trace};
use rubik_workloads::AppProfile;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_for_run(trace: &Trace, telemetry: Option<Telemetry>) -> u64 {
    let config = SimConfig::paper_simulated();
    let mut cluster = Cluster::new(
        config.clone(),
        4,
        Box::new(JoinShortestQueue::new()),
        |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
    );
    if let Some(t) = telemetry {
        cluster = cluster.with_telemetry(t);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let outcome = cluster.run(trace);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(outcome.requests, trace.len());
    after - before
}

#[test]
fn disabled_telemetry_adds_zero_allocations() {
    let trace = fleet_trace(&AppProfile::masstree(), 0.5, 4, 1200, 17);

    // Warm-up faults in lazy one-time costs on both code paths.
    let _ = allocations_for_run(&trace, None);
    let _ = allocations_for_run(&trace, Some(Telemetry::disabled()));

    let plain = allocations_for_run(&trace, None);
    let disabled = allocations_for_run(&trace, Some(Telemetry::disabled()));
    assert_eq!(
        plain, disabled,
        "Telemetry::disabled() must be allocation-free: {plain} allocations \
         without telemetry vs {disabled} with it"
    );

    // And recording, for contrast, really is doing work.
    let recording = allocations_for_run(&trace, Some(Telemetry::recording()));
    assert!(
        recording > disabled,
        "a recording run should allocate for its log ({recording} vs {disabled})"
    );
}
