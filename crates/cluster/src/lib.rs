//! `rubik-cluster`: multi-server serving behind a load balancer.
//!
//! The paper evaluates Rubik one core at a time; a datacenter runs *fleets*.
//! This crate models a cluster of N simulated servers — each an independent
//! open-loop [`rubik_sim::ServerSim`] with its **own** DVFS controller
//! (Rubik per server) — behind a pluggable [`Router`]. A single
//! deterministic binary-heap event loop multiplexes every server, so
//! thousands of servers fit in one process with no threads per server —
//! and the loop itself shards across worker threads for large fleets
//! (see [Sharded execution](#sharded-execution)) without changing a
//! single bit of the result. Fleet-scale parallelism across *runs* comes
//! from sweeping many cluster configurations on `rubik-sweep`.
//!
//! The pieces:
//!
//! * [`Cluster`] — the driver: routes each arrival of a global request
//!   stream, advances the globally earliest server event, aggregates a
//!   [`ClusterOutcome`] (fleet power, global tail latency, per-server
//!   residency),
//! * [`Router`] — the load-balancing policy, with [`RoundRobin`],
//!   [`JoinShortestQueue`], and [`PowerAware`] (routes on each server's
//!   live occupancy, capacity weight, and DVFS operating point)
//!   implementations, plus the [`Passthrough`] identity router,
//! * [`FleetSpec`] — heterogeneous fleets: named core classes (big/little),
//!   each with its own `SimConfig` and a capacity weight,
//! * [`FleetController`] / [`PegasusFleet`] — fleet-level power capping on a
//!   coarse epoch: FastCap-style weighted apportioning of a global watt
//!   budget into per-server frequency ceilings, waterfilling slack from
//!   idle servers into backlogged ones,
//! * [`Migrator`] / [`ThresholdMigrator`] — queue migration between events:
//!   queued (not yet in service) requests move off a backlogged server with
//!   their arrival times preserved, triggered on queue imbalance with
//!   hysteresis,
//! * [`fleet_trace`] — scales an application's arrival process to a fleet,
//! * [`Cluster::run_streamed`] — serves a pull-based
//!   [`ArrivalSource`] (steady Poisson, shaped non-homogeneous Poisson,
//!   merged multi-app, or file-backed streaming replay from `rubik-load`)
//!   without materializing the stream,
//! * [`FaultPlan`] / [`RequestPolicy`] — deterministic fault injection
//!   (crashes, stragglers, stuck frequencies) and the client-side request
//!   lifecycle (deadlines, timeouts, retries with deterministic jitter).
//!
//! A 1-server cluster behind [`Passthrough`] reproduces the standalone
//! simulator **bitwise** (pinned in `tests/cluster_equivalence.rs`), so
//! cluster results compose with every single-server number in this
//! repository; an uncapped, migration-free cluster is likewise bitwise
//! identical to one with the hooks attached but idle
//! (`tests/fleet_properties.rs`).
//!
//! # Example: a small Rubik fleet behind JSQ
//!
//! ```
//! use rubik_cluster::{fleet_trace, Cluster, JoinShortestQueue};
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let profile = AppProfile::masstree();
//!
//! // 8 servers at 40% load each; 800 requests arriving fleet-wide.
//! let trace = fleet_trace(&profile, 0.4, 8, 800, 42);
//! let cluster = Cluster::new(
//!     config.clone(),
//!     8,
//!     Box::new(JoinShortestQueue::new()),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! );
//! let outcome = cluster.run(&trace);
//!
//! assert_eq!(outcome.requests, 800);
//! assert_eq!(outcome.servers(), 8);
//! assert!(outcome.tail_latency > 0.0);
//! assert!(outcome.fleet_power > 0.0);
//! let per_server: usize = outcome.per_server.iter().map(|s| s.requests).sum();
//! assert_eq!(per_server, 800);
//! ```
//!
//! Swapping `FixedFrequencyPolicy` for `rubik_core::RubikController` (one
//! instance per server, seeded from the head of the trace) gives each
//! server the paper's controller; the cluster driver never looks inside a
//! policy, so every scheme in `rubik-core` works unchanged.
//!
//! # Streaming arrivals and load shapes
//!
//! [`Cluster::run`] replays a materialized trace; [`Cluster::run_streamed`]
//! pulls arrivals lazily from any [`ArrivalSource`] in `rubik-load`, so the
//! stream itself never occupies memory and the offered load can *change*
//! mid-run — the regime the paper's Fig. 1 story is about. The two paths
//! are the same code: `run(&trace)` is `run_streamed(TraceSource::new(&trace))`,
//! pinned bitwise in `tests/stream_equivalence.rs`.
//!
//! Here a 4-server fleet rides a diurnal sinusoid into a morning ramp; the
//! fleet sees roughly 3× more arrivals near the diurnal peak than in the
//! trough, and nothing is materialized up front:
//!
//! ```
//! use rubik_cluster::{Cluster, JoinShortestQueue};
//! use rubik_load::{LoadShape, ShapedSource};
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let shape = LoadShape::Sequence(vec![
//!     LoadShape::Diurnal { mean: 0.4, amplitude: 0.2, period: 4.0, duration: 4.0 },
//!     LoadShape::Ramp { from: 0.4, to: 0.7, duration: 2.0 },
//! ]);
//! shape.validate().expect("well-formed shape");
//! let source = ShapedSource::new(AppProfile::masstree(), shape, 42).for_fleet(4);
//!
//! let config = SimConfig::paper_simulated();
//! let cluster = Cluster::new(
//!     config.clone(),
//!     4,
//!     Box::new(JoinShortestQueue::new()),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! );
//! let outcome = cluster.run_streamed(source).expect("shaped sources are time-ordered");
//!
//! assert!(outcome.requests > 100, "the shape window draws plenty of load");
//! assert!(outcome.tail_latency > 0.0);
//! // Same seed, same shape => bit-identical rerun, like any fixed trace.
//! ```
//!
//! `ShapedSource` draws a non-homogeneous Poisson process by seeded
//! thinning (ramps, steps, diurnal sinusoids, spikes, piecewise
//! schedules); `MergedSource` interleaves several applications'
//! streams; `StreamingTraceReader` replays a captured trace file without
//! loading it. See the `rubik-load` crate docs for the full tour. A
//! source that hands back a non-monotone arrival violates the
//! [`ArrivalSource`] contract and is reported as
//! [`ClusterError::OutOfOrderArrival`] instead of panicking.
//!
//! # Sharded execution
//!
//! One stamped heap serializes the whole fleet, and past a few hundred
//! servers the heap — not the servers — is the bottleneck.
//! [`Cluster::run_sharded`] (and the `run_sharded_streamed` /
//! `run_sharded_traced` variants) partitions the fleet into contiguous
//! shards, each with its own stamped heap, and advances the shards **in
//! parallel on worker threads** between global boundary instants:
//!
//! * Arrivals, router decisions, migration epochs, fleet-controller
//!   epochs, fault ops, and telemetry samples are *boundaries* — every
//!   shard stops there, so cross-server state is only ever read or
//!   written at the same instants the single-heap loop honors.
//! * Between boundaries, a server's events depend on nothing outside the
//!   server, so each shard drains its own heap independently.
//! * At the barrier the side effects merge deterministically: router
//!   views refresh per stepped server, and fault-layer completions replay
//!   in global `(time, server index)` order — the exact order the
//!   single heap would have produced them.
//!
//! The result is **bit-identical** to the single-heap run — outcome,
//! every per-server `RunResult`, and telemetry bytes — at any shard
//! count, pinned across a router × fleet × fault × seed grid in
//! `tests/shard_equivalence.rs`. One caveat keeps that promise airtight:
//! a *hedged* completion cancels its twin on another server mid-window,
//! which is genuinely cross-shard, so runs with hedging enabled
//! automatically fall back to a serial k-way merged drain (same bits,
//! no parallelism inside the window).
//!
//! Pick shard counts with [`ShardSpec`]: [`ShardSpec::auto`] uses the
//! host's available parallelism, [`ShardSpec::new`] pins a count
//! (clamped to the fleet size). Sharding pays off when the fleet is
//! large (hundreds of servers or more) and boundaries are coarse; for
//! small fleets or dense boundary schedules the barrier round-trip
//! dominates and [`ShardSpec::single`] — or plain [`Cluster::run`] — is
//! the right call. Worker threads are spawned once per run and parked
//! between drains.
//!
//! ```
//! use rubik_cluster::{fleet_trace, Cluster, JoinShortestQueue, ShardSpec};
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let trace = fleet_trace(&AppProfile::masstree(), 0.4, 8, 400, 42);
//! let build = || Cluster::new(
//!     config.clone(),
//!     8,
//!     Box::new(JoinShortestQueue::new()),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! );
//!
//! let single = build().run(&trace);
//! let sharded = build().run_sharded(ShardSpec::new(4), &trace);
//! assert_eq!(single, sharded); // bit-identical, not just statistically close
//! ```
//!
//! # Example: a capped heterogeneous fleet with migration
//!
//! Four big cores and four low-frequency little cores serve one stream
//! behind the capacity-aware router, under a 28 W global budget enforced by
//! [`PegasusFleet`], with [`ThresholdMigrator`] rebalancing queue spikes:
//!
//! ```
//! use rubik_cluster::{
//!     fleet_trace, Cluster, FleetSpec, PegasusFleet, PowerAware, ThresholdMigrator,
//! };
//! use rubik_power::CorePowerModel;
//! use rubik_sim::{DvfsConfig, FixedFrequencyPolicy, Freq, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let big = SimConfig::paper_simulated();
//! let little = big.clone().with_dvfs(DvfsConfig::new(
//!     Freq::from_mhz(800),
//!     Freq::from_mhz(1800),
//!     200,
//!     Freq::from_mhz(1200),
//!     4e-6,
//! ));
//! let spec = FleetSpec::new()
//!     .class("big", big, 1.0, 4)
//!     .class("little", little, 0.5, 4);
//!
//! let power = CorePowerModel::haswell_like();
//! let trace = fleet_trace(&AppProfile::masstree(), 0.3, spec.len(), 600, 7);
//! let cluster = Cluster::from_spec(&spec, Box::new(PowerAware::new(power)), |_i, config| {
//!     FixedFrequencyPolicy::new(config.dvfs.nominal())
//! })
//! .with_power(power)
//! .with_fleet_controller(Box::new(PegasusFleet::new(28.0, power)))
//! .with_migrator(Box::new(ThresholdMigrator::default()));
//!
//! let outcome = cluster.run(&trace);
//! assert_eq!(outcome.requests, 600);
//! // The cap binds: average fleet power stays under the 28 W budget.
//! assert!(outcome.fleet_power <= 28.0);
//! // Class totals split the outcome between big and little cores. At this
//! // light load most routing decisions are idle-vs-idle ties, and the
//! // power tie-break sends those to the cheaper little cores; big cores
//! // still serve a substantial share whenever queues differ.
//! let totals = outcome.class_totals();
//! assert_eq!(totals.len(), 2);
//! assert!(totals[0].requests > 0 && totals[1].requests > 0);
//! assert_eq!(totals[0].requests + totals[1].requests, 600);
//! ```
//!
//! # The fault model: crash, recover, and serve through it
//!
//! A [`FaultPlan`] scripts failures at absolute times — crashes,
//! recoveries, straggler windows, stuck frequencies — and the driver
//! applies them *between* simulation events, so the same plan and trace
//! give bit-identical results on any machine and any sweep thread count.
//! An **empty plan is bit-neutral**: attaching it changes nothing (pinned
//! in `tests/fault_properties.rs`). A [`RequestPolicy`] adds the client's
//! side — per-attempt timeouts, retries with capped exponential backoff and
//! deterministic jitter, end-to-end deadlines — and wrapping the router in
//! [`HealthAware`] keeps new work and retries off servers that are down or
//! straggling. [`PegasusFleet`] re-apportions its watt budget over the
//! survivors at its next epoch, so a crash never inflates the cap.
//!
//! Here a 4-server fleet loses server 2 mid-run and gets it back; timed-out
//! work is retried on the survivors, and the outcome's availability block
//! tells the story:
//!
//! ```
//! use rubik_cluster::{
//!     fleet_trace, Cluster, FaultPlan, HealthAware, JoinShortestQueue, RequestPolicy,
//! };
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let profile = AppProfile::masstree();
//! let trace = fleet_trace(&profile, 0.4, 4, 400, 11);
//! let mid = trace.duration() / 2.0;
//!
//! let cluster = Cluster::new(
//!     config.clone(),
//!     4,
//!     Box::new(HealthAware::new(JoinShortestQueue::new())),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! )
//! // Server 2 is down for the middle third of the run.
//! .with_fault_plan(FaultPlan::new().crash(2, mid).recover(2, mid + mid / 1.5))
//! // Queued work stranded by the crash is re-routed; anything still
//! // queued 10 ms after being routed is pulled back and retried.
//! .with_request_policy(
//!     RequestPolicy::new()
//!         .with_timeout(10e-3)
//!         .with_retries(3, 1e-3, 20e-3)
//!         .draining_on_crash()
//!         .salvaging_in_flight(),
//! );
//!
//! let outcome = cluster.run(&trace);
//! let avail = outcome.availability;
//! assert_eq!(avail.offered, 400);
//! assert_eq!(avail.completed, 400, "everything was rescued");
//! assert!(outcome.per_server[2].downtime > 0.0);
//! assert_eq!(outcome.per_server.iter().filter(|s| s.downtime > 0.0).count(), 1);
//! ```
//!
//! ## Hedged requests
//!
//! Timeouts recover from *failures*; **hedging** attacks the *tail*.
//! [`RequestPolicy::with_hedging`] arms a per-request trigger at the
//! fleet's tracked completion-latency quantile (floored by a minimum
//! delay): when an attempt's age crosses it, the driver speculatively
//! duplicates the request onto the least-loaded *other* healthy server
//! and the first copy to finish wins — the loser is cancelled in place
//! via [`rubik_sim::ServerSim::cancel`], producing no duplicate record,
//! so `completed + lost == offered` still holds exactly. The outcome's
//! [`AvailabilityStats`] counts `hedged` / `hedge_wins` /
//! `hedge_cancelled`, telemetry records `Hedged` / `HedgeWon` /
//! `HedgeCancelled` events, and a policy without hedging is **bitwise
//! identical** to one never constructed (pinned in
//! `tests/hedge_properties.rs`).
//!
//! ## Correlated rack failures and stochastic fault generation
//!
//! Real outages are not independent: a rack PDU or ToR failure takes
//! every server in the rack down at once. [`FailureTopology`] places the
//! fleet into racks and rows, [`CorrelatedFaults`] scripts whole-rack
//! outages with per-member deterministic recovery jitter, and
//! [`StochasticFaults`] draws entire failure histories from seeded
//! MTBF/MTTR renewal processes — all three **compile to an ordinary
//! [`FaultPlan`]**, so every random scenario validates, replays
//! bit-exactly at any sweep thread count, and inherits the empty-plan
//! bit-neutrality contract. Here rack 1 of an 8-server fleet goes dark
//! for 20 ms and the survivors absorb the re-routed work:
//!
//! ```
//! use rubik_cluster::{
//!     fleet_trace, Cluster, CorrelatedFaults, FailureTopology, HealthAware,
//!     JoinShortestQueue, RequestPolicy,
//! };
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let trace = fleet_trace(&AppProfile::masstree(), 0.3, 8, 600, 13);
//!
//! // 8 servers, 4 per rack: rack 1 = servers 4..8. The whole rack
//! // crashes mid-run; members recover 20 ms later, staggered by up to
//! // 5 ms of seeded jitter.
//! let topo = FailureTopology::grid(8, 4, 2);
//! let mid = trace.duration() / 2.0;
//! let plan = CorrelatedFaults::new(&topo, 42)
//!     .rack_outage(1, mid, 20e-3, 5e-3)
//!     .into_plan();
//!
//! let cluster = Cluster::new(
//!     config.clone(),
//!     8,
//!     Box::new(HealthAware::new(JoinShortestQueue::new())),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! )
//! .with_fault_plan(plan)
//! .with_request_policy(
//!     RequestPolicy::new()
//!         .with_timeout(10e-3)
//!         .with_retries(3, 1e-3, 20e-3)
//!         .draining_on_crash()
//!         .salvaging_in_flight(),
//! );
//!
//! let outcome = cluster.run(&trace);
//! assert_eq!(outcome.availability.completed, 600, "survivors absorb the rack");
//! // Exactly the four rack members saw downtime.
//! let down: Vec<usize> = (0..8)
//!     .filter(|&i| outcome.per_server[i].downtime > 0.0)
//!     .collect();
//! assert_eq!(down, vec![4, 5, 6, 7]);
//! ```
//!
//! Swapping the scripted outage for
//! `StochasticFaults::new().with_rack_failures(2.0, 0.05)` draws rack
//! outages from a renewal process instead — same plan type, same
//! replayability.
//!
//! # Observability
//!
//! Attaching [`Telemetry`] records what the driver already sequences: every
//! request's lifecycle (routing, timeouts, backoff, requeues, migrations),
//! every scripted fault window, and a per-epoch fleet time series of power,
//! queue depths, and in-flight work. The contract is strict in both
//! directions — [`Telemetry::disabled`] (the default) is bitwise-invisible
//! and allocation-free, and even [`Telemetry::recording`] leaves the
//! simulated outcome bit-identical because samples are taken at boundary
//! instants the event loop already honors. The assembled [`TraceLog`]
//! self-serializes to JSON and Chrome `trace_event` format
//! (`rubik_telemetry::to_json` / `to_chrome_json`), and can decompose the
//! tail cohort's latency into queueing, service, backoff, and downtime:
//!
//! ```
//! use rubik_cluster::{fleet_trace, Cluster, FaultPlan, HealthAware, JoinShortestQueue};
//! use rubik_sim::{FixedFrequencyPolicy, SimConfig};
//! use rubik_workloads::AppProfile;
//!
//! let config = SimConfig::paper_simulated();
//! let trace = fleet_trace(&AppProfile::masstree(), 0.4, 4, 400, 11);
//! let mid = trace.duration() / 2.0;
//!
//! let cluster = Cluster::new(
//!     config.clone(),
//!     4,
//!     Box::new(HealthAware::new(JoinShortestQueue::new())),
//!     |_server| FixedFrequencyPolicy::new(config.dvfs.nominal()),
//! )
//! .with_fault_plan(FaultPlan::new().crash(2, mid).recover(2, mid * 1.5));
//!
//! let (outcome, _results, log) = cluster.run_traced(&trace);
//! assert_eq!(log.requests.len(), outcome.availability.offered);
//! assert_eq!(log.completed(), outcome.availability.completed);
//! // Server 2's crash shows up as a down window in the log...
//! assert_eq!(log.down_windows()[2].len(), 1);
//! // ...and the p95 cohort's latency decomposes into components.
//! let report = log.attribute(0.95).expect("requests completed");
//! println!("{}", report.table());
//! assert!(report.cohort > 0);
//! ```
//!
//! The same log powers the `trace_report` binary in `rubik-bench` and the
//! `--trace-out` flag every figure binary shares.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod fault;
mod fleet;
mod migrate;
mod outcome;
mod router;
mod topology;

pub use driver::{Cluster, ClusterError, ShardSpec};
pub use fault::{FaultEvent, FaultPlan, RequestPolicy};
pub use fleet::{
    CoreClass, FleetCommand, FleetController, FleetSpec, PegasusFleet, ServerPowerView,
};
pub use migrate::{Migration, Migrator, ThresholdMigrator};
pub use outcome::{AvailabilityStats, ClassTotals, ClusterOutcome, ServerOutcome};
pub use router::{
    HealthAware, JoinShortestQueue, Passthrough, PowerAware, RoundRobin, Router, ServerHealth,
    ServerView,
};
pub use rubik_load::{ArrivalSource, TraceSource};
pub use rubik_telemetry::{Telemetry, TraceLog};
pub use topology::{CorrelatedFaults, FailureTopology, StochasticFaults};

use rubik_load::{drain_to_trace, PoissonSource};
use rubik_sim::Trace;
use rubik_workloads::AppProfile;

/// Generates the arrival stream of a whole fleet: `servers` servers each at
/// `per_server_load` (fraction of one core's nominal capacity) produce a
/// pooled Poisson stream at `per_server_load × servers` times one core's
/// capacity.
///
/// A thin wrapper over [`try_fleet_trace`], which itself drains the steady
/// [`rubik_load::PoissonSource`] — the streamed and batch arrival processes
/// are the same bits by construction.
///
/// # Panics
///
/// Panics if `servers == 0` or the load is not positive and finite.
pub fn fleet_trace(
    profile: &AppProfile,
    per_server_load: f64,
    servers: usize,
    requests: usize,
    seed: u64,
) -> Trace {
    match try_fleet_trace(profile, per_server_load, servers, requests, seed) {
        Ok(trace) => trace,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`fleet_trace`]: returns [`ClusterError::EmptyFleet`] for a
/// zero-server fleet and [`ClusterError::InvalidLoad`] when the per-server
/// load is not positive and finite.
///
/// # Errors
///
/// See above; no other failure modes exist.
pub fn try_fleet_trace(
    profile: &AppProfile,
    per_server_load: f64,
    servers: usize,
    requests: usize,
    seed: u64,
) -> Result<Trace, ClusterError> {
    if servers == 0 {
        return Err(ClusterError::EmptyFleet);
    }
    let load = per_server_load * servers as f64;
    if !load.is_finite() || load <= 0.0 {
        return Err(ClusterError::InvalidLoad);
    }
    Ok(drain_to_trace(
        PoissonSource::new(profile.clone(), load, requests, seed),
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::Freq;

    #[test]
    fn fleet_trace_scales_rate_with_servers() {
        let profile = AppProfile::masstree();
        let one = fleet_trace(&profile, 0.4, 1, 4000, 7);
        let four = fleet_trace(&profile, 0.4, 4, 4000, 7);
        // Same request count, ~4x the arrival rate => ~1/4 the duration.
        let ratio = one.duration() / four.duration();
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
        // Offered load relative to one core scales accordingly.
        let nominal = Freq::from_mhz(2400);
        assert!(four.offered_load(nominal) > 3.0 * one.offered_load(nominal) / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn fleet_trace_rejects_zero_servers() {
        let _ = fleet_trace(&AppProfile::masstree(), 0.4, 0, 100, 1);
    }

    /// `fleet_trace` is now a wrapper over the streaming `PoissonSource`;
    /// its output must be bit-for-bit what the batch generator produced
    /// before the rewrite.
    #[test]
    fn fleet_trace_matches_batch_generator_bit_for_bit() {
        let profile = AppProfile::xapian();
        let wrapped = fleet_trace(&profile, 0.45, 8, 1000, 21);
        let batch =
            rubik_workloads::WorkloadGenerator::new(profile, 21).steady_trace(0.45 * 8.0, 1000);
        assert_eq!(wrapped.len(), batch.len());
        for (a, b) in wrapped.requests().iter().zip(batch.requests()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.class, b.class);
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
            assert_eq!(a.membound_time.to_bits(), b.membound_time.to_bits());
        }
    }

    #[test]
    fn try_fleet_trace_returns_typed_errors() {
        let profile = AppProfile::masstree();
        assert_eq!(
            try_fleet_trace(&profile, 0.4, 0, 10, 1).unwrap_err(),
            ClusterError::EmptyFleet
        );
        assert_eq!(
            try_fleet_trace(&profile, 0.0, 4, 10, 1).unwrap_err(),
            ClusterError::InvalidLoad
        );
        assert_eq!(
            try_fleet_trace(&profile, f64::NAN, 4, 10, 1).unwrap_err(),
            ClusterError::InvalidLoad
        );
        let trace = try_fleet_trace(&profile, 0.4, 4, 10, 1).unwrap();
        assert_eq!(trace.len(), 10);
    }
}
