//! Radix-2 complex FFT and FFT-accelerated convolution.
//!
//! The paper (Sec. 4.2, "Cost") uses FFTs to accelerate the convolutions that
//! build the target tail tables; this module provides that primitive without
//! any external dependency.

use std::f64::consts::PI;

/// A complex number represented as `(re, im)`.
///
/// A minimal internal representation; not exported as a general-purpose
/// complex type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    #[inline]
    fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    #[inline]
    fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// Computes the in-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Iterative Cooley-Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// Direct O(n·m) convolution; used for small inputs and as a test oracle.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-accelerated convolution of two real sequences.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();

    let mut fa: Vec<Complex> = a
        .iter()
        .map(|&x| Complex::new(x, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();
    let mut fb: Vec<Complex> = b
        .iter()
        .map(|&x| Complex::new(x, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();

    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for i in 0..n {
        fa[i] = fa[i].mul(fb[i]);
    }
    fft_in_place(&mut fa, true);

    // Clamp tiny negative values produced by floating-point error: the
    // convolution of non-negative PMFs must be non-negative.
    fa.truncate(out_len);
    fa.into_iter().map(|c| c.re.max(0.0)).collect()
}

/// Threshold (product of lengths) above which the FFT path is faster than the
/// direct algorithm.
const FFT_CROSSOVER: usize = 64 * 64;

/// Convolves two real sequences, automatically choosing direct or FFT.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.len().saturating_mul(b.len()) <= FFT_CROSSOVER {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let orig: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(a.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data, false);
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn direct_convolution_known_answer() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, 1.0, 0.5];
        let c = convolve_direct(&a, &b);
        assert_close(&c, &[0.0, 1.0, 2.5, 4.0, 1.5], 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 / 10.0).collect();
        let b: Vec<f64> = (0..73).map(|i| ((i * 13) % 7) as f64 / 6.0).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_close(&d, &f, 1e-8);
    }

    #[test]
    fn convolution_of_pmfs_sums_to_one() {
        let a = vec![0.25; 4];
        let b = vec![0.125; 8];
        let c = convolve(&a, &b);
        let total: f64 = c.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(convolve_fft(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        fft_in_place(&mut data, false);
    }

    #[test]
    fn fft_output_is_nonnegative_for_pmfs() {
        // Even with floating point error, convolving PMFs must not produce
        // negative mass.
        let a = vec![1e-12; 200];
        let b = vec![1e-12; 200];
        for v in convolve_fft(&a, &b) {
            assert!(v >= 0.0);
        }
    }
}
