//! Memory-system partitioning.
//!
//! RubikColoc partitions the shared LLC and memory bandwidth between
//! latency-critical and batch applications (as in Ubik and memory channel
//! partitioning, paper Sec. 6), so that the only interference left to manage
//! is in the small, quickly-refilled core-private state. This module models
//! the effect of that choice: with partitioning, the LC application's
//! memory-bound time is unchanged and batch applications see a reduced LLC
//! share; without partitioning, the LC application's memory-bound time is
//! inflated in proportion to the batch mix's memory intensity.

use serde::{Deserialize, Serialize};

use rubik_workloads::BatchMix;

/// Configuration of the shared memory system of a colocated server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystemConfig {
    /// Whether LLC capacity and memory bandwidth are partitioned.
    pub partitioned: bool,
    /// Fraction of the LLC reserved for the latency-critical application
    /// (only meaningful when `partitioned`).
    pub lc_llc_share: f64,
    /// Strength of unpartitioned interference: how much a fully memory-bound
    /// batch mix inflates the LC application's memory-bound time.
    pub unpartitioned_penalty: f64,
}

impl MemorySystemConfig {
    /// The configuration used by all colocation schemes in the paper's
    /// evaluation: partitioned, with half of the LLC reserved for the LC
    /// application.
    pub fn partitioned() -> Self {
        Self {
            partitioned: true,
            lc_llc_share: 0.5,
            unpartitioned_penalty: 0.8,
        }
    }

    /// An unpartitioned memory system (used to show why partitioning is
    /// required, not used by RubikColoc itself).
    pub fn unpartitioned() -> Self {
        Self {
            partitioned: false,
            lc_llc_share: 1.0,
            unpartitioned_penalty: 0.8,
        }
    }

    /// The LLC share available to batch applications.
    pub fn batch_llc_share(&self) -> f64 {
        if self.partitioned {
            (1.0 - self.lc_llc_share).max(0.05)
        } else {
            1.0
        }
    }

    /// Multiplier applied to the LC application's memory-bound time when
    /// colocated with the given batch mix.
    pub fn lc_membound_inflation(&self, mix: &BatchMix) -> f64 {
        if self.partitioned {
            1.0
        } else {
            1.0 + self.unpartitioned_penalty * mix.mean_mem_intensity()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.05..=0.95).contains(&self.lc_llc_share) {
            return Err("LC LLC share must be in [0.05, 0.95]".into());
        }
        if self.unpartitioned_penalty < 0.0 {
            return Err("unpartitioned penalty must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::partitioned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_system_does_not_inflate_lc_memory_time() {
        let cfg = MemorySystemConfig::partitioned();
        for mix in BatchMix::paper_mixes(1) {
            assert_eq!(cfg.lc_membound_inflation(&mix), 1.0);
        }
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn unpartitioned_system_inflates_with_mix_memory_intensity() {
        let cfg = MemorySystemConfig::unpartitioned();
        let mixes = BatchMix::paper_mixes(2);
        for mix in &mixes {
            let inflation = cfg.lc_membound_inflation(mix);
            assert!(inflation > 1.0);
            assert!(inflation <= 1.0 + cfg.unpartitioned_penalty);
        }
    }

    #[test]
    fn batch_share_is_the_complement_of_lc_share() {
        let cfg = MemorySystemConfig::partitioned();
        assert!((cfg.batch_llc_share() - 0.5).abs() < 1e-12);
        let un = MemorySystemConfig::unpartitioned();
        assert_eq!(un.batch_llc_share(), 1.0);
    }

    #[test]
    fn validation_catches_extreme_shares() {
        let mut cfg = MemorySystemConfig::partitioned();
        cfg.lc_llc_share = 0.99;
        assert!(cfg.validate().is_err());
    }
}
