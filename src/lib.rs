//! Workspace root package.
//!
//! Exists to host the repository-level integration tests (`tests/`) and
//! examples (`examples/`); the actual implementation lives in the `rubik-*`
//! crates under `crates/`. Everything is re-exported from the [`rubik`]
//! facade crate.

pub use rubik::*;
