//! Fleet-level power management: global tail, fleet power, and cap holding
//! across `budget × fleet × router × migration`, with one Rubik controller
//! per server and a `PegasusFleet` capper over the whole cluster.
//!
//! There is no such figure in the paper — its evaluation is per-core — but
//! this is the experiment its datacenter framing points at once fleets
//! exist: N servers (optionally a big/little mix) behind a load balancer,
//! each running Rubik against its own bound, with a Pegasus-style global
//! controller apportioning a watt budget into per-server frequency ceilings
//! and a threshold migrator rebalancing queue pile-ups. The grid runs on
//! `rubik-sweep` (one cluster per cell); pass `--threads N` to control the
//! worker pool, `--requests N` for the per-server request count, `--seed N`
//! for the trace seed, and `--trace-out PATH` to write a telemetry trace
//! of the representative cell (the capped big/little fleet with routing
//! and migration live). `--load-shape SPEC` (`ramp:0.2:0.7`,
//! `step:0.3:0.6`, `diurnal:0.45:0.2`, …) replaces the steady arrival
//! process with a time-varying non-homogeneous Poisson stream from
//! `rubik-load`, sized to the same request budget; output without the flag
//! is byte-identical to before the flag existed.
//!
//! Columns: `budget_w` is the per-server budget share ("inf" = uncapped),
//! `max_epoch_w` the largest fleet power over any controller epoch (the
//! number the cap is judged by), `migrated` the requests moved by the
//! migrator, and `big_share` the fraction of requests served by the "big"
//! class (1.0 for the homogeneous fleet).

use rubik::cluster::{
    fleet_trace, FleetSpec, PegasusFleet, PowerAware, RoundRobin, Router, ThresholdMigrator,
};
use rubik::load::{drain_to_trace, ShapedSource};
use rubik::{
    AppProfile, Cluster, CorePowerModel, DvfsConfig, Freq, RubikConfig, RubikController, SimConfig,
    SweepSpec, Trace, WorkloadGenerator,
};
use rubik_bench::{print_header, BenchArgs, LoadShapeArg};

/// Per-server watt shares of the global budget; `f64::INFINITY` = uncapped.
/// A busy core draws 6 W at nominal and 1.6 W at the minimum level; at this
/// load the uncapped fleet averages ~2 W/server, so 3.2 W caps mildly
/// (ceiling ~1.6 GHz) and 2.5 W caps hard (ceiling ~1.2 GHz).
const BUDGETS: [f64; 3] = [f64::INFINITY, 3.2, 2.5];
const LOAD: f64 = 0.45;
const EPOCH: f64 = 0.02;
const SERVERS: usize = 8;

fn big_config() -> SimConfig {
    SimConfig::paper_simulated()
}

fn little_config() -> SimConfig {
    SimConfig::paper_simulated().with_dvfs(DvfsConfig::new(
        Freq::from_mhz(800),
        Freq::from_mhz(1800),
        200,
        Freq::from_mhz(1200),
        4e-6,
    ))
}

fn fleet_spec(idx: usize) -> FleetSpec {
    match idx {
        0 => FleetSpec::homogeneous(big_config(), SERVERS),
        _ => FleetSpec::new()
            .class("big", big_config(), 1.0, SERVERS / 2)
            .class("little", little_config(), 0.5, SERVERS / 2),
    }
}

const FLEET_NAMES: [&str; 2] = ["hom-8", "biglittle-8"];

fn router(idx: usize) -> Box<dyn Router> {
    match idx {
        0 => Box::new(RoundRobin::new()),
        _ => Box::new(PowerAware::default()),
    }
}

const MIGRATION_NAMES: [&str; 2] = ["off", "threshold"];

/// The fleet's arrival stream: the classic steady pooled Poisson process
/// when `--load-shape` is absent (byte-identical to the pre-flag binary),
/// or a shaped non-homogeneous Poisson stream whose window is sized so the
/// run draws roughly the same request budget.
fn build_trace(
    shape: Option<LoadShapeArg>,
    profile: &AppProfile,
    servers: usize,
    requests: usize,
    seed: u64,
) -> Trace {
    match shape {
        None => fleet_trace(profile, LOAD, servers, requests, seed),
        Some(arg) => {
            let capacity = WorkloadGenerator::new(profile.clone(), seed).steady_rate(1.0);
            let duration = requests as f64 / (arg.average_load(LOAD) * capacity * servers as f64);
            let source = ShapedSource::new(profile.clone(), arg.to_shape(LOAD, duration), seed)
                .for_fleet(servers);
            drain_to_trace(source, None)
        }
    }
}

struct Row {
    tail_norm: f64,
    fleet_power: f64,
    max_epoch: f64,
    j_per_req: f64,
    migrated: usize,
    big_share: f64,
}

fn main() {
    let args = BenchArgs::parse();
    let per_server_requests = args.requests.unwrap_or(150);
    let seed = args.seed.unwrap_or(2015);
    let power = CorePowerModel::haswell_like();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();

    let spec = SweepSpec::new()
        .axis("budget", BUDGETS.len())
        .axis("fleet", FLEET_NAMES.len())
        .axis("router", 2)
        .axis("migration", MIGRATION_NAMES.len());

    let rows: Vec<Row> = args
        .executor()
        .run(&spec, |cell| {
            let fleet = fleet_spec(cell.get("fleet"));
            // The trace depends only on the fleet axis: budgets, routers,
            // and migration policies are compared on identical streams.
            let trace = build_trace(
                args.load_shape,
                &profile,
                fleet.len(),
                per_server_requests * fleet.len(),
                seed + cell.get("fleet") as u64,
            );
            let mut cluster =
                Cluster::from_spec(&fleet, router(cell.get("router")), |_i, config| {
                    RubikController::seeded_for_trace(
                        RubikConfig::new(bound).with_profiling_window(1024),
                        config.dvfs.clone(),
                        &trace,
                        256,
                    )
                })
                .with_power(power);
            let budget = BUDGETS[cell.get("budget")];
            if budget.is_finite() {
                cluster = cluster.with_fleet_controller(Box::new(
                    PegasusFleet::new(budget * fleet.len() as f64, power).with_epoch(EPOCH),
                ));
            }
            if cell.get("migration") == 1 {
                cluster = cluster
                    .with_migrator(Box::new(ThresholdMigrator::new(2, 1).with_interval(2e-3)));
            }
            let (outcome, results) = cluster.run_with_results(&trace);
            let big_requests: usize = outcome
                .class_totals()
                .iter()
                .filter(|t| t.class == 0)
                .map(|t| t.requests)
                .sum();
            Row {
                tail_norm: outcome.tail_latency / bound,
                fleet_power: outcome.fleet_power,
                max_epoch: rubik_bench::max_epoch_power(&results, outcome.duration, EPOCH, &power),
                j_per_req: outcome.energy_per_request(),
                migrated: outcome.migrated_requests,
                big_share: big_requests as f64 / outcome.requests.max(1) as f64,
            }
        })
        .into_results();

    println!(
        "# Fleet power management: {} with Rubik per server, bound {:.2} ms, \
         {} requests/server, epoch {} ms",
        profile.name(),
        bound * 1e3,
        per_server_requests,
        EPOCH * 1e3,
    );
    // Only shaped runs get the extra header line, keeping the flag-absent
    // stdout byte-identical to the golden capture.
    if let Some(arg) = args.load_shape {
        println!("# load shape: {} (per-server loads)", arg.label());
    }
    print_header(&[
        "budget_w",
        "fleet",
        "router",
        "migration",
        "tail_norm",
        "fleet_power_w",
        "max_epoch_w",
        "j_per_req",
        "migrated",
        "big_share",
    ]);
    let router_names: [String; 2] = [router(0).name().to_string(), router(1).name().to_string()];
    for cell in spec.cells() {
        let r = &rows[cell.index()];
        let budget = BUDGETS[cell.get("budget")];
        let budget = if budget.is_finite() {
            format!("{budget:.1}")
        } else {
            "inf".to_string()
        };
        println!(
            "{}\t{}\t{}\t{}\t{:.3}\t{:.2}\t{:.2}\t{:.5}\t{}\t{:.3}",
            budget,
            FLEET_NAMES[cell.get("fleet")],
            router_names[cell.get("router")],
            MIGRATION_NAMES[cell.get("migration")],
            r.tail_norm,
            r.fleet_power,
            r.max_epoch,
            r.j_per_req,
            r.migrated,
            r.big_share,
        );
    }

    if args.tracing() {
        // Re-run the representative cell — the mildly-capped big/little
        // fleet behind the capacity-aware router with migration on — with
        // telemetry recording (bit-identical to the grid cell by the
        // neutrality contract) and emit its trace.
        let fleet = fleet_spec(1);
        let trace = build_trace(
            args.load_shape,
            &profile,
            fleet.len(),
            per_server_requests * fleet.len(),
            seed + 1,
        );
        let cluster = Cluster::from_spec(&fleet, router(1), |_i, config| {
            RubikController::seeded_for_trace(
                RubikConfig::new(bound).with_profiling_window(1024),
                config.dvfs.clone(),
                &trace,
                256,
            )
        })
        .with_power(power)
        .with_fleet_controller(Box::new(
            PegasusFleet::new(BUDGETS[1] * fleet.len() as f64, power).with_epoch(EPOCH),
        ))
        .with_migrator(Box::new(ThresholdMigrator::new(2, 1).with_interval(2e-3)));
        let (_, _, log) = cluster.run_traced(&trace);
        args.emit_trace(&log);
    }
}
