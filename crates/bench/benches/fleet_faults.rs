//! Serving through failures at scale: a 100-server capped Rubik fleet loses
//! ten servers in a crash wave and gets them back, under a scripted
//! [`FaultPlan`](rubik::FaultPlan).
//!
//! The experiment itself lives in [`rubik_bench::faults`], shared with the
//! `trace_report` binary so the recorded numbers and the attribution tables
//! always describe the same runs. Three things must hold, and all three are
//! recorded in the `"fleet_faults"` section of `BENCH_cluster.json`:
//!
//! 1. **The watt cap holds through the wave.** `PegasusFleet` re-apportions
//!    its budget over the survivors, so no epoch window — before, during,
//!    or after the outage — exceeds the budget.
//! 2. **Goodput recovers.** Completions-within-deadline dip while a tenth
//!    of the fleet is dark and climb back after recovery; the recorded
//!    recovery curve (per-window goodput fraction) shows the dip and the
//!    return.
//! 3. **The rescue stack earns its keep.** Health-aware routing plus
//!    timeouts and retries strictly cuts deadline violations against a
//!    failure-blind baseline on the same fault schedule.
//!
//! The measured runs are re-run with telemetry recording (bit-identical by
//! the neutrality contract) and their tail-attribution breakdowns — where
//! the p95 cohort's latency goes: queueing, service, backoff, downtime —
//! land in the `"tail_attribution"` section of the same file.
//!
//! Criterion tracks the wall time of the faulted runs (the fault-layer
//! overhead) in `BENCH_controller.json`.
//!
//! Env knobs: `RUBIK_FLEET_FAULTS_REQUESTS` (default 60) sets requests per
//! server; `RUBIK_FLEET_FAULTS_TRACE` names a file to receive the
//! health-aware run's telemetry trace (Chrome `trace_event` JSON if it ends
//! in `.trace.json`, `rubik-trace-v1` otherwise — CI uploads one as an
//! artifact); `RUBIK_BENCH_SAMPLE_MS` / `RUBIK_BENCH_SAMPLES` are the usual
//! criterion smoke knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rubik::telemetry::{to_chrome_json, to_json, AttributionReport};
use rubik::{CorePowerModel, RunResult, Trace};
use rubik_bench::faults::FaultsScenario;

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");
const CLUSTER_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");

fn scenario() -> FaultsScenario {
    let mut scenario = FaultsScenario::default();
    if let Some(requests) = std::env::var("RUBIK_FLEET_FAULTS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        scenario.requests_per_server = requests;
    }
    scenario
}

/// Goodput fraction (completions within deadline / arrivals) per
/// epoch-aligned window: the recovery curve.
fn recovery_curve(
    results: &[RunResult],
    trace: &Trace,
    deadline: f64,
    duration: f64,
    windows: usize,
) -> Vec<f64> {
    let window = duration / windows as f64;
    let mut offered = vec![0usize; windows];
    for r in trace.requests() {
        let w = ((r.arrival / window) as usize).min(windows - 1);
        offered[w] += 1;
    }
    let mut good = vec![0usize; windows];
    for r in results {
        for rec in r.records() {
            if rec.completion - rec.arrival <= deadline {
                let w = ((rec.arrival / window) as usize).min(windows - 1);
                good[w] += 1;
            }
        }
    }
    offered
        .iter()
        .zip(&good)
        .map(|(&o, &g)| if o == 0 { 1.0 } else { g as f64 / o as f64 })
        .collect()
}

/// One attribution object for the JSON section, components in milliseconds.
fn attribution_json(report: &AttributionReport) -> String {
    let m = &report.cohort_mean;
    format!(
        "{{\"cohort\": {}, \"threshold_ms\": {:.4}, \"queueing_ms\": {:.4}, \
         \"service_ms\": {:.4}, \"backoff_ms\": {:.4}, \"downtime_ms\": {:.4}, \
         \"total_ms\": {:.4}}}",
        report.cohort,
        report.threshold * 1e3,
        m.queueing * 1e3,
        m.service * 1e3,
        m.backoff * 1e3,
        m.downtime * 1e3,
        m.total * 1e3,
    )
}

fn bench_fleet_faults(c: &mut Criterion) {
    let scenario = scenario();
    let per_server = scenario.requests_per_server;
    let budget = scenario.budget();
    let deadline = scenario.deadline();
    let trace = scenario.trace();

    let mut group = c.benchmark_group("fleet_faults");
    for (label, aware) in [("blind", false), ("health_aware", true)] {
        group.bench_with_input(BenchmarkId::new("mode", label), &aware, |b, &aware| {
            b.iter(|| {
                let (outcome, _) = scenario.run(&trace, aware);
                assert_eq!(outcome.availability.offered, trace.len());
                outcome.fleet_energy // checksum against dead-code elimination
            })
        });
    }
    group.finish();

    // One measured run per mode for the recorded experiment numbers — with
    // telemetry recording, which the neutrality suite proves is invisible
    // to every simulation output.
    let (blind, blind_results, blind_log) = scenario.run_traced(&trace, false);
    let (aware, aware_results, aware_log) = scenario.run_traced(&trace, true);
    let power = CorePowerModel::haswell_like();
    let max_power =
        rubik_bench::max_epoch_power(&aware_results, aware.duration, scenario.epoch, &power);
    // The blind fleet's curve dips while the wave is down and climbs back
    // after recovery; the rescue stack's job is to flatten that dip.
    let blind_curve = recovery_curve(&blind_results, &trace, deadline, blind.duration, 12);
    let aware_curve = recovery_curve(&aware_results, &trace, deadline, aware.duration, 12);
    // The wave is down for [0.33, 0.66) of the run: windows 4..8 of 12.
    let during = blind_curve[4..8]
        .iter()
        .fold(f64::INFINITY, |m, &g| m.min(g));
    let after = blind_curve[10];
    let aware_during = aware_curve[4..8]
        .iter()
        .fold(f64::INFINITY, |m, &g| m.min(g));
    let b = &blind.availability;
    let a = &aware.availability;

    let curve_json = |curve: &[f64]| {
        curve
            .iter()
            .map(|g| format!("{g:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let blind_curve_json = curve_json(&blind_curve);
    let aware_curve_json = curve_json(&aware_curve);
    let section = format!(
        "{{\n    \"servers\": {},\n    \"crashed\": {},\n    \
         \"load_per_server\": {},\n    \"requests_per_server\": {per_server},\n    \
         \"policy\": \"rubik-per-server\",\n    \"budget_w\": {budget:.1},\n    \
         \"epoch_s\": {},\n    \"deadline_ms\": {:.3},\n    \
         \"blind\": {{\"router\": \"jsq\", \"goodput_fraction\": {:.4}, \
         \"deadline_exceeded\": {}, \"lost\": {}, \
         \"recovery_curve_goodput\": [{blind_curve_json}]}},\n    \
         \"health_aware\": {{\"router\": \"health-aware(jsq) + retries\", \
         \"goodput_fraction\": {:.4}, \"deadline_exceeded\": {}, \"lost\": {}, \
         \"timeouts\": {}, \"retries\": {}, \"requeued_on_failure\": {}, \
         \"max_epoch_power_w\": {max_power:.2}, \
         \"recovery_curve_goodput\": [{aware_curve_json}]}},\n    \
         \"cap_held_under_failures\": {},\n    \"goodput_recovers\": {},\n    \
         \"rescue_flattens_the_dip\": {},\n    \
         \"rescue_cuts_deadline_misses\": {}\n  }}",
        scenario.fleet,
        scenario.crashed,
        scenario.load,
        scenario.epoch,
        deadline * 1e3,
        b.goodput_fraction(),
        b.deadline_exceeded,
        b.lost,
        a.goodput_fraction(),
        a.deadline_exceeded,
        a.lost,
        a.timeouts,
        a.retries,
        a.requeued_on_failure,
        max_power <= budget,
        after > during,
        aware_during > during,
        a.deadline_exceeded < b.deadline_exceeded,
    );
    match rubik_bench::merge_bench_section(CLUSTER_JSON, "fleet_faults", &section) {
        Ok(()) => println!("fleet_faults: merged into {CLUSTER_JSON}"),
        Err(e) => eprintln!("fleet_faults: could not write {CLUSTER_JSON}: {e}"),
    }

    // Where the tail goes: p95 cohort attribution for both stacks. The
    // blind run's tail is dominated by downtime (requests parked on dead
    // servers); the rescue stack converts that into bounded retry backoff.
    let quantile = 0.95;
    let (blind_attr, aware_attr) = (blind_log.attribute(quantile), aware_log.attribute(quantile));
    if let (Some(blind_attr), Some(aware_attr)) = (&blind_attr, &aware_attr) {
        let section = format!(
            "{{\n    \"quantile\": {quantile},\n    \"blind\": {},\n    \
             \"health_aware\": {},\n    \
             \"rescue_removes_downtime_from_the_tail\": {}\n  }}",
            attribution_json(blind_attr),
            attribution_json(aware_attr),
            aware_attr.cohort_mean.downtime < blind_attr.cohort_mean.downtime,
        );
        match rubik_bench::merge_bench_section(CLUSTER_JSON, "tail_attribution", &section) {
            Ok(()) => println!("tail_attribution: merged into {CLUSTER_JSON}"),
            Err(e) => eprintln!("tail_attribution: could not write {CLUSTER_JSON}: {e}"),
        }
    }

    if let Ok(path) = std::env::var("RUBIK_FLEET_FAULTS_TRACE") {
        if !path.is_empty() {
            let body = if path.ends_with(".trace.json") {
                to_chrome_json(&aware_log)
            } else {
                to_json(&aware_log)
            };
            match std::fs::write(&path, body) {
                Ok(()) => println!("fleet_faults: wrote telemetry trace to {path}"),
                Err(e) => eprintln!("fleet_faults: could not write {path}: {e}"),
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).output_json(BENCH_JSON);
    targets = bench_fleet_faults
}
criterion_main!(benches);
