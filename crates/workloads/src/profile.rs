//! The five latency-critical application models.
//!
//! Each profile captures the properties of one of the paper's benchmarks
//! (Table 3, Fig. 2, Sec. 5.2–5.5) that the evaluation actually depends on:
//!
//! * the mean per-request service time at the nominal 2.4 GHz frequency,
//! * the dispersion (coefficient of variation) and shape of the service-time
//!   distribution — masstree and moses are tightly clustered, shore, xapian
//!   and specjbb are much more variable,
//! * the fraction of service time that is memory-bound (unaffected by core
//!   DVFS),
//! * the number of requests the paper simulates.

use serde::{Deserialize, Serialize};

use rubik_sim::Freq;
use rubik_stats::ServiceSampler;

/// Shape of the per-request work distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceShape {
    /// Tightly clustered around the mean (log-normal with small CoV).
    Clustered,
    /// Moderately variable (log-normal with CoV near 0.5).
    Variable,
    /// Highly variable / heavy-tailed (log-normal with large CoV).
    HeavyTailed,
    /// Two distinct request classes (short and long), the structure
    /// Adrenaline-style schemes exploit.
    Bimodal,
}

/// Model of one latency-critical application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    name: String,
    description: String,
    /// Mean service time (seconds) at the nominal frequency.
    mean_service_time: f64,
    /// Coefficient of variation of per-request work.
    cov: f64,
    /// Shape of the work distribution.
    shape: ServiceShape,
    /// Fraction of nominal-frequency service time that is memory-bound.
    mem_fraction: f64,
    /// Number of requests the paper simulates for this application (Table 3).
    paper_requests: usize,
    /// Workload configuration string from Table 3.
    workload_config: String,
}

impl AppProfile {
    /// `masstree`: high-performance key-value store, mycsb-a (50% GETs/PUTs),
    /// 1.1 GB table. Very tightly clustered, short requests (median service
    /// time ≈ 240 µs, Sec. 5.5); latency dominated by queueing (Table 1).
    pub fn masstree() -> Self {
        Self {
            name: "masstree".into(),
            description: "high-performance key-value store".into(),
            mean_service_time: 250e-6,
            cov: 0.10,
            shape: ServiceShape::Clustered,
            mem_fraction: 0.35,
            paper_requests: 9000,
            workload_config: "mycsb-a (50% GETs/PUTs), 1.1GB table".into(),
        }
    }

    /// `moses`: statistical machine translation in phrase mode. Long,
    /// uniform requests (median service time ≈ 3.95 ms, Sec. 5.5).
    pub fn moses() -> Self {
        Self {
            name: "moses".into(),
            description: "statistical machine translation".into(),
            mean_service_time: 4.0e-3,
            cov: 0.25,
            shape: ServiceShape::Clustered,
            mem_fraction: 0.25,
            paper_requests: 900,
            workload_config: "opensubtitles.org corpora, phrase mode".into(),
        }
    }

    /// `shore`: OLTP storage manager running TPC-C with 10 warehouses.
    /// Variable service times (Table 1 correlation with service time 0.56).
    pub fn shore() -> Self {
        Self {
            name: "shore".into(),
            description: "online transaction processing database (TPC-C)".into(),
            mean_service_time: 600e-6,
            cov: 0.80,
            shape: ServiceShape::Variable,
            mem_fraction: 0.30,
            paper_requests: 7500,
            workload_config: "TPC-C, 10 warehouses".into(),
        }
    }

    /// `specjbb`: Java middleware benchmark, 1 warehouse. Short requests with
    /// highly variable service times (Sec. 5.3).
    pub fn specjbb() -> Self {
        Self {
            name: "specjbb".into(),
            description: "Java real-time middleware benchmark".into(),
            mean_service_time: 150e-6,
            cov: 1.10,
            shape: ServiceShape::HeavyTailed,
            mem_fraction: 0.25,
            paper_requests: 37500,
            workload_config: "1 warehouse".into(),
        }
    }

    /// `xapian`: web search engine configured as a leaf node, English
    /// Wikipedia with Zipfian query popularity. Variable service times driven
    /// by query length/popularity.
    pub fn xapian() -> Self {
        Self {
            name: "xapian".into(),
            description: "web search engine leaf node".into(),
            mean_service_time: 1.2e-3,
            cov: 0.65,
            shape: ServiceShape::Variable,
            mem_fraction: 0.30,
            paper_requests: 6000,
            workload_config: "English Wikipedia, zipfian query popularity".into(),
        }
    }

    /// All five latency-critical applications, in the order the paper lists
    /// them in its figures.
    pub fn all() -> Vec<AppProfile> {
        vec![
            Self::masstree(),
            Self::moses(),
            Self::shore(),
            Self::specjbb(),
            Self::xapian(),
        ]
    }

    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// A custom profile, for tests and exploratory experiments.
    ///
    /// # Panics
    ///
    /// Panics if `mean_service_time <= 0`, `cov < 0`, or `mem_fraction` is
    /// outside `[0, 1)`.
    pub fn custom(
        name: &str,
        mean_service_time: f64,
        cov: f64,
        shape: ServiceShape,
        mem_fraction: f64,
    ) -> Self {
        assert!(
            mean_service_time > 0.0,
            "mean service time must be positive"
        );
        assert!(cov >= 0.0, "coefficient of variation must be non-negative");
        assert!(
            (0.0..1.0).contains(&mem_fraction),
            "memory fraction must be in [0, 1)"
        );
        Self {
            name: name.into(),
            description: "custom application profile".into(),
            mean_service_time,
            cov,
            shape,
            mem_fraction,
            paper_requests: 1000,
            workload_config: "custom".into(),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Short human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Workload configuration string (Table 3).
    pub fn workload_config(&self) -> &str {
        &self.workload_config
    }

    /// Mean service time at the nominal frequency, in seconds.
    pub fn mean_service_time(&self) -> f64 {
        self.mean_service_time
    }

    /// Coefficient of variation of per-request work.
    pub fn cov(&self) -> f64 {
        self.cov
    }

    /// Shape of the work distribution.
    pub fn shape(&self) -> ServiceShape {
        self.shape
    }

    /// Fraction of nominal-frequency service time that is memory-bound.
    pub fn mem_fraction(&self) -> f64 {
        self.mem_fraction
    }

    /// Number of requests simulated in the paper (Table 3).
    pub fn paper_requests(&self) -> usize {
        self.paper_requests
    }

    /// Returns a copy with a different memory-bound fraction. Used to model
    /// the real-system configuration (Sec. 5.5), where the full 8 MB LLC
    /// makes applications less memory-bound and more variable.
    pub fn with_mem_fraction(mut self, mem_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&mem_fraction));
        self.mem_fraction = mem_fraction;
        self
    }

    /// Returns a copy with a different coefficient of variation.
    pub fn with_cov(mut self, cov: f64) -> Self {
        assert!(cov >= 0.0);
        self.cov = cov;
        self
    }

    /// Mean compute demand in core cycles (work that scales with frequency),
    /// assuming the given nominal frequency.
    pub fn mean_compute_cycles(&self, nominal: Freq) -> f64 {
        self.mean_service_time * (1.0 - self.mem_fraction) * nominal.hz()
    }

    /// Mean memory-bound time in seconds (work core DVFS cannot accelerate).
    pub fn mean_membound_time(&self) -> f64 {
        self.mean_service_time * self.mem_fraction
    }

    /// The sampler for the per-request work factor (mean 1.0), matching the
    /// profile's shape and CoV.
    pub fn work_factor_sampler(&self) -> ServiceSampler {
        match self.shape {
            ServiceShape::Clustered | ServiceShape::Variable | ServiceShape::HeavyTailed => {
                ServiceSampler::LogNormal {
                    mean: 1.0,
                    cov: self.cov,
                }
            }
            ServiceShape::Bimodal => {
                // Choose short/long values with a 10% long fraction that
                // reproduce the requested CoV around a mean of 1.
                let long_fraction: f64 = 0.1;
                let spread = self.cov / (long_fraction * (1.0 - long_fraction)).sqrt();
                let short = (1.0 - spread * long_fraction).max(0.05);
                let long = short + spread;
                ServiceSampler::Bimodal {
                    short,
                    long,
                    long_fraction,
                }
            }
        }
    }

    /// Maximum sustainable throughput (requests per second) at frequency `f`:
    /// the definition of 100% load used throughout the evaluation
    /// (Fig. 9: "a load of 100% corresponds to the maximum request rate at
    /// nominal frequency").
    pub fn capacity_qps(&self, f: Freq, nominal: Freq) -> f64 {
        let compute = self.mean_service_time * (1.0 - self.mem_fraction) * nominal.hz() / f.hz();
        let service = compute + self.mean_membound_time();
        1.0 / service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_distinct_and_well_formed() {
        let all = AppProfile::all();
        assert_eq!(all.len(), 5);
        let mut names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        for p in &all {
            assert!(p.mean_service_time() > 0.0);
            assert!(p.cov() >= 0.0);
            assert!((0.0..1.0).contains(&p.mem_fraction()));
            assert!(p.paper_requests() > 0);
        }
    }

    #[test]
    fn paper_request_counts_match_table3() {
        assert_eq!(AppProfile::xapian().paper_requests(), 6000);
        assert_eq!(AppProfile::masstree().paper_requests(), 9000);
        assert_eq!(AppProfile::moses().paper_requests(), 900);
        assert_eq!(AppProfile::shore().paper_requests(), 7500);
        assert_eq!(AppProfile::specjbb().paper_requests(), 37500);
    }

    #[test]
    fn masstree_is_tight_and_moses_is_long() {
        let masstree = AppProfile::masstree();
        let moses = AppProfile::moses();
        assert!(masstree.cov() < 0.2);
        assert!(moses.mean_service_time() > 10.0 * masstree.mean_service_time());
        assert!(AppProfile::specjbb().cov() > AppProfile::masstree().cov());
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(AppProfile::by_name("Masstree").is_some());
        assert!(AppProfile::by_name("XAPIAN").is_some());
        assert!(AppProfile::by_name("redis").is_none());
    }

    #[test]
    fn compute_and_memory_split_adds_up() {
        let nominal = Freq::from_mhz(2400);
        for p in AppProfile::all() {
            let total = p.mean_compute_cycles(nominal) / nominal.hz() + p.mean_membound_time();
            assert!((total - p.mean_service_time()).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_decreases_at_lower_frequency() {
        let p = AppProfile::xapian();
        let nominal = Freq::from_mhz(2400);
        let cap_nominal = p.capacity_qps(nominal, nominal);
        let cap_low = p.capacity_qps(Freq::from_mhz(800), nominal);
        let cap_high = p.capacity_qps(Freq::from_mhz(3400), nominal);
        assert!(cap_low < cap_nominal);
        assert!(cap_high > cap_nominal);
        assert!((cap_nominal - 1.0 / p.mean_service_time()).abs() < 1e-6);
    }

    #[test]
    fn work_factor_sampler_has_unit_mean() {
        use rubik_stats::DeterministicRng;
        let mut rng = DeterministicRng::new(1);
        for p in AppProfile::all() {
            let s = p.work_factor_sampler();
            let mean: f64 = (0..20_000).map(|_| s.sample(&mut rng)).sum::<f64>() / 20_000.0;
            assert!((mean - 1.0).abs() < 0.1, "{}: mean {}", p.name(), mean);
        }
    }

    #[test]
    fn bimodal_shape_produces_two_classes() {
        let p = AppProfile::custom("bimodal", 1e-3, 0.8, ServiceShape::Bimodal, 0.2);
        match p.work_factor_sampler() {
            ServiceSampler::Bimodal { short, long, .. } => assert!(long > short),
            other => panic!("expected bimodal sampler, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn custom_rejects_invalid_mem_fraction() {
        let _ = AppProfile::custom("bad", 1e-3, 0.5, ServiceShape::Variable, 1.5);
    }
}
