//! Fig. 10: responsiveness to load changes — for each application, the load
//! steps 25% -> 50% -> 75% (4 s each); the harness prints the rolling tail
//! latency and power of StaticOracle, AdrenalineOracle (replayed) and Rubik,
//! and Rubik's frequency over time.

use rubik::core::replay;
use rubik::{
    AdrenalineOracle, AppProfile, FixedFrequencyPolicy, LoadProfile, Server, StaticOracle,
    WorkloadGenerator,
};
use rubik_bench::{print_header, BenchArgs, Harness, TAIL_QUANTILE};

fn main() {
    let harness = BenchArgs::parse().apply(Harness::new());
    for (i, app) in AppProfile::all().iter().enumerate() {
        let bound = harness.latency_bound(app);
        let mut generator = WorkloadGenerator::new(app.clone(), 300 + i as u64);
        let trace = generator.profile_trace(&LoadProfile::fig10_steps());

        // StaticOracle and AdrenalineOracle tuned for the initial 25% load.
        let tuning = harness.trace(app, 0.25, 400 + i as u64);
        let static_freq = StaticOracle::new(harness.sim.dvfs.clone(), TAIL_QUANTILE)
            .lowest_feasible_freq(&tuning, bound);
        let mut static_policy = FixedFrequencyPolicy::new(static_freq);
        let static_result = Server::new(harness.sim.clone()).run(&trace, &mut static_policy);

        let adren = AdrenalineOracle::new(harness.sim.dvfs.clone(), TAIL_QUANTILE).train(
            &tuning,
            bound,
            harness.active_power(),
        );
        let adren_records = replay(&trace, &adren.assign(&trace));
        let mut adren_roll_tracker = rubik::stats::RollingTailTracker::new(0.2, TAIL_QUANTILE);
        let mut adren_roll = Vec::new();
        let mut sorted = adren_records.clone();
        sorted.sort_by(|a, b| a.completion.partial_cmp(&b.completion).unwrap());
        for r in &sorted {
            adren_roll_tracker.record(r.completion, r.latency());
            adren_roll.push((r.completion, adren_roll_tracker.tail().unwrap_or(0.0)));
        }

        let (_, rubik_result) = harness.run_rubik(&trace, bound, true);

        println!(
            "# Fig. 10: {} — load 25%->50%->75%, bound {:.0} us, StaticOracle @ {}",
            app.name(),
            bound * 1e6,
            static_freq
        );
        print_header(&[
            "t_s",
            "load",
            "static_tail_us",
            "adrenaline_tail_us",
            "rubik_tail_us",
            "rubik_power_W",
            "rubik_freq_ghz",
        ]);
        let window = 0.2;
        let static_roll = static_result.rolling_tail(window, TAIL_QUANTILE);
        let rubik_roll = rubik_result.rolling_tail(window, TAIL_QUANTILE);
        let freq_trace = rubik_result.freq_trace();
        let at = |roll: &[(f64, f64)], t: f64| {
            roll.iter()
                .rfind(|&&(x, _)| x <= t)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        for step in 1..=24 {
            let t = step as f64 * 0.5;
            let res = rubik_result.freq_residency_between(t - window, t);
            let rubik_power = if res.total_time() > 0.0 {
                harness.power.average_power(&res)
            } else {
                0.0
            };
            let freq = freq_trace
                .iter()
                .rfind(|&&(x, _)| x <= t)
                .map(|&(_, f)| f.ghz())
                .unwrap_or(0.0);
            println!(
                "{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.2}\t{:.1}",
                t,
                LoadProfile::fig10_steps().load_at(t - 1e-3),
                at(&static_roll, t) * 1e6,
                at(&adren_roll, t) * 1e6,
                at(&rubik_roll, t) * 1e6,
                rubik_power,
                freq
            );
        }
        println!();
    }
}
