//! Thermal design power (TDP) accounting.
//!
//! The paper's chip has a 65 W TDP (Table 2); hardware-coordinated DVFS
//! schemes (HW-T, HW-TPW in Sec. 7) choose per-core frequencies subject to
//! the package staying under TDP, and batch applications never run above
//! nominal frequency "to stay within the TDP" (Sec. 7). [`Tdp`] provides
//! those checks.

use serde::{Deserialize, Serialize};

use rubik_sim::{DvfsConfig, Freq};

use crate::core_power::CorePowerModel;

/// A package-level power budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tdp {
    budget_watts: f64,
    /// Package power not attributable to cores (uncore share under the lid).
    uncore_watts: f64,
}

impl Tdp {
    /// Creates a TDP budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive or the uncore share is negative
    /// or exceeds the budget.
    pub fn new(budget_watts: f64, uncore_watts: f64) -> Self {
        assert!(budget_watts > 0.0, "TDP must be positive");
        assert!(
            (0.0..budget_watts).contains(&uncore_watts),
            "uncore power must be within the budget"
        );
        Self {
            budget_watts,
            uncore_watts,
        }
    }

    /// The paper's 65 W TDP with an 8 W uncore share.
    pub fn paper() -> Self {
        Self::new(65.0, 8.0)
    }

    /// The package budget in watts.
    pub fn budget(&self) -> f64 {
        self.budget_watts
    }

    /// The budget available to cores.
    pub fn core_budget(&self) -> f64 {
        self.budget_watts - self.uncore_watts
    }

    /// Whether running every core in `freqs` actively at the given frequency
    /// fits in the budget.
    pub fn fits(&self, model: &CorePowerModel, freqs: &[Freq]) -> bool {
        let total: f64 = freqs.iter().map(|&f| model.active_power(f)).sum();
        total <= self.core_budget() + 1e-9
    }

    /// The highest uniform frequency at which `cores` active cores fit in the
    /// budget, or `None` if even the minimum level does not fit.
    pub fn max_uniform_freq(
        &self,
        model: &CorePowerModel,
        dvfs: &DvfsConfig,
        cores: usize,
    ) -> Option<Freq> {
        assert!(cores > 0);
        dvfs.levels()
            .iter()
            .copied()
            .rev()
            .find(|&f| self.fits(model, &vec![f; cores]))
    }
}

impl Default for Tdp {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_cores_at_nominal_fit_the_paper_tdp() {
        let tdp = Tdp::paper();
        let model = CorePowerModel::haswell_like();
        let freqs = vec![Freq::from_mhz(2400); 6];
        assert!(tdp.fits(&model, &freqs));
    }

    #[test]
    fn six_cores_at_turbo_exceed_the_paper_tdp() {
        let tdp = Tdp::paper();
        let model = CorePowerModel::haswell_like();
        let freqs = vec![Freq::from_mhz(3400); 6];
        assert!(!tdp.fits(&model, &freqs));
    }

    #[test]
    fn max_uniform_freq_is_between_nominal_and_turbo() {
        let tdp = Tdp::paper();
        let model = CorePowerModel::haswell_like();
        let dvfs = DvfsConfig::haswell_like();
        let f = tdp.max_uniform_freq(&model, &dvfs, 6).unwrap();
        assert!(f >= Freq::from_mhz(2400));
        assert!(f < Freq::from_mhz(3400));
        // A single core can always turbo.
        assert_eq!(tdp.max_uniform_freq(&model, &dvfs, 1).unwrap(), dvfs.max());
    }

    #[test]
    fn impossible_budget_returns_none() {
        let tdp = Tdp::new(10.0, 8.0);
        let model = CorePowerModel::haswell_like();
        let dvfs = DvfsConfig::haswell_like();
        assert!(tdp.max_uniform_freq(&model, &dvfs, 6).is_none());
    }

    #[test]
    #[should_panic(expected = "within the budget")]
    fn rejects_uncore_exceeding_budget() {
        let _ = Tdp::new(10.0, 12.0);
    }
}
