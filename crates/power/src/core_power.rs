//! Core power and energy.
//!
//! Active core power is modelled as `P = α·V(f)²·f + P_leak(V)`, the standard
//! CMOS decomposition; idle (clock-gated) power retains leakage plus a small
//! clock-tree component, and deep sleep power is a small constant. Energy is
//! integrated directly from the frequency/activity residency produced by the
//! simulator, so every scheme is charged for exactly the time it spent at
//! each frequency (this is what Fig. 1a, Fig. 6 and Fig. 9b report).

use serde::{Deserialize, Serialize};

use rubik_sim::{Freq, FreqResidency};

use crate::vf::VfCurve;

/// Energy consumed by one core over a run, broken down by activity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreEnergy {
    /// Energy (J) while executing requests.
    pub active: f64,
    /// Energy (J) while idle (clock-gated).
    pub idle: f64,
    /// Energy (J) while in deep sleep.
    pub sleep: f64,
}

impl CoreEnergy {
    /// Total core energy in joules.
    pub fn total(&self) -> f64 {
        self.active + self.idle + self.sleep
    }
}

/// Analytic model of a single core's power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorePowerModel {
    vf: VfCurve,
    /// Effective switched capacitance coefficient: dynamic power =
    /// `dyn_coeff · V² · f_ghz` watts.
    dyn_coeff: f64,
    /// Leakage power = `leak_coeff · V` watts.
    leak_coeff: f64,
    /// Fraction of dynamic power still consumed while clock-gated (clock
    /// tree, always-on logic).
    idle_dynamic_fraction: f64,
    /// Deep-sleep power in watts.
    sleep_power: f64,
}

impl CorePowerModel {
    /// Creates a core power model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or `idle_dynamic_fraction` is
    /// outside `[0, 1]`.
    pub fn new(
        vf: VfCurve,
        dyn_coeff: f64,
        leak_coeff: f64,
        idle_dynamic_fraction: f64,
        sleep_power: f64,
    ) -> Self {
        assert!(dyn_coeff >= 0.0 && leak_coeff >= 0.0 && sleep_power >= 0.0);
        assert!((0.0..=1.0).contains(&idle_dynamic_fraction));
        Self {
            vf,
            dyn_coeff,
            leak_coeff,
            idle_dynamic_fraction,
            sleep_power,
        }
    }

    /// The Haswell-like model used throughout the reproduction: roughly 6 W
    /// active at the 2.4 GHz nominal frequency, 1.6 W at 0.8 GHz, and 11 W at
    /// 3.4 GHz, with ~1 W of leakage at nominal voltage and 0.1 W in deep
    /// sleep — consistent with the per-core budget of the paper's 65 W TDP,
    /// 4-core Xeon E3 (Table 2, Sec. 5.1).
    pub fn haswell_like() -> Self {
        Self::new(VfCurve::haswell_like(), 2.6, 1.1, 0.10, 0.1)
    }

    /// The voltage/frequency curve.
    pub fn vf_curve(&self) -> &VfCurve {
        &self.vf
    }

    /// Dynamic power (W) while executing at frequency `f`.
    pub fn dynamic_power(&self, f: Freq) -> f64 {
        let v = self.vf.voltage(f);
        self.dyn_coeff * v * v * f.ghz()
    }

    /// Leakage power (W) at the voltage required for frequency `f`.
    pub fn leakage_power(&self, f: Freq) -> f64 {
        self.leak_coeff * self.vf.voltage(f)
    }

    /// Total power (W) while actively executing at frequency `f`.
    pub fn active_power(&self, f: Freq) -> f64 {
        self.dynamic_power(f) + self.leakage_power(f)
    }

    /// Power (W) while idle but clock-gated at frequency `f`.
    pub fn idle_power(&self, f: Freq) -> f64 {
        self.idle_dynamic_fraction * self.dynamic_power(f) + self.leakage_power(f)
    }

    /// Power (W) in deep sleep.
    pub fn sleep_power(&self) -> f64 {
        self.sleep_power
    }

    /// Energy for a run, from the simulator's frequency/activity residency.
    pub fn energy(&self, residency: &FreqResidency) -> CoreEnergy {
        let mut e = CoreEnergy::default();
        for (&f, &t) in &residency.busy {
            e.active += self.active_power(f) * t;
        }
        for (&f, &t) in &residency.idle {
            e.idle += self.idle_power(f) * t;
        }
        e.sleep = self.sleep_power * residency.sleep;
        e
    }

    /// Average power (W) over a residency (total energy over total time), or
    /// 0 for an empty residency.
    pub fn average_power(&self, residency: &FreqResidency) -> f64 {
        let t = residency.total_time();
        if t <= 0.0 {
            0.0
        } else {
            self.energy(residency).total() / t
        }
    }

    /// Core energy per request: total energy divided by the request count.
    ///
    /// # Panics
    ///
    /// Panics if `requests == 0`.
    pub fn energy_per_request(&self, residency: &FreqResidency, requests: usize) -> f64 {
        assert!(requests > 0, "cannot attribute energy to zero requests");
        self.energy(residency).total() / requests as f64
    }
}

impl Default for CorePowerModel {
    fn default() -> Self {
        Self::haswell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubik_sim::{CoreActivity, RunResult, Segment};

    fn residency(busy_s: f64, idle_s: f64, mhz: u32) -> FreqResidency {
        let segments = vec![
            Segment {
                start: 0.0,
                end: busy_s,
                freq: Freq::from_mhz(mhz),
                activity: CoreActivity::Busy,
            },
            Segment {
                start: busy_s,
                end: busy_s + idle_s,
                freq: Freq::from_mhz(mhz),
                activity: CoreActivity::Idle,
            },
        ];
        RunResult::new(vec![], segments, busy_s + idle_s).freq_residency()
    }

    #[test]
    fn power_increases_superlinearly_with_frequency() {
        let m = CorePowerModel::haswell_like();
        let p08 = m.active_power(Freq::from_mhz(800));
        let p24 = m.active_power(Freq::from_mhz(2400));
        let p34 = m.active_power(Freq::from_mhz(3400));
        assert!(p08 < p24 && p24 < p34);
        // Superlinear: tripling frequency more than triples power.
        assert!(p24 / p08 > 3.0, "p24/p08 = {}", p24 / p08);
        // Sanity band around the Haswell-like calibration.
        assert!(p24 > 4.0 && p24 < 9.0, "p24 = {p24}");
        assert!(p34 > 8.0 && p34 < 14.0, "p34 = {p34}");
    }

    #[test]
    fn idle_power_is_much_lower_than_active() {
        let m = CorePowerModel::haswell_like();
        let f = Freq::from_mhz(2400);
        assert!(m.idle_power(f) < 0.5 * m.active_power(f));
        assert!(m.sleep_power() < m.idle_power(Freq::from_mhz(800)));
    }

    #[test]
    fn energy_integrates_residency() {
        let m = CorePowerModel::haswell_like();
        let res = residency(2.0, 1.0, 2400);
        let e = m.energy(&res);
        let f = Freq::from_mhz(2400);
        assert!((e.active - 2.0 * m.active_power(f)).abs() < 1e-9);
        assert!((e.idle - 1.0 * m.idle_power(f)).abs() < 1e-9);
        assert_eq!(e.sleep, 0.0);
        assert!((m.average_power(&res) - e.total() / 3.0).abs() < 1e-9);
    }

    #[test]
    fn running_slower_uses_less_energy_for_fixed_busy_time_split() {
        // Same wall-clock mix of busy/idle, lower frequency → less energy.
        let m = CorePowerModel::haswell_like();
        let fast = m.energy(&residency(1.0, 1.0, 2400)).total();
        let slow = m.energy(&residency(1.0, 1.0, 1200)).total();
        assert!(slow < fast);
    }

    #[test]
    fn race_to_idle_vs_slow_and_steady() {
        // The core must execute 2.4e9 cycles. At 2.4 GHz that is 1 s busy +
        // 2 s idle; at 0.8 GHz it is 3 s busy and no idle. With a convex
        // power curve and low idle power, running slowly should save energy
        // (this is the premise of DVFS for latency-critical work).
        let m = CorePowerModel::haswell_like();
        let race = m.energy(&residency(1.0, 2.0, 2400)).total();
        let steady = m.energy(&residency(3.0, 0.0, 800)).total();
        assert!(steady < race, "steady {steady} vs race {race}");
    }

    #[test]
    fn energy_per_request_divides_total() {
        let m = CorePowerModel::haswell_like();
        let res = residency(1.0, 0.0, 2400);
        let e = m.energy_per_request(&res, 100);
        assert!((e - m.energy(&res).total() / 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_residency_has_zero_power() {
        let m = CorePowerModel::haswell_like();
        assert_eq!(m.average_power(&FreqResidency::default()), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero requests")]
    fn energy_per_request_rejects_zero() {
        let m = CorePowerModel::haswell_like();
        let _ = m.energy_per_request(&FreqResidency::default(), 0);
    }
}
