//! Integration tests for the tail-latency behaviour the paper's Sec. 3
//! motivates: queueing dominates the tail, queue length correlates with
//! response latency far better than service time or instantaneous load, and
//! tail latency rises steeply with load.

use rubik::stats::pearson;
use rubik::{AppProfile, FixedFrequencyPolicy, Server, SimConfig, WorkloadGenerator};

fn fixed_run(profile: &AppProfile, load: f64, n: usize, seed: u64) -> rubik::RunResult {
    let config = SimConfig::default();
    let mut generator = WorkloadGenerator::new(profile.clone(), seed);
    let trace = generator.steady_trace(load, n);
    let mut policy = FixedFrequencyPolicy::new(config.dvfs.nominal());
    Server::new(config).run(&trace, &mut policy)
}

#[test]
fn queue_length_correlates_with_latency_better_than_service_time() {
    // Table 1: for every application, response latency correlates strongly
    // with queue length and weakly (or not at all) with service time.
    for (i, profile) in AppProfile::all().into_iter().enumerate() {
        let result = fixed_run(&profile, 0.5, 3000, 40 + i as u64);
        let latencies = result.latencies();
        let queue_corr = pearson(&result.queue_lengths(), &latencies).unwrap();
        let service_corr = pearson(&result.service_times(), &latencies).unwrap_or(0.0);
        assert!(
            queue_corr > 0.5,
            "{}: queue-length correlation {queue_corr}",
            profile.name()
        );
        assert!(
            queue_corr > service_corr,
            "{}: queue {queue_corr} should beat service {service_corr}",
            profile.name()
        );
    }
}

#[test]
fn tail_latency_rises_steeply_with_load() {
    // Fig. 2c: normalized tail latency grows with load, and queueing pushes
    // it well above the pure service-time tail even at moderate loads.
    let profile = AppProfile::masstree();
    let mut tails = Vec::new();
    for (i, load) in [0.2, 0.4, 0.6, 0.8].into_iter().enumerate() {
        let result = fixed_run(&profile, load, 3000, 60 + i as u64);
        tails.push(result.tail_latency(0.95).unwrap());
    }
    for pair in tails.windows(2) {
        assert!(
            pair[1] > pair[0],
            "tail latency must increase with load: {tails:?}"
        );
    }
    // At 80% load the tail should be several times the service-time tail.
    let service_tail = {
        let result = fixed_run(&profile, 0.8, 3000, 63);
        rubik::stats::percentile(&result.service_times(), 0.95).unwrap()
    };
    assert!(tails[3] > 2.0 * service_tail);
}

#[test]
fn queueing_dominates_tail_latency_at_moderate_load_for_uniform_services() {
    // For applications with tightly clustered service times (masstree,
    // moses), the tail is almost entirely queueing (Sec. 3).
    for profile in [AppProfile::masstree(), AppProfile::moses()] {
        let result = fixed_run(&profile, 0.6, 2500, 70);
        let latencies = result.latencies();
        let tail = rubik::stats::percentile(&latencies, 0.95).unwrap();
        let queueing: Vec<f64> = result
            .records()
            .iter()
            .map(|r| r.queueing_delay())
            .collect();
        let queue_tail = rubik::stats::percentile(&queueing, 0.95).unwrap();
        assert!(
            queue_tail > 0.4 * tail,
            "{}: queueing tail {queue_tail} vs total {tail}",
            profile.name()
        );
    }
}

#[test]
fn instantaneous_load_varies_widely_around_the_mean() {
    // Fig. 2a: instantaneous QPS over 5 ms windows ranges from near zero to
    // more than twice the average.
    let profile = AppProfile::masstree();
    let mut generator = WorkloadGenerator::new(profile, 80);
    let trace = generator.steady_trace(0.5, 20_000);
    let qps = trace.qps_series(0.005);
    let mean = qps.iter().sum::<f64>() / qps.len() as f64;
    let max = qps.iter().cloned().fold(0.0, f64::max);
    let min = qps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max > 1.8 * mean, "max {max} vs mean {mean}");
    assert!(min < 0.4 * mean, "min {min} vs mean {mean}");
}
