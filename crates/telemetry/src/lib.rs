//! Deterministic tracing, per-epoch fleet metrics, and tail-latency
//! attribution for the Rubik reproduction.
//!
//! The paper's argument is about *where* tail latency comes from — queueing
//! on an overloaded core vs service time at a throttled frequency vs the
//! transients around a load change — and end-of-run aggregates cannot answer
//! that. This crate adds the missing observability layer in three pillars:
//!
//! 1. **Per-request lifecycle traces.** The cluster driver records
//!    timestamped [`RequestEvent`]s (routed, timeout, backoff, migration
//!    hop, crash requeue, salvage, drop) and [`ServerEvent`]s through the
//!    [`TraceSink`] trait at the same fault-boundary instants it already
//!    sequences, so the stream is deterministic and invariant under
//!    `rubik-sweep` thread count. Service start/end come for free from
//!    [`rubik_sim::RequestRecord`] and are merged at finalize.
//! 2. **Per-epoch fleet time series.** A [`FleetRecorder`] retains
//!    [`EpochSample`] windows — fleet power, queue depths, in-flight counts,
//!    per-server DVFS state, cumulative retries/timeouts — sampled on an
//!    epoch independent of the controller's.
//! 3. **Tail attribution.** [`TraceLog::attribute`] decomposes the tail
//!    cohort's latency into queueing / service / backoff / downtime and the
//!    `trace_report` binary (in `rubik-bench`) prints the breakdown table.
//!
//! Logs serialize to a self-describing JSON document ([`to_json`] /
//! [`from_json`]) and to Chrome `trace_event` format ([`to_chrome_json`])
//! viewable in `chrome://tracing` or Perfetto — both hand-rolled because the
//! build environment is offline.
//!
//! # Zero cost when disabled
//!
//! [`Telemetry::disabled()`] is the default everywhere. It holds no
//! recorder: recording calls are inlined branches on `None`, the driver
//! never schedules a sample boundary, and runs are bitwise-identical to an
//! uninstrumented build with zero steady-state allocations (pinned by the
//! neutrality and counting-allocator suites in `rubik-cluster`).
//!
//! # Example
//!
//! ```
//! use rubik_telemetry::{Telemetry, TraceLog};
//! use rubik_sim::{RequestRecord, RunResult};
//!
//! // Bare RunResults (e.g. from a single-server run) already make a log.
//! let record = RequestRecord {
//!     id: 0, arrival: 0.0, start: 0.004, completion: 0.006,
//!     compute_cycles: 1.0e6, membound_time: 0.0,
//!     queue_len_at_arrival: 0, class: 0,
//! };
//! let result = RunResult::new(vec![record], Vec::new(), 0.01);
//! let log = TraceLog::from_results(&[result]);
//! let report = log.attribute(0.95).expect("one completion");
//! assert_eq!(report.completed, 1);
//! // 4 ms queueing + 2 ms service.
//! assert!((report.cohort_mean.queueing - 0.004).abs() < 1e-12);
//! assert!((report.cohort_mean.service - 0.002).abs() < 1e-12);
//!
//! // The disabled handle records nothing and produces no log.
//! assert!(Telemetry::disabled().finalize(&[], 0.0).is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod event;
pub mod fleet;
pub mod json;
pub mod log;
pub mod report;
mod sink;

pub use chrome::to_chrome_json;
pub use event::{RequestEvent, RequestEventKind, ServerEvent, ServerEventKind};
pub use fleet::{EpochSample, FleetRecorder, ServerSample};
pub use json::{from_json, to_json, FORMAT};
pub use log::{RequestTrace, TraceLog};
pub use report::{breakdown, AttributionReport, LatencyBreakdown};
pub use sink::{Recorder, Telemetry, TraceSink, DEFAULT_SAMPLE_EPOCH};
