//! The fleet-management contract, property-tested:
//!
//! 1. **Idle hooks are invisible.** A cluster with a [`PegasusFleet`]
//!    controller at an infinite budget and a [`ThresholdMigrator`] that can
//!    never arm is **bitwise identical** to a plain cluster across
//!    `router × fleet × seed` grids — and the grids themselves are
//!    bit-identical at 1, 2, and 8 sweep threads.
//! 2. **A finite budget holds.** For any feasible budget, the measured
//!    fleet power of every epoch window never exceeds the budget by more
//!    than one server's DVFS step granularity (the cap is enforced
//!    analytically through worst-case ceilings, so even load spikes cannot
//!    break it).
//! 3. **Migration conserves requests.** With aggressive migration, every
//!    request of the input stream completes exactly once somewhere in the
//!    fleet, with its original identity and arrival time.
//!
//! Plus the heterogeneous-fleet pins: a big/little fleet whose little class
//! has zero capacity routes 100% of requests to the big servers and
//! reproduces the homogeneous big-only fleet bitwise, and per-class
//! residency stays inside each class's DVFS domain.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FleetSpec, JoinShortestQueue, PegasusFleet, PowerAware,
    RoundRobin, Router, ThresholdMigrator,
};
use rubik_core::{RubikConfig, RubikController};
use rubik_power::CorePowerModel;
use rubik_sim::{DvfsConfig, FixedFrequencyPolicy, Freq, RequestSpec, RunResult, SimConfig, Trace};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
        ]);
    }
    bits
}

fn routers() -> Vec<Box<dyn Router>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue::new()),
        Box::new(PowerAware::default()),
    ]
}

fn rubik_factory<'a>(
    config: &'a SimConfig,
    trace: &'a Trace,
    bound: f64,
) -> impl Fn(usize) -> RubikController + 'a {
    move |_| {
        RubikController::seeded_for_trace(
            RubikConfig::new(bound).with_profiling_window(1024),
            config.dvfs.clone(),
            trace,
            256,
        )
    }
}

/// A migrator that is attached and polled but can never arm: the queue gap
/// cannot reach `usize::MAX`.
fn disabled_migrator() -> ThresholdMigrator {
    ThresholdMigrator::new(usize::MAX, 0)
}

// ---------------------------------------------------------------------------
// Property 1: idle hooks are bitwise invisible.
// ---------------------------------------------------------------------------

#[test]
fn infinite_budget_and_disarmed_migration_are_bitwise_invisible() {
    let fleets = [2usize, 6];
    let seeds = [11u64, 97];
    let spec = SweepSpec::new()
        .axis("router", routers().len())
        .axis("fleet", fleets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let profile = AppProfile::masstree();
        let bound = 3.0 * profile.mean_service_time();
        let fleet = fleets[c.get("fleet")];
        let trace = fleet_trace(&profile, 0.5, fleet, 120 * fleet, seeds[c.get("seed")]);

        let plain = Cluster::new(
            config.clone(),
            fleet,
            routers().swap_remove(c.get("router")),
            rubik_factory(&config, &trace, bound),
        );
        let (plain_outcome, plain_results) = plain.run_with_results(&trace);

        let hooked = Cluster::new(
            config.clone(),
            fleet,
            routers().swap_remove(c.get("router")),
            rubik_factory(&config, &trace, bound),
        )
        .with_fleet_controller(Box::new(PegasusFleet::uncapped(
            CorePowerModel::haswell_like(),
        )))
        .with_migrator(Box::new(disabled_migrator()));
        let (hooked_outcome, hooked_results) = hooked.run_with_results(&trace);

        assert_eq!(hooked_outcome.migrated_requests, 0);
        assert_eq!(
            outcome_bits(&plain_outcome),
            outcome_bits(&hooked_outcome),
            "idle hooks changed the ClusterOutcome (cell {})",
            c.index()
        );
        for (i, (p, h)) in plain_results.iter().zip(&hooked_results).enumerate() {
            assert_eq!(
                result_bits(p),
                result_bits(h),
                "idle hooks changed server {i}'s RunResult (cell {})",
                c.index()
            );
        }
        outcome_bits(&hooked_outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(swept, reference, "grid diverged at {threads} threads");
    }
}

// ---------------------------------------------------------------------------
// Property 2: a finite budget holds, epoch by epoch.
// ---------------------------------------------------------------------------

/// Measured fleet power over `[from, to)`, integrated from the per-server
/// timelines with the same power model the driver uses.
fn window_power(results: &[RunResult], power: &CorePowerModel, from: f64, to: f64) -> f64 {
    let energy: f64 = results
        .iter()
        .map(|r| power.energy(&r.freq_residency_between(from, to)).total())
        .sum();
    energy / (to - from)
}

/// The largest active-power increase of a single DVFS step anywhere in the
/// domain — the cap-holding slack the suite's contract allows.
fn step_granularity(dvfs: &DvfsConfig, power: &CorePowerModel) -> f64 {
    dvfs.levels()
        .windows(2)
        .map(|w| power.active_power(w[1]) - power.active_power(w[0]))
        .fold(0.0, f64::max)
}

#[test]
fn finite_budgets_hold_epoch_power_within_one_step_of_the_cap() {
    let fleet = 4usize;
    let epoch = 0.02;
    let config = SimConfig::paper_simulated();
    let power = CorePowerModel::haswell_like();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let floor = fleet as f64 * power.active_power(config.dvfs.min());
    let step = step_granularity(&config.dvfs, &power);

    // Budgets from "barely above the feasibility floor" to "roomy".
    let budgets = [floor + 1.0, 3.5 * fleet as f64, 6.0 * fleet as f64];
    let seeds = [5u64, 23];
    let spec = SweepSpec::new()
        .axis("budget", budgets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let budget = budgets[c.get("budget")];
        let trace = fleet_trace(&profile, 0.6, fleet, 400 * fleet, seeds[c.get("seed")]);
        let cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(JoinShortestQueue::new()),
            rubik_factory(&config, &trace, bound),
        )
        .with_power(power)
        .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(epoch)));
        let (outcome, results) = cluster.run_with_results(&trace);
        assert_eq!(outcome.requests, 400 * fleet);

        // Every epoch window (including the trailing partial one) respects
        // the cap to within one DVFS step of one server.
        let end = outcome.duration;
        let mut from = 0.0;
        let mut epochs = 0;
        while from < end {
            let to = (from + epoch).min(end);
            let measured = window_power(&results, &power, from, to);
            assert!(
                measured <= budget.max(floor) + step + 1e-6,
                "epoch [{from:.2}, {to:.2}) drew {measured:.3} W against a \
                 budget of {budget:.3} W (floor {floor:.3} W, step {step:.3} W)"
            );
            from = to;
            epochs += 1;
        }
        assert!(epochs >= 4, "the run must span several epochs");
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "capped grid diverged at {threads} threads"
        );
    }
}

#[test]
fn tighter_budgets_cost_tail_latency_but_save_power() {
    // Sanity that the cap actually bites: the capped fleet consumes less
    // average power and (under a tight cap) suffers a worse tail.
    let fleet = 4usize;
    let config = SimConfig::paper_simulated();
    let power = CorePowerModel::haswell_like();
    let profile = AppProfile::masstree();
    let bound = 3.0 * profile.mean_service_time();
    let trace = fleet_trace(&profile, 0.6, fleet, 300 * fleet, 3);

    let run = |budget: f64| {
        let mut cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(JoinShortestQueue::new()),
            rubik_factory(&config, &trace, bound),
        )
        .with_power(power);
        if budget.is_finite() {
            cluster = cluster
                .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(0.1)));
        }
        cluster.run(&trace)
    };

    let uncapped = run(f64::INFINITY);
    let tight = run(fleet as f64 * 2.5);
    assert!(
        tight.fleet_power < uncapped.fleet_power,
        "tight cap must reduce average power ({} vs {})",
        tight.fleet_power,
        uncapped.fleet_power
    );
    assert!(
        tight.tail_latency > uncapped.tail_latency,
        "a binding cap trades tail latency for power ({} vs {})",
        tight.tail_latency,
        uncapped.tail_latency
    );
}

// ---------------------------------------------------------------------------
// Property 3: migration conserves requests.
// ---------------------------------------------------------------------------

/// A bursty stream: every `gap` seconds, 8 simultaneous requests of 1 ms
/// (at nominal) each. Behind [`Passthrough`] this overloads server 0 while
/// its neighbours idle — the canonical queue-imbalance migration rescues.
fn bursty_trace(requests: usize, gap: f64) -> Trace {
    (0..requests as u64)
        .map(|i| RequestSpec::new(i, (i / 8) as f64 * gap, 2.4e6, 1e-5))
        .collect()
}

#[test]
fn migration_conserves_requests_and_is_thread_invariant() {
    let fleets = [3usize, 5];
    let seeds = [1u64, 42];
    let spec = SweepSpec::new()
        .axis("fleet", fleets.len())
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let fleet = fleets[c.get("fleet")];
        let requests = 400;
        // Passthrough on a bursty stream: server 0 drowns while the rest of
        // the fleet idles — migration must fire.
        let trace = bursty_trace(requests, 4e-3 + seeds[c.get("seed")] as f64 * 1e-5);
        let cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(rubik_cluster::Passthrough),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        )
        .with_migrator(Box::new(ThresholdMigrator::new(2, 0).with_interval(5e-4)));
        let (outcome, results) = cluster.run_with_results(&trace);

        assert!(
            outcome.migrated_requests > 0,
            "the bursty stream must actually trigger migration"
        );
        // Conservation: every id completes exactly once, somewhere, with its
        // original arrival time; per-server counts add up.
        let mut seen: Vec<(u64, u64)> = results
            .iter()
            .flat_map(|r| {
                r.records()
                    .iter()
                    .map(|rec| (rec.id, rec.arrival.to_bits()))
            })
            .collect();
        assert_eq!(seen.len(), requests, "lost or duplicated requests");
        seen.sort_unstable();
        for (i, &(id, arrival)) in seen.iter().enumerate() {
            assert_eq!(id, i as u64, "request id {i} missing or duplicated");
            let expected = trace.requests()[i].arrival;
            assert_eq!(
                arrival,
                expected.to_bits(),
                "request {i} lost its original arrival time"
            );
        }
        let per_server: usize = outcome.per_server.iter().map(|s| s.requests).sum();
        assert_eq!(per_server, requests);
        for r in results.iter().flat_map(|r| r.records()) {
            assert!(r.start >= r.arrival);
            assert!(r.completion >= r.start);
        }
        outcome_bits(&outcome)
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "migration grid diverged at {threads} threads"
        );
    }
}

#[test]
fn migration_reduces_the_tail_of_an_imbalanced_router() {
    // The point of the whole exercise: on a bursty stream behind a router
    // that does not balance, rebalancing queued requests improves the
    // pooled tail.
    let config = SimConfig::paper_simulated();
    let fleet = 4usize;
    let trace = bursty_trace(480, 4e-3);
    let run = |migrate: bool| {
        let mut cluster = Cluster::new(
            config.clone(),
            fleet,
            Box::new(rubik_cluster::Passthrough),
            |_| FixedFrequencyPolicy::new(config.dvfs.nominal()),
        );
        if migrate {
            cluster =
                cluster.with_migrator(Box::new(ThresholdMigrator::new(2, 0).with_interval(5e-4)));
        }
        cluster.run(&trace)
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without.requests, 480);
    assert_eq!(with.requests, 480);
    assert!(with.migrated_requests > 0);
    assert!(
        with.tail_latency < without.tail_latency,
        "migration must improve the pooled tail here ({} vs {})",
        with.tail_latency,
        without.tail_latency
    );
}

// ---------------------------------------------------------------------------
// Heterogeneous fleets.
// ---------------------------------------------------------------------------

fn little_config() -> SimConfig {
    SimConfig::paper_simulated().with_dvfs(DvfsConfig::new(
        Freq::from_mhz(800),
        Freq::from_mhz(1800),
        200,
        Freq::from_mhz(1200),
        4e-6,
    ))
}

#[test]
fn zero_capacity_littles_reproduce_the_big_only_fleet_bitwise() {
    let big_cfg = SimConfig::paper_simulated();
    let bigs = 4usize;
    let littles = 4usize;
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.4, bigs, 150 * bigs, 2015);

    let spec = FleetSpec::new()
        .class("big", big_cfg.clone(), 1.0, bigs)
        .class("little", little_config(), 0.0, littles);

    let hetero = Cluster::from_spec(&spec, Box::new(PowerAware::default()), |_i, config| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    });
    let (hetero_outcome, hetero_results) = hetero.run_with_results(&trace);

    let homo = Cluster::new(
        big_cfg.clone(),
        bigs,
        Box::new(PowerAware::default()),
        |_| FixedFrequencyPolicy::new(big_cfg.dvfs.nominal()),
    );
    let (homo_outcome, homo_results) = homo.run_with_results(&trace);

    // 100% of the requests landed on big servers...
    let totals = hetero_outcome.class_totals();
    assert_eq!(totals.len(), 2);
    assert_eq!(totals[0].requests, 150 * bigs);
    assert_eq!(totals[1].requests, 0);
    assert_eq!(totals[1].busy_time, 0.0, "littles never execute anything");
    assert!(totals[1].energy > 0.0, "idle littles still burn idle power");

    // ...and each big server's run is bitwise the homogeneous fleet's.
    assert_eq!(homo_outcome.requests, hetero_outcome.requests);
    for i in 0..bigs {
        assert_eq!(
            result_bits(&hetero_results[i]),
            result_bits(&homo_results[i]),
            "big server {i} diverged from the homogeneous fleet"
        );
    }
}

#[test]
fn per_class_residency_stays_inside_each_class_dvfs_domain() {
    let big_cfg = SimConfig::paper_simulated();
    let little_cfg = little_config();
    let spec = FleetSpec::new()
        .class("big", big_cfg.clone(), 1.0, 3)
        .class("little", little_cfg.clone(), 0.5, 3);
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.5, spec.len(), 600, 7);

    let cluster = Cluster::from_spec(&spec, Box::new(PowerAware::default()), |_i, config| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    });
    let (outcome, results) = cluster.run_with_results(&trace);
    assert_eq!(outcome.requests, 600);

    // Both classes serve work under a capacity-aware router...
    let totals = outcome.class_totals();
    assert_eq!(totals.len(), 2);
    assert!(totals[0].requests > 0 && totals[1].requests > 0);
    assert!(totals.iter().all(|t| t.busy_time > 0.0));

    // ...and every server's timeline stays inside its class's DVFS domain.
    for (i, r) in results.iter().enumerate() {
        let dvfs = if outcome.per_server[i].class == 0 {
            &big_cfg.dvfs
        } else {
            &little_cfg.dvfs
        };
        for s in r.segments() {
            assert!(
                dvfs.is_level(s.freq),
                "server {i} (class {}) ran at {} outside its domain",
                outcome.per_server[i].class,
                s.freq
            );
        }
    }
    // Littles top out at 1.8 GHz.
    for (i, r) in results.iter().enumerate() {
        if outcome.per_server[i].class == 1 {
            for s in r.segments() {
                assert!(s.freq <= Freq::from_mhz(1800));
            }
        }
    }
}

#[test]
fn capped_heterogeneous_fleet_with_migration_serves_everything_under_budget() {
    // The full stack at once: FleetSpec + PegasusFleet + ThresholdMigrator.
    let power = CorePowerModel::haswell_like();
    let spec = FleetSpec::new()
        .class("big", SimConfig::paper_simulated(), 1.0, 3)
        .class("little", little_config(), 0.5, 3);
    let profile = AppProfile::masstree();
    let trace = fleet_trace(&profile, 0.4, spec.len(), 900, 13);
    let budget = 4.0 * spec.len() as f64;

    let cluster = Cluster::from_spec(&spec, Box::new(PowerAware::new(power)), |_i, config| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_power(power)
    .with_fleet_controller(Box::new(PegasusFleet::new(budget, power).with_epoch(0.1)))
    .with_migrator(Box::new(ThresholdMigrator::default()));

    let (outcome, results) = cluster.run_with_results(&trace);
    assert_eq!(outcome.requests, 900);
    assert!(outcome.fleet_power <= budget + 1e-6);

    // Epoch windows hold the cap too (not just the run average).
    let floor: f64 = (0..spec.len())
        .map(|i| power.active_power(spec.config_of(i).dvfs.min()))
        .sum();
    let step = step_granularity(&SimConfig::paper_simulated().dvfs, &power);
    let mut from = 0.0;
    while from < outcome.duration {
        let to = (from + 0.1).min(outcome.duration);
        let measured = window_power(&results, &power, from, to);
        assert!(measured <= budget.max(floor) + step + 1e-6);
        from = to;
    }
}
