//! Workload models for the Rubik reproduction.
//!
//! The paper evaluates Rubik on five latency-critical applications (Table 3):
//! xapian (web search), masstree (key-value store), moses (statistical
//! machine translation), shore (OLTP/TPC-C), and specjbb (Java middleware).
//! We do not run the applications themselves; instead, each application is
//! modelled by the statistical properties that drive every result in the
//! paper — its per-request service-demand distribution (median, dispersion,
//! shape), its memory-bound fraction, and its arrival process (Poisson, as in
//! the paper's integrated client). See `DESIGN.md` for the substitution
//! rationale.
//!
//! The crate provides:
//!
//! * [`AppProfile`] — the five LC application models and their parameters,
//! * [`LoadProfile`] — constant, stepped, and diurnal offered-load curves,
//! * [`WorkloadGenerator`] — turns a profile plus a load curve into a
//!   [`rubik_sim::Trace`] of requests,
//! * [`BatchApp`] / [`BatchMix`] — SPEC CPU2006-like batch application models
//!   used by RubikColoc,
//! * [`trace_io`] — JSON capture/replay of traces (the paper's trace-driven
//!   methodology, Sec. 5.3).
//!
//! # Example
//!
//! ```
//! use rubik_workloads::{AppProfile, WorkloadGenerator};
//!
//! let profile = AppProfile::masstree();
//! let mut generator = WorkloadGenerator::new(profile, 42);
//! let trace = generator.steady_trace(0.5, 2_000);
//! assert_eq!(trace.len(), 2_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod generator;
pub mod load;
pub mod profile;
pub mod trace_io;

pub use batch::{BatchApp, BatchMix};
pub use generator::WorkloadGenerator;
pub use load::LoadProfile;
pub use profile::{AppProfile, ServiceShape};
