//! Trace capture and replay.
//!
//! The paper's trace-driven characterization (Sec. 5.3) captures per-request
//! arrival times, core cycles, and memory-bound times, and replays the same
//! trace under different schemes so that every scheme sees an identical
//! request stream. These helpers persist [`Trace`]s as JSON so experiments
//! can be captured once and replayed by multiple harness binaries.
//!
//! The JSON codec is hand-rolled (the offline build has no serde_json) but
//! uses serde_json's layout for the same types, so files remain compatible
//! if the real dependency is restored:
//!
//! ```json
//! {"requests":[{"id":0,"arrival":0.0,"compute_cycles":1.0e6,
//!               "membound_time":1.0e-5,"class":0}, ...]}
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use rubik_sim::{RequestSpec, Trace};

/// A JSON syntax or schema error, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Errors returned by trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file contents could not be parsed as a trace.
    Parse(JsonError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceIoError::Parse(e) => write!(f, "trace file is not a valid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<JsonError> for TraceIoError {
    fn from(e: JsonError) -> Self {
        TraceIoError::Parse(e)
    }
}

/// Serializes a trace to a JSON string.
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * trace.len() + 16);
    out.push_str("{\"requests\":[");
    for (i, r) in trace.requests().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `{:e}` prints the shortest-roundtrip mantissa, so values survive a
        // write/read cycle bit-exactly.
        out.push_str(&format!(
            "{{\"id\":{},\"arrival\":{:e},\"compute_cycles\":{:e},\
             \"membound_time\":{:e},\"class\":{}}}",
            r.id, r.arrival, r.compute_cycles, r.membound_time, r.class
        ));
    }
    out.push_str("]}");
    out
}

/// Parses a trace from a JSON string.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] if the string is not a valid trace.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let trace = p.parse_trace()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after trace").into());
    }
    Ok(trace)
}

/// Writes a trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the file cannot be written.
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_json(trace).as_bytes())?;
    Ok(())
}

/// Reads a trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the file cannot be read and
/// [`TraceIoError::Parse`] if it is not a valid trace.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut contents = String::new();
    reader.read_to_string(&mut contents)?;
    from_json(&contents)
}

/// A minimal recursive-descent parser for the trace schema. Field order
/// within a request object is arbitrary; unknown fields are rejected (they
/// would indicate a schema mismatch, not a newer writer).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(self.error("escape sequences are not used by trace files"));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated string"))
    }

    /// Scans a numeric token and returns it as a string slice; field-typed
    /// parsing happens at the call site.
    fn number_token(&mut self) -> Result<&str, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("expected a number"))
    }

    fn parse_f64(&mut self) -> Result<f64, JsonError> {
        // Rust's parser maps out-of-range literals to ±inf; a trace with
        // infinite work or arrival times would silently poison every
        // downstream latency computation, so reject non-finite here.
        let parsed = self.number_token()?.parse::<f64>().ok();
        match parsed {
            Some(v) if v.is_finite() => Ok(v),
            _ => Err(self.error("expected a finite number")),
        }
    }

    fn parse_u64(&mut self) -> Result<u64, JsonError> {
        let parsed = self.number_token()?.parse::<u64>().ok();
        parsed.ok_or_else(|| self.error("expected a non-negative integer"))
    }

    fn parse_u32(&mut self) -> Result<u32, JsonError> {
        let parsed = self.number_token()?.parse::<u32>().ok();
        parsed.ok_or_else(|| self.error("expected a non-negative integer"))
    }

    fn parse_request(&mut self) -> Result<RequestSpec, JsonError> {
        self.expect(b'{')?;
        let mut spec = RequestSpec::new(0, 0.0, 0.0, 0.0);
        // Like serde, every field must be present exactly once: a request
        // with silently-defaulted zero work would corrupt replays.
        let mut seen = [false; 5];
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let slot = match key.as_str() {
                "id" => {
                    spec.id = self.parse_u64()?;
                    0
                }
                "arrival" => {
                    spec.arrival = self.parse_f64()?;
                    1
                }
                "compute_cycles" => {
                    spec.compute_cycles = self.parse_f64()?;
                    2
                }
                "membound_time" => {
                    spec.membound_time = self.parse_f64()?;
                    3
                }
                "class" => {
                    spec.class = self.parse_u32()?;
                    4
                }
                _ => return Err(self.error(&format!("unknown request field \"{key}\""))),
            };
            if seen[slot] {
                return Err(self.error(&format!("duplicate request field \"{key}\"")));
            }
            seen[slot] = true;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    if let Some(missing) = seen.iter().position(|&s| !s) {
                        const FIELDS: [&str; 5] =
                            ["id", "arrival", "compute_cycles", "membound_time", "class"];
                        return Err(
                            self.error(&format!("missing request field \"{}\"", FIELDS[missing]))
                        );
                    }
                    return Ok(spec);
                }
                _ => return Err(self.error("expected ',' or '}' in request object")),
            }
        }
    }

    fn parse_trace(&mut self) -> Result<Trace, JsonError> {
        self.expect(b'{')?;
        let key = self.parse_string()?;
        if key != "requests" {
            return Err(self.error("expected a \"requests\" field"));
        }
        self.expect(b':')?;
        self.expect(b'[')?;
        let mut requests = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                requests.push(self.parse_request()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.error("expected ',' or ']' in request array")),
                }
            }
        }
        self.expect(b'}')?;
        Ok(Trace::new(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppProfile, WorkloadGenerator};

    /// The writer emits shortest-roundtrip floats, so traces survive a
    /// round-trip bit-exactly; the comparison is still by value so the test
    /// also documents what matters for replay.
    fn assert_traces_equivalent(a: &Trace, b: &Trace) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.requests().iter().zip(b.requests()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.class, y.class);
            assert!((x.arrival - y.arrival).abs() <= 1e-12 * x.arrival.abs().max(1.0));
            assert!(
                (x.compute_cycles - y.compute_cycles).abs()
                    <= 1e-12 * x.compute_cycles.abs().max(1.0)
            );
            assert!(
                (x.membound_time - y.membound_time).abs() <= 1e-12 * x.membound_time.abs().max(1.0)
            );
        }
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let mut g = WorkloadGenerator::new(AppProfile::masstree(), 1);
        let trace = g.steady_trace(0.4, 200);
        let json = to_json(&trace);
        let back = from_json(&json).unwrap();
        assert_traces_equivalent(&trace, &back);
    }

    #[test]
    fn file_roundtrip_preserves_trace() {
        let mut g = WorkloadGenerator::new(AppProfile::shore(), 2);
        let trace = g.steady_trace(0.3, 100);
        let dir = std::env::temp_dir();
        let path = dir.join("rubik_trace_io_test.json");
        save(&trace, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_traces_equivalent(&trace, &back);
    }

    #[test]
    fn whitespace_and_field_order_are_tolerated() {
        let json = r#" {
            "requests": [
                {"arrival": 1.5e-3, "id": 7, "class": 2,
                 "membound_time": 0.0, "compute_cycles": 1e6}
            ]
        } "#;
        let t = from_json(json).unwrap();
        assert_eq!(t.len(), 1);
        let r = t.requests()[0];
        assert_eq!(r.id, 7);
        assert_eq!(r.class, 2);
        assert!((r.arrival - 1.5e-3).abs() < 1e-18);
        assert!((r.compute_cycles - 1e6).abs() < 1e-6);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = from_json(&to_json(&Trace::default())).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn parse_error_is_reported() {
        let err = from_json("not json").unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        assert!(err.to_string().contains("not a valid trace"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = from_json(r#"{"requests":[{"id":0,"bogus":1}]}"#).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn missing_fields_are_rejected() {
        // A truncated request must not silently default to zero work.
        let err = from_json(r#"{"requests":[{"id":3,"arrival":0.0}]}"#).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        assert!(err.to_string().contains("missing request field"));
    }

    #[test]
    fn duplicate_fields_are_rejected() {
        let err = from_json(
            r#"{"requests":[{"id":0,"id":1,"arrival":0.0,"compute_cycles":1.0,
                "membound_time":0.0,"class":0}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        // 1e999 overflows to +inf under f64 parsing; accepting it would
        // poison every downstream latency computation.
        let err = from_json(
            r#"{"requests":[{"id":0,"arrival":1e999,"compute_cycles":1.0,
                "membound_time":0.0,"class":0}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn fractional_ids_are_rejected() {
        let err = from_json(
            r#"{"requests":[{"id":1.5,"arrival":0.0,"compute_cycles":1.0,
                "membound_time":0.0,"class":0}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn large_ids_roundtrip_exactly() {
        // Ids above 2^53 would corrupt under an f64 round-trip; the integer
        // fields must parse as integers.
        let big = (1u64 << 60) + 12345;
        let trace = Trace::new(vec![RequestSpec::new(big, 0.0, 1.0, 0.0)]);
        let back = from_json(&to_json(&trace)).unwrap();
        assert_eq!(back.requests()[0].id, big);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = from_json("{\"requests\":[]} extra").unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn missing_file_is_reported_as_io_error() {
        let err = load("/nonexistent/rubik/trace.json").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
