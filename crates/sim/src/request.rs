//! Requests, traces, and per-request result records.

use serde::{Deserialize, Serialize};

use crate::freq::Freq;

/// The demand of a single request, as captured in a trace (paper Sec. 5.3:
/// per-request arrival times, core cycles, and memory-bound times).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Monotonically increasing request identifier.
    pub id: u64,
    /// Arrival time at the server, in seconds from the start of the run.
    pub arrival: f64,
    /// Core cycles of compute the request needs (unaffected by frequency in
    /// count, but its duration scales as `cycles / f`).
    pub compute_cycles: f64,
    /// Memory-bound time in seconds (LLC misses and DRAM accesses), which
    /// core DVFS cannot accelerate.
    pub membound_time: f64,
    /// Optional application-level request class (e.g. GET vs PUT, short vs
    /// long query). Oracular schemes such as AdrenalineOracle may use it; the
    /// Rubik controller never does.
    pub class: u32,
}

impl RequestSpec {
    /// Creates a request with class 0.
    pub fn new(id: u64, arrival: f64, compute_cycles: f64, membound_time: f64) -> Self {
        Self {
            id,
            arrival,
            compute_cycles,
            membound_time,
            class: 0,
        }
    }

    /// Sets the application-level class.
    pub fn with_class(mut self, class: u32) -> Self {
        self.class = class;
        self
    }

    /// Service time of this request when run uninterrupted at frequency `f`.
    pub fn service_time_at(&self, f: Freq) -> f64 {
        f.time_for_cycles(self.compute_cycles) + self.membound_time
    }
}

/// An ordered request trace: the input of a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<RequestSpec>,
}

impl Trace {
    /// Creates a trace, sorting the requests by arrival time.
    pub fn new(mut requests: Vec<RequestSpec>) -> Self {
        requests.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
        Self { requests }
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Duration of the trace: last arrival time (0 for an empty trace).
    pub fn duration(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival)
    }

    /// Average offered load relative to the capacity of a core running at
    /// frequency `f`: total demanded service time divided by trace duration.
    pub fn offered_load(&self, f: Freq) -> f64 {
        if self.is_empty() || self.duration() <= 0.0 {
            return 0.0;
        }
        let demand: f64 = self.requests.iter().map(|r| r.service_time_at(f)).sum();
        demand / self.duration()
    }

    /// Instantaneous queries-per-second over consecutive windows of
    /// `window` seconds (used for Fig. 2a/2b).
    pub fn qps_series(&self, window: f64) -> Vec<f64> {
        assert!(window > 0.0);
        if self.is_empty() {
            return Vec::new();
        }
        let n = (self.duration() / window).ceil().max(1.0) as usize;
        let mut counts = vec![0.0; n];
        for r in &self.requests {
            let idx = ((r.arrival / window) as usize).min(n - 1);
            counts[idx] += 1.0;
        }
        counts.into_iter().map(|c| c / window).collect()
    }

    /// Returns a copy containing only requests arriving before `t`.
    pub fn truncate_at(&self, t: f64) -> Trace {
        Trace {
            requests: self
                .requests
                .iter()
                .copied()
                .filter(|r| r.arrival < t)
                .collect(),
        }
    }
}

impl FromIterator<RequestSpec> for Trace {
    fn from_iter<T: IntoIterator<Item = RequestSpec>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

/// The outcome of one request in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identifier (matches [`RequestSpec::id`]).
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Time service began.
    pub start: f64,
    /// Time service completed.
    pub completion: f64,
    /// Compute cycles the request executed.
    pub compute_cycles: f64,
    /// Memory-bound time the request incurred.
    pub membound_time: f64,
    /// Number of requests already in the system (queued + in service) when
    /// this request arrived.
    pub queue_len_at_arrival: usize,
    /// Application-level class copied from the spec.
    pub class: u32,
}

impl RequestRecord {
    /// End-to-end response latency (queueing + service).
    pub fn latency(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Queueing delay before service started.
    pub fn queueing_delay(&self) -> f64 {
        self.start - self.arrival
    }

    /// Service time (time in service, excluding queueing).
    pub fn service_time(&self) -> f64 {
        self.completion - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sorts_by_arrival() {
        let t = Trace::new(vec![
            RequestSpec::new(1, 2.0, 1.0, 0.0),
            RequestSpec::new(0, 1.0, 1.0, 0.0),
        ]);
        assert_eq!(t.requests()[0].id, 0);
        assert_eq!(t.requests()[1].id, 1);
        assert_eq!(t.len(), 2);
        assert!((t.duration() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn service_time_scales_with_frequency() {
        let r = RequestSpec::new(0, 0.0, 2.4e6, 0.5e-3);
        let slow = r.service_time_at(Freq::from_mhz(1200));
        let fast = r.service_time_at(Freq::from_mhz(2400));
        assert!((fast - (1e-3 + 0.5e-3)).abs() < 1e-9);
        assert!((slow - (2e-3 + 0.5e-3)).abs() < 1e-9);
        assert!(slow > fast);
    }

    #[test]
    fn offered_load_matches_hand_calculation() {
        // 10 requests of 1 ms each over 100 ms → 10% load.
        let reqs: Vec<_> = (0..10)
            .map(|i| RequestSpec::new(i, i as f64 * 0.01, 2.4e6, 0.0))
            .collect();
        let t = Trace::new(reqs);
        let load = t.offered_load(Freq::from_mhz(2400));
        assert!((load - 10.0 * 1e-3 / 0.09).abs() < 1e-9);
    }

    #[test]
    fn qps_series_counts_arrivals() {
        let t = Trace::new(vec![
            RequestSpec::new(0, 0.001, 1.0, 0.0),
            RequestSpec::new(1, 0.002, 1.0, 0.0),
            RequestSpec::new(2, 0.011, 1.0, 0.0),
        ]);
        let qps = t.qps_series(0.01);
        assert_eq!(qps.len(), 2);
        assert!((qps[0] - 200.0).abs() < 1e-9);
        assert!((qps[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn truncate_keeps_only_early_requests() {
        let t: Trace = (0..10)
            .map(|i| RequestSpec::new(i, i as f64, 1.0, 0.0))
            .collect();
        assert_eq!(t.truncate_at(5.0).len(), 5);
        assert_eq!(t.truncate_at(100.0).len(), 10);
        assert_eq!(t.truncate_at(0.0).len(), 0);
    }

    #[test]
    fn record_derived_metrics() {
        let r = RequestRecord {
            id: 0,
            arrival: 1.0,
            start: 1.5,
            completion: 2.5,
            compute_cycles: 1e6,
            membound_time: 0.0,
            queue_len_at_arrival: 3,
            class: 0,
        };
        assert!((r.latency() - 1.5).abs() < 1e-12);
        assert!((r.queueing_delay() - 0.5).abs() < 1e-12);
        assert!((r.service_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_load() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.offered_load(Freq::from_mhz(2400)), 0.0);
        assert!(t.qps_series(0.005).is_empty());
    }
}
