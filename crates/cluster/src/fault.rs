//! Deterministic fault injection and the request-lifecycle layer.
//!
//! A [`FaultPlan`] scripts failures against a fleet: crashes, recoveries,
//! straggler windows (all service stretched by a factor), and stuck
//! frequencies. The plan is a plain list of [`FaultEvent`]s with absolute
//! times; the cluster driver expands it into a time-ordered op stream and
//! applies each op *between* simulation events, so an identical plan
//! produces bit-identical results regardless of how many sweep threads run
//! around the cluster. An **empty plan is bit-neutral**: it introduces no
//! boundaries, so every byte of the simulation is unchanged (pinned in
//! `tests/fault_properties.rs`).
//!
//! A [`RequestPolicy`] adds the client's side of the story: per-request
//! deadlines, attempt timeouts, and capped exponential backoff with
//! deterministic jitter. Timed-out queued requests are pulled back and
//! re-routed (through whatever router the cluster carries — wrap it in
//! [`HealthAware`](crate::HealthAware) to steer retries away from down
//! servers); requests stranded in service on a crashed server can be
//! salvaged and re-delivered, and a dead server's queue can be drained and
//! re-routed wholesale. [`RequestPolicy::with_hedging`] adds speculative
//! duplicates: an attempt that outlives the tracked latency quantile is
//! mirrored onto a second server, and the first copy to complete wins —
//! the driver cancels the other.
//!
//! The accounting lands in
//! [`ClusterOutcome::availability`](crate::ClusterOutcome::availability).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rubik_sim::{Freq, RequestSpec, RunResult};
use rubik_stats::{percentile, DeterministicRng, RollingQuantileWindow};

use crate::driver::ClusterError;
use crate::outcome::AvailabilityStats;
use crate::router::ServerHealth;

/// One scripted fault against one server, at an absolute simulation time.
///
/// Events are applied between simulation events, after everything strictly
/// earlier has been processed; events at the same instant apply in plan
/// order (a [`FaultPlan`] is a builder, so that is the order you wrote).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The server fails at `at`: the request in service is lost (or
    /// salvaged, per [`RequestPolicy::salvage_in_flight`]), no new service
    /// starts, and the server burns sleep power until it recovers. Queued
    /// work stays parked on the dead server unless
    /// [`RequestPolicy::drain_on_crash`] re-routes it.
    Crash {
        /// Index of the server that fails.
        server: usize,
        /// Absolute failure time in seconds.
        at: f64,
    },
    /// The server comes back at `at`: service resumes from its queue and a
    /// stuck frequency (if any) is released.
    Recover {
        /// Index of the server that recovers.
        server: usize,
        /// Absolute recovery time in seconds.
        at: f64,
    },
    /// Between `at` and `until` every service time on the server is
    /// stretched by `slowdown` (> 1 is slower). The server keeps serving —
    /// health-aware routing just stops sending it new work.
    Straggle {
        /// Index of the straggling server.
        server: usize,
        /// Window start in seconds.
        at: f64,
        /// Window end in seconds (must be after `at`).
        until: f64,
        /// Service-time multiplier (finite, > 0).
        slowdown: f64,
    },
    /// From `at` the server's core is pinned at `level` (snapped down to a
    /// DVFS level), ignoring its policy and any fleet ceiling, until a
    /// `StickFreq` with `level: None` — or a [`FaultEvent::Recover`] —
    /// releases it. Models a firmware-stuck or thermally capped part.
    StickFreq {
        /// Index of the affected server.
        server: usize,
        /// Absolute time the pin takes effect, in seconds.
        at: f64,
        /// Frequency to pin, or `None` to release an earlier pin.
        level: Option<Freq>,
    },
}

impl FaultEvent {
    fn server(&self) -> usize {
        match *self {
            FaultEvent::Crash { server, .. }
            | FaultEvent::Recover { server, .. }
            | FaultEvent::Straggle { server, .. }
            | FaultEvent::StickFreq { server, .. } => server,
        }
    }

    fn at(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Recover { at, .. }
            | FaultEvent::Straggle { at, .. }
            | FaultEvent::StickFreq { at, .. } => at,
        }
    }
}

/// A scripted, deterministic failure schedule for a whole fleet.
///
/// Built fluently and validated against the fleet size when attached
/// ([`Cluster::with_fault_plan`](crate::Cluster::with_fault_plan)). The
/// default (empty) plan is bit-neutral: attaching it changes nothing.
///
/// ```
/// use rubik_cluster::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash(3, 0.050)
///     .recover(3, 0.120)
///     .straggle(1, 0.010, 0.090, 4.0);
/// assert_eq!(plan.events().len(), 3);
/// assert!(plan.validate(8).is_ok());
/// assert!(plan.validate(2).is_err(), "server 3 is out of range");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; bit-neutral).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a raw event.
    pub fn event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Crashes `server` at `at`.
    pub fn crash(self, server: usize, at: f64) -> Self {
        self.event(FaultEvent::Crash { server, at })
    }

    /// Recovers `server` at `at` (from a crash or a stuck frequency).
    pub fn recover(self, server: usize, at: f64) -> Self {
        self.event(FaultEvent::Recover { server, at })
    }

    /// Makes `server` a straggler between `at` and `until`, stretching its
    /// service times by `slowdown`.
    pub fn straggle(self, server: usize, at: f64, until: f64, slowdown: f64) -> Self {
        self.event(FaultEvent::Straggle {
            server,
            at,
            until,
            slowdown,
        })
    }

    /// Pins `server`'s frequency at `level` from `at` (`None` releases an
    /// earlier pin).
    pub fn stick_freq(self, server: usize, at: f64, level: Option<Freq>) -> Self {
        self.event(FaultEvent::StickFreq { server, at, level })
    }

    /// The scripted events, in the order they were added.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against a fleet of `servers` servers: every index in
    /// range, every time finite and non-negative, straggle windows
    /// non-empty with a positive finite slowdown, no double crashes, and no
    /// recovery of a server that is neither crashed nor frequency-stuck.
    /// The first offending event is reported as
    /// [`ClusterError::InvalidFaultPlan`].
    pub fn validate(&self, servers: usize) -> Result<(), ClusterError> {
        let invalid = |msg: String| Err(ClusterError::InvalidFaultPlan(msg));
        for (k, ev) in self.events.iter().enumerate() {
            let s = ev.server();
            if s >= servers {
                return invalid(format!(
                    "event {k}: server {s} out of range for a {servers}-server fleet"
                ));
            }
            let at = ev.at();
            if !at.is_finite() || at < 0.0 {
                return invalid(format!(
                    "event {k}: time {at} is not a finite, non-negative instant"
                ));
            }
            if let FaultEvent::Straggle {
                until, slowdown, ..
            } = *ev
            {
                if !until.is_finite() || until <= at {
                    return invalid(format!(
                        "event {k}: straggle window [{at}, {until}] is empty or unbounded"
                    ));
                }
                if !slowdown.is_finite() || slowdown <= 0.0 {
                    return invalid(format!(
                        "event {k}: slowdown {slowdown} must be finite and > 0"
                    ));
                }
            }
        }
        // Replay the schedule in application order and check crash/recover
        // pairing per server.
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[a]
                .at()
                .total_cmp(&self.events[b].at())
                .then(a.cmp(&b))
        });
        let mut crashed = vec![false; servers];
        let mut stuck = vec![false; servers];
        for k in order {
            match self.events[k] {
                FaultEvent::Crash { server, .. } => {
                    if crashed[server] {
                        return invalid(format!(
                            "event {k}: server {server} crashes while already down"
                        ));
                    }
                    crashed[server] = true;
                }
                FaultEvent::Recover { server, .. } => {
                    if !crashed[server] && !stuck[server] {
                        return invalid(format!(
                            "event {k}: server {server} recovers but is neither down nor stuck"
                        ));
                    }
                    crashed[server] = false;
                    stuck[server] = false;
                }
                FaultEvent::StickFreq { server, level, .. } => {
                    stuck[server] = level.is_some();
                }
                FaultEvent::Straggle { .. } => {}
            }
        }
        Ok(())
    }
}

/// The client-side request lifecycle: deadlines, per-attempt timeouts,
/// retries with capped exponential backoff and deterministic jitter, and
/// what to do with work stranded on a crashed server.
///
/// The default is inert — no deadline, no timeout, no retries, nothing
/// salvaged or drained — and is bit-neutral when attached on its own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPolicy {
    /// End-to-end latency deadline per request, in seconds from its
    /// *original* arrival. Completions beyond it count as errors, not
    /// goodput. `None` disables deadline accounting.
    pub deadline: Option<f64>,
    /// Per-attempt timeout in seconds: a request still queued this long
    /// after being routed is pulled back and retried. Requests already in
    /// service are never interrupted. `None` disables timeouts.
    pub timeout: Option<f64>,
    /// Retry attempts allowed after the first (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^(k-1)`, capped at
    /// [`RequestPolicy::backoff_cap`], then jittered to 50–100% of itself.
    pub backoff_base: f64,
    /// Upper bound on the un-jittered backoff delay, in seconds.
    pub backoff_cap: f64,
    /// Seed for the per-(request, attempt) jitter stream. Same seed, same
    /// jitter — on any machine and any sweep thread count.
    pub jitter_seed: u64,
    /// Re-deliver the request that was in service when a server crashed
    /// (at the crash instant, counting one attempt). When `false` that
    /// request is simply lost.
    pub salvage_in_flight: bool,
    /// Drain a crashed server's queue and re-route every queued request at
    /// the crash instant (arrival times preserved). When `false` the queue
    /// stays parked until the server recovers.
    pub drain_on_crash: bool,
    /// Hedge trigger quantile: when an attempt has been outstanding longer
    /// than this quantile of the completion latencies observed so far, a
    /// speculative duplicate is launched on a second server and the first
    /// copy to complete wins. `None` disables hedging (bit-neutral).
    pub hedge_quantile: Option<f64>,
    /// Floor on the hedge trigger delay, in seconds: early in a run (or
    /// under a crashed-estimate workload) the tracked quantile can be tiny,
    /// and this keeps hedges from firing on every request.
    pub hedge_min_delay: f64,
    /// How many recent completion latencies the hedge trigger quantile is
    /// computed over (oldest-out). Bounding the tracker keeps a streamed
    /// run's memory at O(in-flight + window) instead of O(completed), and
    /// lets the trigger adapt when the latency distribution drifts
    /// mid-run. Default 1024.
    pub hedge_window: usize,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            timeout: None,
            max_retries: 0,
            backoff_base: 1e-3,
            backoff_cap: 100e-3,
            jitter_seed: 0,
            salvage_in_flight: false,
            drain_on_crash: false,
            hedge_quantile: None,
            hedge_min_delay: 0.0,
            hedge_window: 1024,
        }
    }
}

impl RequestPolicy {
    /// The inert policy (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the end-to-end deadline, in seconds.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "deadline must be finite and positive"
        );
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-attempt timeout, in seconds.
    pub fn with_timeout(mut self, timeout: f64) -> Self {
        assert!(
            timeout.is_finite() && timeout > 0.0,
            "timeout must be finite and positive"
        );
        self.timeout = Some(timeout);
        self
    }

    /// Allows up to `max_retries` retries with exponential backoff starting
    /// at `base` seconds and capped at `cap` seconds.
    pub fn with_retries(mut self, max_retries: u32, base: f64, cap: f64) -> Self {
        assert!(base.is_finite() && base > 0.0, "backoff base must be > 0");
        assert!(
            cap.is_finite() && cap >= base,
            "backoff cap must be >= base"
        );
        self.max_retries = max_retries;
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Seeds the deterministic retry jitter.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Enables salvaging the in-service request of a crashing server.
    pub fn salvaging_in_flight(mut self) -> Self {
        self.salvage_in_flight = true;
        self
    }

    /// Enables draining and re-routing a crashed server's queue.
    pub fn draining_on_crash(mut self) -> Self {
        self.drain_on_crash = true;
        self
    }

    /// Enables hedged requests: when an attempt has been outstanding for
    /// longer than the `quantile` of completion latencies observed so far
    /// (never less than `min_delay` seconds), a speculative duplicate is
    /// launched on the shortest-queue routable server other than the one
    /// already holding the attempt. The first copy to complete wins and the
    /// other is cancelled. The trigger delay is sampled once, when the
    /// attempt is routed.
    pub fn with_hedging(mut self, quantile: f64, min_delay: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "hedge quantile must be in (0, 1)"
        );
        assert!(
            min_delay.is_finite() && min_delay >= 0.0,
            "hedge min delay must be finite and non-negative"
        );
        self.hedge_quantile = Some(quantile);
        self.hedge_min_delay = min_delay;
        self
    }

    /// Sets how many recent completion latencies feed the hedge trigger
    /// quantile (default 1024). Larger windows smooth the trigger; smaller
    /// ones adapt faster to drift. Memory and per-completion work are both
    /// bounded by the window, never by the stream length.
    pub fn with_hedge_window(mut self, window: usize) -> Self {
        assert!(window > 0, "hedge window must be positive");
        self.hedge_window = window;
        self
    }

    /// Un-jittered, capped exponential delay before retry `k` (1-based).
    fn raw_backoff(&self, k: u32) -> f64 {
        let exp = self.backoff_base * 2f64.powi(k.saturating_sub(1).min(30) as i32);
        exp.min(self.backoff_cap)
    }

    /// Jittered backoff for retry `k` of request `id`: deterministic in
    /// `(jitter_seed, id, k)`, uniform over 50–100% of the capped delay.
    pub(crate) fn backoff_delay(&self, id: u64, k: u32) -> f64 {
        let mut rng = DeterministicRng::new(
            self.jitter_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k),
        );
        self.raw_backoff(k) * (0.5 + 0.5 * rng.uniform())
    }
}

/// Live fleet health, maintained from the applied fault ops.
#[derive(Debug, Clone)]
pub(crate) struct HealthTracker {
    healths: Vec<ServerHealth>,
    straggle_until: Vec<f64>,
}

impl HealthTracker {
    fn new(servers: usize) -> Self {
        Self {
            healths: vec![ServerHealth::Up; servers],
            straggle_until: vec![f64::NEG_INFINITY; servers],
        }
    }

    fn mark_crashed(&mut self, server: usize) {
        self.healths[server] = ServerHealth::Down;
    }

    fn mark_straggling(&mut self, server: usize, until: f64) {
        self.straggle_until[server] = until;
        if self.healths[server] != ServerHealth::Down {
            self.healths[server] = ServerHealth::Straggling;
        }
    }

    /// Returns whether the straggle window really is over (a later window
    /// may have superseded the one whose end fired).
    fn straggle_ended(&mut self, server: usize, now: f64) -> bool {
        if self.straggle_until[server] > now {
            return false;
        }
        if self.healths[server] == ServerHealth::Straggling {
            self.healths[server] = ServerHealth::Up;
        }
        true
    }

    fn mark_recovered(&mut self, server: usize, now: f64) {
        self.healths[server] = if now < self.straggle_until[server] {
            ServerHealth::Straggling
        } else {
            ServerHealth::Up
        };
    }

    fn health_of(&self, server: usize) -> ServerHealth {
        self.healths[server]
    }
}

/// One expanded, time-ordered fault op (straggle windows split into a start
/// and an end).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimedOp {
    pub(crate) at: f64,
    seq: u64,
    pub(crate) server: usize,
    pub(crate) kind: OpKind,
}

/// What a [`TimedOp`] does to its server.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    Crash,
    Recover,
    StraggleStart { until: f64, slowdown: f64 },
    StraggleEnd,
    Stick { level: Option<Freq> },
}

fn expand(plan: &FaultPlan) -> Vec<TimedOp> {
    let mut ops = Vec::with_capacity(plan.events().len() * 2);
    for (i, ev) in plan.events().iter().enumerate() {
        let seq = 2 * i as u64;
        match *ev {
            FaultEvent::Crash { server, at } => ops.push(TimedOp {
                at,
                seq,
                server,
                kind: OpKind::Crash,
            }),
            FaultEvent::Recover { server, at } => ops.push(TimedOp {
                at,
                seq,
                server,
                kind: OpKind::Recover,
            }),
            FaultEvent::StickFreq { server, at, level } => ops.push(TimedOp {
                at,
                seq,
                server,
                kind: OpKind::Stick { level },
            }),
            FaultEvent::Straggle {
                server,
                at,
                until,
                slowdown,
            } => {
                ops.push(TimedOp {
                    at,
                    seq,
                    server,
                    kind: OpKind::StraggleStart { until, slowdown },
                });
                ops.push(TimedOp {
                    at: until,
                    seq: seq + 1,
                    server,
                    kind: OpKind::StraggleEnd,
                });
            }
        }
    }
    ops.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.seq.cmp(&b.seq)));
    ops
}

/// A pending (routed, not yet completed) request attempt. While `hedge`
/// is `Some(h)`, two copies of the attempt are live — the original on
/// `server` and a speculative duplicate on `h` — and exactly one of them
/// will produce the completion record.
#[derive(Debug, Clone, Copy)]
struct Pending {
    server: usize,
    attempt: u32,
    hedge: Option<usize>,
}

/// A scheduled per-attempt timeout. Ordered by `(due, seq)`.
#[derive(Debug, Clone, Copy)]
struct TimeoutEntry {
    due: f64,
    seq: u64,
    id: u64,
    attempt: u32,
}

impl PartialEq for TimeoutEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for TimeoutEntry {}
impl Ord for TimeoutEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due
            .total_cmp(&other.due)
            .then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for TimeoutEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A scheduled retry delivery. Ordered by `(due, seq)`; the payload is
/// ignored by the ordering.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    due: f64,
    seq: u64,
    attempt: u32,
    spec: RequestSpec,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for RetryEntry {}
impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due
            .total_cmp(&other.due)
            .then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A scheduled hedge launch: if the attempt is still pending when `due`
/// arrives, a duplicate of `spec` is injected on a second server. Ordered
/// by `(due, seq)`; the payload is ignored by the ordering.
#[derive(Debug, Clone, Copy)]
struct HedgeEntry {
    due: f64,
    seq: u64,
    attempt: u32,
    spec: RequestSpec,
}

impl PartialEq for HedgeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HedgeEntry {}
impl Ord for HedgeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due
            .total_cmp(&other.due)
            .then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for HedgeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How a hedged pair resolved when one copy completed: the driver must
/// cancel the other copy (`loser` is the server the layer last saw it on —
/// a hint, since a migrator may have moved it) and record whether the
/// speculative copy was the one that won.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HedgeResolution {
    pub(crate) loser: usize,
    pub(crate) hedge_won: bool,
}

/// The driver-side fault and request-lifecycle state: the expanded op
/// stream, the timeout and retry schedules, per-request pending bookkeeping,
/// and the availability counters. Pure bookkeeping — the driver owns every
/// touch of the actual [`rubik_sim::ServerSim`]s.
#[derive(Debug)]
pub(crate) struct FaultLayer {
    ops: Vec<TimedOp>,
    cursor: usize,
    timeouts: BinaryHeap<Reverse<TimeoutEntry>>,
    retries: BinaryHeap<Reverse<RetryEntry>>,
    hedges: BinaryHeap<Reverse<HedgeEntry>>,
    pending: HashMap<u64, Pending>,
    /// The most recent completion latencies (bounded, oldest-out); feeds
    /// the hedge trigger quantile. Only populated when hedging is enabled,
    /// and never larger than [`RequestPolicy::hedge_window`] — a streamed
    /// run's memory stays O(in-flight + window), not O(completed).
    latencies: RollingQuantileWindow,
    policy: RequestPolicy,
    tracker: HealthTracker,
    stats: AvailabilityStats,
    seq: u64,
}

impl FaultLayer {
    pub(crate) fn new(plan: Option<&FaultPlan>, policy: RequestPolicy, servers: usize) -> Self {
        Self {
            ops: plan.map(expand).unwrap_or_default(),
            cursor: 0,
            timeouts: BinaryHeap::new(),
            retries: BinaryHeap::new(),
            hedges: BinaryHeap::new(),
            pending: HashMap::new(),
            latencies: RollingQuantileWindow::new(policy.hedge_window.max(1)),
            policy,
            tracker: HealthTracker::new(servers),
            stats: AvailabilityStats::default(),
            seq: 0,
        }
    }

    pub(crate) fn policy(&self) -> &RequestPolicy {
        &self.policy
    }

    /// Whether hedging is enabled. A hedge resolution cancels the losing
    /// copy on *another* server mid-drain — the one cross-server feedback
    /// inside an event window — so the sharded driver falls back to the
    /// merged serial drain whenever this is true.
    pub(crate) fn hedging_enabled(&self) -> bool {
        self.policy.hedge_quantile.is_some()
    }

    pub(crate) fn health_of(&self, server: usize) -> ServerHealth {
        self.tracker.health_of(server)
    }

    /// Earliest instant at which the layer has work: the next scripted op,
    /// retry delivery, hedge launch, or attempt timeout. Infinite when
    /// there is none — an empty plan with an inert policy never produces a
    /// boundary.
    pub(crate) fn next_boundary(&self) -> f64 {
        let mut t = f64::INFINITY;
        if let Some(op) = self.ops.get(self.cursor) {
            t = t.min(op.at);
        }
        if let Some(Reverse(e)) = self.timeouts.peek() {
            t = t.min(e.due);
        }
        if let Some(Reverse(e)) = self.retries.peek() {
            t = t.min(e.due);
        }
        if let Some(Reverse(e)) = self.hedges.peek() {
            t = t.min(e.due);
        }
        t
    }

    /// Pops the next scripted op due at or before `now`.
    pub(crate) fn pop_due_op(&mut self, now: f64) -> Option<TimedOp> {
        let op = *self.ops.get(self.cursor)?;
        if op.at > now {
            return None;
        }
        self.cursor += 1;
        Some(op)
    }

    /// Pops the next retry delivery due at or before `now`.
    pub(crate) fn pop_due_retry(&mut self, now: f64) -> Option<(RequestSpec, u32)> {
        let &Reverse(e) = self.retries.peek()?;
        if e.due > now {
            return None;
        }
        self.retries.pop();
        Some((e.spec, e.attempt))
    }

    /// Pops the next *valid* timeout due at or before `now`, discarding
    /// entries whose request already completed or was re-attempted — or
    /// whose attempt has an active hedge (the duplicate supersedes the
    /// timeout: two copies are racing, pulling one back would defeat the
    /// point). Returns `(id, attempt, server)` — the driver pulls the
    /// request off that server's queue (or leaves it alone if it is in
    /// service).
    pub(crate) fn pop_due_timeout(&mut self, now: f64) -> Option<(u64, u32, usize)> {
        while let Some(&Reverse(e)) = self.timeouts.peek() {
            if e.due > now {
                return None;
            }
            self.timeouts.pop();
            match self.pending.get(&e.id) {
                Some(p) if p.attempt == e.attempt && p.hedge.is_none() => {
                    self.stats.timeouts += 1;
                    return Some((e.id, e.attempt, p.server));
                }
                _ => continue, // stale: completed, superseded, or hedged
            }
        }
        None
    }

    /// Pops the next *valid* hedge launch due at or before `now`,
    /// discarding entries whose attempt already completed, retried, or
    /// hedged. Returns `(spec, attempt, primary)` — the driver injects a
    /// duplicate of `spec` on a server other than `primary`.
    pub(crate) fn pop_due_hedge(&mut self, now: f64) -> Option<(RequestSpec, u32, usize)> {
        while let Some(&Reverse(e)) = self.hedges.peek() {
            if e.due > now {
                return None;
            }
            self.hedges.pop();
            match self.pending.get(&e.spec.id) {
                Some(p) if p.attempt == e.attempt && p.hedge.is_none() => {
                    return Some((e.spec, e.attempt, p.server));
                }
                _ => continue, // stale: completed, retried, or already hedged
            }
        }
        None
    }

    /// Records that attempt `attempt` of request `spec.id` was routed to
    /// `server` at `now`, scheduling its timeout if the policy has one and
    /// its hedge launch if hedging is enabled. The hedge trigger delay is
    /// sampled here, once per routed attempt: the tracked quantile of
    /// completion latencies so far, floored at
    /// [`RequestPolicy::hedge_min_delay`].
    pub(crate) fn on_routed(&mut self, spec: RequestSpec, server: usize, attempt: u32, now: f64) {
        let id = spec.id;
        self.pending.insert(
            id,
            Pending {
                server,
                attempt,
                hedge: None,
            },
        );
        if let Some(timeout) = self.policy.timeout {
            self.seq += 1;
            self.timeouts.push(Reverse(TimeoutEntry {
                due: now + timeout,
                seq: self.seq,
                id,
                attempt,
            }));
        }
        if let Some(q) = self.policy.hedge_quantile {
            let tracked = self.latencies.quantile(q).unwrap_or(0.0);
            self.seq += 1;
            self.hedges.push(Reverse(HedgeEntry {
                due: now + tracked.max(self.policy.hedge_min_delay),
                seq: self.seq,
                attempt,
                spec,
            }));
        }
    }

    /// Records that the duplicate of request `id` was launched on `target`.
    pub(crate) fn hedge_launched(&mut self, id: u64, target: usize) {
        self.stats.hedged += 1;
        if let Some(p) = self.pending.get_mut(&id) {
            p.hedge = Some(target);
        }
    }

    /// Records that request `id` completed on `server` with end-to-end
    /// latency `latency`; its pending attempt (and any outstanding timeout
    /// or hedge launch) is dropped. If the attempt had an active hedge, the
    /// pair resolves first-completion-wins: the returned
    /// [`HedgeResolution`] tells the driver which server to cancel the
    /// losing copy on.
    pub(crate) fn on_completion(
        &mut self,
        id: u64,
        server: usize,
        latency: f64,
    ) -> Option<HedgeResolution> {
        if self.policy.hedge_quantile.is_some() {
            self.latencies.push(latency);
        }
        let p = self.pending.remove(&id)?;
        let twin = p.hedge?;
        // While a hedge is active exactly two copies are live, so the one
        // that did not just complete must still be cancellable somewhere.
        let hedge_won = server == twin;
        self.stats.hedge_wins += usize::from(hedge_won);
        self.stats.hedge_cancelled += 1;
        Some(HedgeResolution {
            loser: if hedge_won { p.server } else { twin },
            hedge_won,
        })
    }

    /// Reports that one copy of request `id` was destroyed on `server` by a
    /// crash. Returns `true` when the attempt had an active hedge — the
    /// surviving copy carries on alone (no salvage, no drop, no loss) —
    /// and `false` for un-hedged requests, which take the normal crash
    /// path.
    pub(crate) fn copy_lost(&mut self, id: u64, server: usize) -> bool {
        let Some(p) = self.pending.get_mut(&id) else {
            return false;
        };
        let Some(twin) = p.hedge.take() else {
            return false;
        };
        if twin != server {
            // The primary (or a copy whose tracked location went stale
            // under migration) died: the duplicate is now the sole copy.
            p.server = twin;
        }
        true
    }

    /// Handles a timed-out request that was pulled off a queue: drop it if
    /// its retry budget is exhausted, otherwise schedule the next attempt
    /// after a jittered backoff. Returns the retry's due time, or `None`
    /// when the request was dropped — the driver's telemetry records a
    /// backoff or a drop accordingly.
    pub(crate) fn retry_or_drop(
        &mut self,
        spec: RequestSpec,
        attempt: u32,
        now: f64,
    ) -> Option<f64> {
        self.pending.remove(&spec.id);
        if attempt > self.policy.max_retries {
            return None; // out of budget: lost, surfaces in `finalize`
        }
        self.stats.retries += 1;
        self.seq += 1;
        let due = now + self.policy.backoff_delay(spec.id, attempt);
        self.retries.push(Reverse(RetryEntry {
            due,
            seq: self.seq,
            attempt: attempt + 1,
            spec,
        }));
        Some(due)
    }

    /// Salvages the request that was in service on a crashing server:
    /// re-delivered at the crash instant, counting one attempt.
    pub(crate) fn salvage(&mut self, spec: RequestSpec, now: f64) {
        let attempt = self.pending.remove(&spec.id).map_or(1, |p| p.attempt);
        self.stats.salvaged_in_flight += 1;
        self.seq += 1;
        self.retries.push(Reverse(RetryEntry {
            due: now,
            seq: self.seq,
            attempt: attempt + 1,
            spec,
        }));
    }

    /// Drops the in-service request of a crashing server (salvage
    /// disabled): it will never complete and counts as lost.
    pub(crate) fn drop_in_flight(&mut self, id: u64) {
        self.pending.remove(&id);
    }

    /// Records that queued request `id` was force-moved from `from` to
    /// `to` by a crash drain (its attempt — and timeout — carry over). If
    /// the moved copy was a hedged duplicate, the duplicate's tracked
    /// location follows it; otherwise the primary's does.
    pub(crate) fn requeued(&mut self, id: u64, from: usize, to: usize) {
        self.stats.requeued_on_failure += 1;
        if let Some(p) = self.pending.get_mut(&id) {
            if p.hedge == Some(from) {
                p.hedge = Some(to);
            } else {
                p.server = to;
            }
        }
    }

    /// Applies a scripted op's bookkeeping (health + straggle windows) and
    /// reports what the driver must do to the server. Returns `true` for a
    /// `StraggleEnd` whose window really is over (reset the slowdown).
    pub(crate) fn track_op(&mut self, op: &TimedOp) -> bool {
        match op.kind {
            OpKind::Crash => {
                self.tracker.mark_crashed(op.server);
                true
            }
            OpKind::Recover => {
                self.tracker.mark_recovered(op.server, op.at);
                true
            }
            OpKind::StraggleStart { until, .. } => {
                self.tracker.mark_straggling(op.server, until);
                true
            }
            OpKind::StraggleEnd => self.tracker.straggle_ended(op.server, op.at),
            OpKind::Stick { .. } => true,
        }
    }

    /// The availability counters accumulated so far (completion-derived
    /// fields are only filled by [`FaultLayer::finalize`]); read by the
    /// driver's telemetry sampling for cumulative retry/timeout series.
    pub(crate) fn stats(&self) -> &AvailabilityStats {
        &self.stats
    }

    /// Whether any scripted op, retry, hedge, or timeout remains
    /// schedulable.
    #[cfg(test)]
    pub(crate) fn exhausted(&self) -> bool {
        self.cursor >= self.ops.len()
            && self.retries.is_empty()
            && self.timeouts.is_empty()
            && self.hedges.is_empty()
    }

    /// Closes the books: folds the per-server completion records into the
    /// availability counters accumulated during the run.
    pub(crate) fn finalize(
        &mut self,
        offered: usize,
        quantile: f64,
        results: &[RunResult],
    ) -> AvailabilityStats {
        let mut ok_latencies = Vec::new();
        let mut completed = 0usize;
        let mut late = 0usize;
        for r in results {
            for rec in r.records() {
                completed += 1;
                let latency = rec.latency();
                match self.policy.deadline {
                    Some(d) if latency > d => late += 1,
                    _ => ok_latencies.push(latency),
                }
            }
        }
        let lost = offered.saturating_sub(completed);
        self.stats.offered = offered;
        self.stats.completed = completed;
        self.stats.lost = lost;
        self.stats.goodput = completed - late;
        self.stats.deadline_exceeded = late + lost;
        self.stats.tail_latency_ok = percentile(&ok_latencies, quantile);
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_plan_has_no_boundaries() {
        let layer = FaultLayer::new(Some(&FaultPlan::new()), RequestPolicy::default(), 4);
        assert!(layer.next_boundary().is_infinite());
        assert!(layer.exhausted());
    }

    #[test]
    fn hedge_trigger_quantile_tracks_a_bounded_window_of_recent_latencies() {
        // Property: the trigger delay `on_routed` samples is the exact
        // quantile of the last `hedge_window` completion latencies — never
        // of the full history — and the tracker retains at most
        // `hedge_window` samples no matter how many completions stream by.
        let window = 32;
        let q = 0.9;
        let policy = RequestPolicy::new()
            .with_hedging(q, 0.0)
            .with_hedge_window(window);
        let mut layer = FaultLayer::new(None, policy, 4);
        let mut rng = DeterministicRng::new(7);
        let mut history: Vec<f64> = Vec::new();
        for id in 0..500u64 {
            layer.on_routed(RequestSpec::new(id, 0.0, 1e6, 0.0), 0, 1, 0.0);
            let trigger = layer
                .hedges
                .iter()
                .map(|&Reverse(e)| e)
                .max_by_key(|e| e.seq)
                .expect("on_routed schedules a hedge")
                .due;
            let tail = &history[history.len().saturating_sub(window)..];
            let mut sorted = tail.to_vec();
            sorted.sort_unstable_by(f64::total_cmp);
            let expected = if sorted.is_empty() {
                0.0
            } else {
                rubik_stats::percentile_of_sorted(&sorted, q)
            };
            assert_eq!(
                trigger.to_bits(),
                expected.to_bits(),
                "trigger diverged from the exact in-window quantile after {} completions",
                history.len()
            );
            let latency = 1e-3 * (1.0 + rng.uniform());
            assert!(layer.on_completion(id, 0, latency).is_none());
            history.push(latency);
            assert!(layer.latencies.len() <= window);
        }
        assert_eq!(layer.latencies.len(), window);
    }

    #[test]
    fn expansion_orders_ops_by_time_then_plan_order() {
        let plan = FaultPlan::new()
            .straggle(1, 0.010, 0.030, 2.0)
            .crash(0, 0.030)
            .recover(0, 0.050);
        let ops = expand(&plan);
        let times: Vec<f64> = ops.iter().map(|o| o.at).collect();
        assert_eq!(times, vec![0.010, 0.030, 0.030, 0.050]);
        // At t = 0.030 the straggle end (written first) precedes the crash.
        assert!(matches!(ops[1].kind, OpKind::StraggleEnd));
        assert!(matches!(ops[2].kind, OpKind::Crash));
    }

    #[test]
    fn validate_rejects_out_of_range_double_crash_and_bad_windows() {
        assert!(FaultPlan::new().crash(5, 0.1).validate(4).is_err());
        assert!(FaultPlan::new()
            .crash(0, 0.1)
            .crash(0, 0.2)
            .validate(4)
            .is_err());
        assert!(FaultPlan::new().recover(0, 0.1).validate(4).is_err());
        assert!(FaultPlan::new()
            .straggle(0, 0.2, 0.1, 2.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::new()
            .straggle(0, 0.1, 0.2, -1.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::new().crash(0, f64::NAN).validate(4).is_err());
        assert!(FaultPlan::new()
            .crash(0, 0.1)
            .recover(0, 0.2)
            .crash(0, 0.3)
            .validate(4)
            .is_ok());
        // Recovery is also how a stuck frequency is released.
        assert!(FaultPlan::new()
            .stick_freq(2, 0.1, Some(Freq::from_mhz(1200)))
            .recover(2, 0.3)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let policy = RequestPolicy::new()
            .with_retries(8, 1e-3, 4e-3)
            .with_jitter_seed(7);
        assert!((policy.raw_backoff(1) - 1e-3).abs() < 1e-15);
        assert!((policy.raw_backoff(2) - 2e-3).abs() < 1e-15);
        assert!((policy.raw_backoff(3) - 4e-3).abs() < 1e-15);
        assert!((policy.raw_backoff(7) - 4e-3).abs() < 1e-15, "capped");
        for k in 1..6 {
            let d = policy.backoff_delay(42, k);
            let raw = policy.raw_backoff(k);
            assert!(d >= 0.5 * raw && d <= raw, "jitter within 50–100%");
            assert_eq!(
                d.to_bits(),
                policy.backoff_delay(42, k).to_bits(),
                "bitwise repeatable"
            );
        }
        assert_ne!(
            policy.backoff_delay(42, 1).to_bits(),
            policy.backoff_delay(43, 1).to_bits(),
            "different requests jitter differently"
        );
    }

    #[test]
    fn timeouts_are_discarded_once_the_request_completes_or_retries() {
        let policy = RequestPolicy::new()
            .with_timeout(1e-3)
            .with_retries(2, 1e-3, 1e-2);
        let mut layer = FaultLayer::new(None, policy, 2);
        layer.on_routed(RequestSpec::new(7, 0.0, 1e6, 0.0), 0, 1, 0.0);
        layer.on_completion(7, 0, 1e-3);
        assert!(layer.pop_due_timeout(1.0).is_none(), "completed: stale");
        assert_eq!(layer.stats.timeouts, 0);

        layer.on_routed(RequestSpec::new(8, 0.0, 1e6, 0.0), 1, 1, 0.0);
        let (id, attempt, server) = layer.pop_due_timeout(1.0).expect("due");
        assert_eq!((id, attempt, server), (8, 1, 1));
        let spec = RequestSpec::new(8, 0.0, 1e6, 0.0);
        layer.retry_or_drop(spec, attempt, 1e-3);
        assert_eq!(layer.stats.retries, 1);
        let (respec, next_attempt) = layer.pop_due_retry(1.0).expect("scheduled");
        assert_eq!(respec.id, 8);
        assert_eq!(next_attempt, 2);
    }

    #[test]
    fn hedge_trigger_floors_at_min_delay_then_tracks_the_quantile() {
        let policy = RequestPolicy::new().with_hedging(0.5, 4e-3);
        let mut layer = FaultLayer::new(None, policy, 3);
        // No latency history yet: the launch lands at now + min_delay.
        layer.on_routed(RequestSpec::new(0, 0.0, 1e6, 0.0), 0, 1, 0.0);
        assert!((layer.next_boundary() - 4e-3).abs() < 1e-15);
        let (spec, attempt, primary) = layer.pop_due_hedge(4e-3).expect("due");
        assert_eq!((spec.id, attempt, primary), (0, 1, 0));
        layer.hedge_launched(0, 1);
        assert!(
            layer.pop_due_hedge(1.0).is_none(),
            "an attempt hedges at most once"
        );
        // Completions teach the tracker; the median of {10ms, 20ms} at the
        // nearest-rank convention is 10ms, above the 4ms floor.
        layer.on_completion(0, 0, 10e-3);
        layer.on_routed(RequestSpec::new(1, 0.0, 1e6, 0.0), 1, 1, 0.0);
        layer.on_completion(1, 1, 20e-3);
        layer.on_routed(RequestSpec::new(2, 1.0, 1e6, 0.0), 2, 1, 1.0);
        let (spec, _, _) = layer.pop_due_hedge(1.0 + 10e-3).expect("due");
        assert_eq!(spec.id, 2);
    }

    #[test]
    fn hedged_pairs_resolve_first_completion_wins() {
        let policy = RequestPolicy::new()
            .with_timeout(1e-3)
            .with_retries(2, 1e-3, 1e-2)
            .with_hedging(0.9, 0.0);
        let mut layer = FaultLayer::new(None, policy, 4);
        layer.on_routed(RequestSpec::new(5, 0.0, 1e6, 0.0), 0, 1, 0.0);
        layer
            .pop_due_hedge(0.0)
            .expect("floor of zero fires at once");
        layer.hedge_launched(5, 2);
        assert!(
            layer.pop_due_timeout(1.0).is_none(),
            "the duplicate supersedes the attempt timeout"
        );
        assert_eq!(layer.stats.timeouts, 0);
        // The duplicate on server 2 completes first.
        let res = layer.on_completion(5, 2, 5e-4).expect("pair resolves");
        assert_eq!(res.loser, 0);
        assert!(res.hedge_won);
        assert_eq!(layer.stats.hedged, 1);
        assert_eq!(layer.stats.hedge_wins, 1);
        assert_eq!(layer.stats.hedge_cancelled, 1);

        // The mirror case: the primary wins, the duplicate loses. (The
        // first completion taught the tracker, so the trigger now sits at
        // the tracked 0.9-quantile, 5e-4.)
        layer.on_routed(RequestSpec::new(6, 0.0, 1e6, 0.0), 1, 1, 0.0);
        layer.pop_due_hedge(5e-4).expect("due");
        layer.hedge_launched(6, 3);
        let res = layer.on_completion(6, 1, 5e-4).expect("pair resolves");
        assert_eq!(res.loser, 3);
        assert!(!res.hedge_won);
        assert_eq!(layer.stats.hedge_wins, 1, "primary win is not a hedge win");
    }

    #[test]
    fn a_crash_promotes_the_surviving_copy_of_a_hedged_pair() {
        let policy = RequestPolicy::new().with_hedging(0.9, 0.0);
        let mut layer = FaultLayer::new(None, policy, 4);
        layer.on_routed(RequestSpec::new(9, 0.0, 1e6, 0.0), 0, 1, 0.0);
        layer.pop_due_hedge(0.0).expect("due");
        layer.hedge_launched(9, 2);
        // The duplicate's server crashes: the primary carries on alone and
        // a later completion resolves nothing (no copy left to cancel).
        assert!(layer.copy_lost(9, 2), "hedged: survivor carries on");
        assert!(layer.on_completion(9, 0, 1e-3).is_none());
        // Un-hedged requests report false and take the normal crash path.
        layer.on_routed(RequestSpec::new(10, 0.0, 1e6, 0.0), 1, 1, 0.0);
        assert!(!layer.copy_lost(10, 1));
    }

    #[test]
    fn retry_budget_exhaustion_drops_the_request() {
        let policy = RequestPolicy::new()
            .with_timeout(1e-3)
            .with_retries(1, 1e-3, 1e-2);
        let mut layer = FaultLayer::new(None, policy, 1);
        let spec = RequestSpec::new(3, 0.0, 1e6, 0.0);
        layer.retry_or_drop(spec, 1, 0.0);
        assert_eq!(layer.stats.retries, 1);
        let (_, attempt) = layer.pop_due_retry(1.0).expect("first retry runs");
        layer.retry_or_drop(spec, attempt, 0.01);
        assert_eq!(layer.stats.retries, 1, "budget spent: no second retry");
        assert!(layer.pop_due_retry(10.0).is_none());
        assert!(layer.exhausted());
    }

    #[test]
    fn health_tracking_follows_crash_straggle_and_recovery() {
        let plan = FaultPlan::new()
            .straggle(0, 0.0, 1.0, 3.0)
            .crash(1, 0.1)
            .recover(1, 0.2);
        let mut layer = FaultLayer::new(Some(&plan), RequestPolicy::default(), 2);
        let op = layer.pop_due_op(0.0).expect("straggle start");
        layer.track_op(&op);
        assert_eq!(layer.health_of(0), ServerHealth::Straggling);
        let op = layer.pop_due_op(0.1).expect("crash");
        layer.track_op(&op);
        assert_eq!(layer.health_of(1), ServerHealth::Down);
        let op = layer.pop_due_op(0.2).expect("recover");
        layer.track_op(&op);
        assert_eq!(layer.health_of(1), ServerHealth::Up);
        // The straggle end at t = 1.0 restores server 0.
        let op = layer.pop_due_op(1.0).expect("straggle end");
        assert!(layer.track_op(&op), "window over: reset the slowdown");
        assert_eq!(layer.health_of(0), ServerHealth::Up);
        assert!(layer.exhausted());
    }

    #[test]
    fn a_superseded_straggle_end_does_not_heal_the_server() {
        let plan = FaultPlan::new()
            .straggle(0, 0.0, 0.5, 2.0)
            .straggle(0, 0.2, 1.0, 4.0);
        let mut layer = FaultLayer::new(Some(&plan), RequestPolicy::default(), 1);
        for t in [0.0, 0.2] {
            let op = layer.pop_due_op(t).expect("start");
            layer.track_op(&op);
        }
        let op = layer.pop_due_op(0.5).expect("first window's end");
        assert!(!layer.track_op(&op), "superseded by the longer window");
        assert_eq!(layer.health_of(0), ServerHealth::Straggling);
        let op = layer.pop_due_op(1.0).expect("second window's end");
        assert!(layer.track_op(&op));
        assert_eq!(layer.health_of(0), ServerHealth::Up);
    }

    #[test]
    fn finalize_splits_goodput_errors_and_losses() {
        use rubik_sim::RunResult;
        let policy = RequestPolicy::new().with_deadline(2e-3);
        let mut layer = FaultLayer::new(None, policy, 1);
        let mut records = Vec::new();
        for i in 0..8u64 {
            let latency = if i < 6 { 1e-3 } else { 5e-3 };
            records.push(rubik_sim::RequestRecord {
                id: i,
                arrival: 0.0,
                start: 0.0,
                completion: latency,
                compute_cycles: 1e6,
                membound_time: 0.0,
                queue_len_at_arrival: 0,
                class: 0,
            });
        }
        let results = vec![RunResult::new(records, Vec::new(), 1.0)];
        // 10 offered, 8 completed (2 lost), 2 of the completions late.
        let stats = layer.finalize(10, 0.95, &results);
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.lost, 2);
        assert_eq!(stats.goodput, 6);
        assert_eq!(stats.deadline_exceeded, 4);
        assert!((stats.goodput_fraction() - 0.6).abs() < 1e-12);
        let tail_ok = stats
            .tail_latency_ok
            .expect("in-deadline completions exist");
        assert!((tail_ok - 1e-3).abs() < 1e-12);
    }
}
