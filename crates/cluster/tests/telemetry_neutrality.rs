//! The telemetry neutrality contract, property-tested across a
//! `router × fleet × fault-plan × seed` grid at 1, 2, and 8 sweep threads:
//!
//! 1. **Disabled telemetry is bitwise-invisible.** A cluster with
//!    [`Telemetry::disabled`] attached produces exactly the bytes of a
//!    cluster that never heard of telemetry.
//! 2. **Recording is observation, not perturbation.** Even
//!    [`Telemetry::recording`] leaves every simulation output — outcome,
//!    per-server `RunResult`s — bit-identical; it only *adds* the trace
//!    log. Sampling boundaries partition the event drain without
//!    reordering it.
//! 3. **The log itself is deterministic.** Serialized trace JSON from a
//!    recording run is byte-identical across sweep thread counts.

use rubik_cluster::{
    fleet_trace, Cluster, ClusterOutcome, FaultPlan, HealthAware, JoinShortestQueue, PegasusFleet,
    RequestPolicy, RoundRobin, Router, Telemetry, ThresholdMigrator,
};
use rubik_power::CorePowerModel;
use rubik_sim::{FixedFrequencyPolicy, RunResult, SimConfig};
use rubik_sweep::{SweepExecutor, SweepSpec};
use rubik_workloads::AppProfile;

fn result_bits(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![r.end_time().to_bits()];
    for rec in r.records() {
        bits.extend_from_slice(&[
            rec.id,
            rec.arrival.to_bits(),
            rec.start.to_bits(),
            rec.completion.to_bits(),
            rec.queue_len_at_arrival as u64,
        ]);
    }
    for s in r.segments() {
        bits.extend_from_slice(&[
            s.start.to_bits(),
            s.end.to_bits(),
            s.freq.mhz() as u64,
            s.activity as u64,
        ]);
    }
    bits
}

fn outcome_bits(o: &ClusterOutcome) -> Vec<u64> {
    let a = &o.availability;
    let mut bits = vec![
        o.requests as u64,
        o.migrated_requests as u64,
        o.tail_latency.to_bits(),
        o.mean_latency.to_bits(),
        o.fleet_energy.to_bits(),
        o.fleet_power.to_bits(),
        o.duration.to_bits(),
        a.offered as u64,
        a.completed as u64,
        a.goodput as u64,
        a.lost as u64,
        a.deadline_exceeded as u64,
        a.timeouts as u64,
        a.retries as u64,
        a.requeued_on_failure as u64,
        a.salvaged_in_flight as u64,
        a.hedged as u64,
        a.hedge_wins as u64,
        a.hedge_cancelled as u64,
        a.tail_latency_ok.map_or(u64::MAX, f64::to_bits),
    ];
    for s in &o.per_server {
        bits.extend_from_slice(&[
            s.class as u64,
            s.requests as u64,
            s.tail_latency.to_bits(),
            s.energy.to_bits(),
            s.busy_time.to_bits(),
            s.idle_time.to_bits(),
            s.sleep_time.to_bits(),
            s.end_time.to_bits(),
        ]);
    }
    bits
}

fn router(which: usize) -> Box<dyn Router> {
    match which {
        0 => Box::new(HealthAware::new(JoinShortestQueue::new())),
        _ => Box::new(RoundRobin::new()),
    }
}

fn eventful_plan(duration: f64) -> FaultPlan {
    FaultPlan::new()
        .crash(0, 0.25 * duration)
        .recover(0, 0.70 * duration)
        .straggle(1, 0.10 * duration, 0.60 * duration, 4.0)
}

/// Builds one fully-loaded cluster for a grid cell: router, watt cap,
/// migrator, and (for half the grid) faults with timeouts and retries — so
/// neutrality is proven against every boundary the driver sequences, not
/// just the plain event stream.
fn cell_cluster(
    config: &SimConfig,
    fleet: usize,
    which_router: usize,
    faulted: bool,
    duration: f64,
    seed: u64,
) -> Cluster<FixedFrequencyPolicy> {
    let power = CorePowerModel::haswell_like();
    let mean = AppProfile::masstree().mean_service_time();
    let mut cluster = Cluster::new(config.clone(), fleet, router(which_router), |_| {
        FixedFrequencyPolicy::new(config.dvfs.nominal())
    })
    .with_power(power)
    .with_fleet_controller(Box::new(
        PegasusFleet::new(4.0 * fleet as f64, power).with_epoch(duration / 20.0),
    ))
    .with_migrator(Box::new(ThresholdMigrator::default()));
    if faulted {
        cluster = cluster
            .with_fault_plan(eventful_plan(duration))
            .with_request_policy(
                RequestPolicy::new()
                    .with_timeout(8.0 * mean)
                    .with_retries(4, mean, 16.0 * mean)
                    .with_jitter_seed(seed)
                    .salvaging_in_flight()
                    .draining_on_crash(),
            );
    }
    cluster
}

#[test]
fn telemetry_is_bitwise_neutral_across_the_grid_and_thread_counts() {
    let fleets = [2usize, 4];
    let seeds = [7u64, 31];
    let spec = SweepSpec::new()
        .axis("router", 2)
        .axis("fleet", fleets.len())
        .axis("plan", 2)
        .axis("seed", seeds.len());

    let cell = |c: &rubik_sweep::Cell<'_>| {
        let config = SimConfig::paper_simulated();
        let fleet = fleets[c.get("fleet")];
        let seed = seeds[c.get("seed")];
        let faulted = c.get("plan") == 1;
        let trace = fleet_trace(&AppProfile::masstree(), 0.5, fleet, 100 * fleet, seed);
        let duration = trace.duration();
        let build = || cell_cluster(&config, fleet, c.get("router"), faulted, duration, seed);

        // The three contenders: no telemetry, disabled telemetry, recording.
        let (plain_o, plain_r) = build().run_with_results(&trace);
        let (disabled_o, disabled_r) = build()
            .with_telemetry(Telemetry::disabled())
            .run_with_results(&trace);
        let (recorded_o, recorded_r, log) = build().run_traced(&trace);

        for (label, o, r) in [
            ("disabled", &disabled_o, &disabled_r),
            ("recording", &recorded_o, &recorded_r),
        ] {
            assert_eq!(
                outcome_bits(&plain_o),
                outcome_bits(o),
                "{label} telemetry changed the ClusterOutcome (cell {})",
                c.index()
            );
            for (i, (p, t)) in plain_r.iter().zip(r).enumerate() {
                assert_eq!(
                    result_bits(p),
                    result_bits(t),
                    "{label} telemetry changed server {i}'s RunResult (cell {})",
                    c.index()
                );
            }
        }
        // The log is not a shadow: it accounts for every offered request
        // (lost ones included) and took samples across the whole run.
        assert_eq!(log.requests.len(), plain_o.availability.offered);
        assert_eq!(log.completed(), plain_o.availability.completed);
        assert!(!log.epochs.is_empty());

        // Fold the serialized log into the grid result so the cross-thread
        // comparison also pins the trace bytes themselves.
        let mut bits = outcome_bits(&plain_o);
        let json = rubik_telemetry::to_json(&log);
        bits.push(json.len() as u64);
        bits.extend(json.as_bytes().iter().map(|&b| b as u64));
        bits
    };

    let reference = SweepExecutor::serial().run(&spec, cell).into_results();
    for threads in [2usize, 8] {
        let swept = SweepExecutor::new(threads).run(&spec, cell).into_results();
        assert_eq!(
            swept, reference,
            "telemetry neutrality grid diverged at {threads} threads"
        );
    }
}
